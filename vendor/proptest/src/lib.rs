//! Offline subset of `proptest`: deterministic property testing with the
//! upstream macro surface (`proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`) and strategy combinators this workspace uses (ranges,
//! `Just`, `any`, tuples, `prop_map`, `prop::collection::vec`).
//!
//! Differences from upstream, on purpose:
//! - Inputs are drawn from a fixed per-case seed, so every run replays the
//!   same cases (no `.proptest-regressions` integration, no shrinking).
//! - `prop_assert*` panic immediately (with the case index in the message)
//!   instead of shrinking to a minimal counterexample.

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    /// Subset of upstream `ProptestConfig`: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64-based RNG: cheap, seedable, good enough for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for one test case. Purely a function of the case index,
        /// so failures replay identically run to run.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15 ^ ((case as u64) << 1),
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is ~2^-64 * n: irrelevant for test sampling.
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: strategies sample directly
    /// and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample_with(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample_with(&self, rng: &mut TestRng) -> T {
            (**self).sample_with(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_with(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample_with(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_with(rng))
        }
    }

    /// Uniform choice between strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample_with(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample_with(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_with(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_with(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64; // never 0: workspace ranges are < full-domain
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_with(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_ranges!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample_with(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_with(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Full-domain strategy behind [`crate::arbitrary::any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> AnyStrategy<T> {
        pub(crate) fn new() -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! any_ints {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn sample_with(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn sample_with(&self, rng: &mut TestRng) -> bool {
            self::Strategy::sample_with(&(0u64..2), rng) == 1
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::AnyStrategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Returns the full-domain strategy for `Self`.
        fn arbitrary() -> AnyStrategy<Self>;
    }

    macro_rules! arb {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> AnyStrategy<$t> {
                    AnyStrategy::new()
                }
            }
        )*};
    }

    arb!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The canonical strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_with(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample_with(&(self.size.lo..self.size.hi_exclusive), rng);
            (0..len).map(|_| self.element.sample_with(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that sample their arguments.
///
/// Supports the upstream grammar subset used in this workspace:
/// an optional `#![proptest_config(...)]` header followed by test
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut prop_rng = $crate::test_runner::TestRng::for_case(case);
                // IIFE so `prop_assume!` can early-return to skip the case.
                (|| {
                    $(let $pat =
                        $crate::strategy::Strategy::sample_with(&($strat), &mut prop_rng);)+
                    $body
                })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0..5.0f64, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&f));
            prop_assume!(x != 5);
            prop_assert!(x != 5);
            prop_assert!(u32::from(b) <= 1);
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u8..=255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(
            pair in (1u32..5, 10u32..50).prop_map(|(a, b)| (a, b)),
            pick in prop_oneof![Just(7u8), Just(9u8)],
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert!(pick == 7 || pick == 9);
        }
    }

    #[test]
    fn cases_replay_identically() {
        let sample = |case| {
            let mut rng = crate::test_runner::TestRng::for_case(case);
            Strategy::sample_with(&(0u64..1000), &mut rng)
        };
        assert_eq!(sample(5), sample(5));
        assert_ne!(
            (0..20)
                .map(sample)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
    }
}
