//! Offline subset of `criterion`: same macro and builder surface
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`), backed by a simple
//! wall-clock timer instead of the statistical engine. Reports
//! mean/min/max per benchmark on stdout. Vendored because the build
//! environment has no network access.

use std::time::{Duration, Instant};

/// Hint for how expensive `iter_batched` setup output is to hold.
/// Accepted for API parity; the simple harness runs one setup per
/// measured invocation regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measurement batch.
    PerIteration,
}

/// Opaque black box preventing the optimizer from deleting benchmarked
/// work. Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI just enough for `cargo bench -- <filter>`;
        // flags (leading '-') are accepted and ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Returns a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let filter = self.filter.clone();
        run_benchmark(&filter, id, 100, Duration::from_secs(1), f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (caps total sampling time).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            let filter = None; // group already applied the filter
            run_benchmark(&filter, &full, self.sample_size, self.measurement_time, f);
        }
        self
    }

    /// Ends the group (stdout reporting happens per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    if let Some(fil) = filter {
        if !id.contains(fil.as_str()) {
            return;
        }
    }
    let mut samples = Vec::with_capacity(sample_size);
    let started = Instant::now();
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.per_iter);
        if started.elapsed() > measurement_time * 4 {
            break; // keep `cargo bench` bounded even for slow benchmarks
        }
    }
    let n = samples.len() as u32;
    let mean = samples.iter().sum::<Duration>() / n.max(1);
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        n
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a single timed call per sample: the
        // statistical engine upstream would auto-tune iteration counts.
        black_box(routine());
        let t = Instant::now();
        black_box(routine());
        self.per_iter = t.elapsed();
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        self.per_iter = t.elapsed();
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(smoke_benches, trivial);

    #[test]
    fn harness_runs_groups() {
        smoke_benches();
    }
}
