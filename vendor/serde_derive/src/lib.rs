//! Derive macros for the vendored `serde` subset. Supports exactly the
//! type shapes this workspace serializes:
//!
//! - structs with named fields  -> JSON objects
//! - tuple structs (newtypes)   -> transparent (single field) or arrays
//! - enums with unit variants   -> variant-name strings
//!
//! Implemented with hand-rolled `proc_macro::TokenTree` walking because
//! `syn`/`quote` are unavailable offline. Generics and `#[serde(...)]`
//! attributes are rejected with a compile error rather than silently
//! mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored trait) for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the vendored trait) for supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    /// Enum whose variants are all unit variants.
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Parses the derive input down to (type name, shape).
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generics (on `{name}`)"
        ));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok((name, Shape::NamedStruct(parse_named_fields(&body)?)))
            } else {
                Ok((name, Shape::UnitEnum(parse_unit_variants(&body)?)))
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let n = count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>());
            Ok((name, Shape::TupleStruct(n)))
        }
        other => Err(format!("unsupported shape for `{name}`: {other:?}")),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` bodies, returning the field names.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Skip the type: consume until a top-level `,` (angle brackets track
        // nesting; `->` never appears in field position in this workspace).
        let mut depth = 0i32;
        while let Some(tt) = body.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

/// Parses `VariantA, VariantB, ...` bodies; rejects data-carrying variants.
fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "vendored serde derive supports unit enum variants only; `{name}` is followed by {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

/// Counts the fields of a tuple struct body (`Type, Type, ...`).
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => n += 1,
            _ => {}
        }
    }
    n
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match (shape, mode) {
        (Shape::NamedStruct(fields), Mode::Serialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::NamedStruct(fields), Mode::Deserialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.field_value({f:?})?)?,")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::TupleStruct(1), Mode::Serialize) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        (Shape::TupleStruct(1), Mode::Deserialize) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        (Shape::TupleStruct(n), Mode::Serialize) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Arr(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::TupleStruct(n), Mode::Deserialize) => {
            let entries: String = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::DeError::new(\"tuple struct arity mismatch\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Arr(items) => Ok({name}({entries})),\n\
                             other => Err(::serde::DeError::new(format!(\n\
                                 \"expected array for {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::UnitEnum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::UnitEnum(variants), Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError::new(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(::serde::DeError::new(format!(\n\
                                 \"expected string for {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
