//! Offline subset of `crossbeam`: scoped threads only, implemented as a
//! thin shim over `std::thread::scope` (stable since Rust 1.63). The build
//! environment has no network access, so the workspace vendors the one
//! API it uses.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;

    /// Result of a scope: `Err` carries the payload of a panicked child.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scope; passed to the closure and to every spawned child.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further children, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope; all spawned threads are joined before it returns.
    /// Unlike `std::thread::scope`, child panics are returned as `Err`
    /// rather than propagated — matching crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawned_threads_write_disjoint_chunks() {
            let mut out = vec![0usize; 16];
            super::scope(|s| {
                for (i, chunk) in out.chunks_mut(4).enumerate() {
                    s.spawn(move |_| {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = i * 4 + j;
                        }
                    });
                }
            })
            .unwrap();
            assert_eq!(out, (0..16).collect::<Vec<_>>());
        }

        #[test]
        fn child_panic_is_an_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
