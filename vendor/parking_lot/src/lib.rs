//! Offline subset of `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! with the `parking_lot` calling convention (`lock()` returns the guard
//! directly), implemented over the std primitives. Vendored because the
//! build environment has no network access.

use std::sync;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other
    /// holders do not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn not_poisoned_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
