//! Offline subset of `serde`: a JSON-value-based serialization framework
//! with the same derive ergonomics (`#[derive(Serialize, Deserialize)]`)
//! for the type shapes this workspace uses — named-field structs, newtype
//! structs and unit-variant enums. Vendored because the build environment
//! has no network access; `serde_json` (also vendored) renders and parses
//! the [`Value`] tree.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange form between [`Serialize`],
/// [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; all workspace payloads fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in an object value.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `self` is not an object or lacks the field.
    pub fn field_value(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        concat!("expected number for ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Static op tables are interned at most once per distinct
            // mnemonic per process; the leak is bounded and intentional.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of {N} elements, found {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
