//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`], [`rngs::mock::StepRng`]
//! and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every consumer in this workspace
//! only relies on determinism-given-seed and statistical quality, not on a
//! specific stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable RNG, reproducible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = split_mix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn split_mix64(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64_from_bits_53(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: StandardDistributed>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn f64_from_bits_53(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples from `[lo, hi]`; `hi` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let u = f64_from_bits_53(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let u = f64_from_bits_53(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait StandardDistributed {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistributed for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits_53(rng.next_u64())
    }
}

impl StandardDistributed for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistributed for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state words, for mid-stream
        /// persistence (campaign checkpoints). Restoring the same words
        /// with [`StdRng::from_state`] continues the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`]. An all-zero state (a xoshiro fixed point,
        /// never produced by a real stream) is nudged the same way as
        /// `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use super::super::RngCore;

        /// Counts up from a start value by a fixed increment.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            state: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator yielding `start`, `start + inc`, ...
            pub fn new(start: u64, inc: u64) -> Self {
                StepRng {
                    state: start,
                    increment: inc,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.state;
                self.state = self.state.wrapping_add(self.increment);
                v
            }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let c = rng.gen_range(0u8..=255);
            let _ = c;
        }
    }

    #[test]
    fn gen_bool_probability_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..100_000)
            .map(|_| rng.gen_range(0.0..1.0f64))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(13);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<i32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(0, 1);
        use super::RngCore;
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
