//! Offline subset of `serde_json`: `to_string`, `to_string_pretty` and
//! `from_str` over the vendored `serde::Value` tree. Vendored because the
//! build environment has no network access.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the vendored value model; `Result` kept for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the vendored value model; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a borrowed [`Value`] tree as compact JSON.
///
/// Equivalent to [`to_string`] over a wrapper whose `to_value` clones
/// the tree, minus the clone — callers holding a prebuilt `Value`
/// (checkpoint snapshots, telemetry lines) render straight from the
/// borrow.
#[must_use]
pub fn value_to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            indent,
            level,
            '[',
            ']',
            |out, item, ind, lvl| {
                write_value(out, item, ind, lvl);
            },
        ),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            level,
            '{',
            '}',
            |out, (k, v), ind, lvl| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, lvl);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    if n.is_finite() && n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values round-trip without a fractional point, matching
        // how integer fields were serialized upstream. Formatting straight
        // into the output buffer avoids a temporary allocation per number
        // — number-dense documents (checkpoints, telemetry) render these
        // by the thousand.
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/inf; upstream serde_json errors here, but the
        // workspace never serializes non-finite numbers.
        out.push_str("null");
    }
}

/// Characters that cannot pass through a JSON string verbatim.
fn needs_escape(c: char) -> bool {
    matches!(c, '"' | '\\') || (c as u32) < 0x20
}

fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    // Copy maximal clean runs wholesale; escape only at the breaks.
    let mut rest = s;
    while let Some(i) = rest.find(needs_escape) {
        out.push_str(&rest[..i]);
        let c = rest[i..]
            .chars()
            .next()
            .expect("find returned a char index");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
        }
        rest = &rest[i + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number().map(Value::Num),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs never appear in this workspace's
                            // payloads (ASCII identifiers only).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Fast path: extend over a maximal run of plain ASCII
                    // bytes in one append. Validating per character from
                    // here to the end of the input made parsing quadratic
                    // in document size.
                    let start = self.pos;
                    while matches!(self.bytes.get(self.pos),
                        Some(&b) if b != b'"' && b != b'\\' && b < 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ASCII bytes are valid UTF-8"),
                    );
                }
                Some(_) => {
                    // Advance over one multi-byte UTF-8 encoded char (at
                    // most 4 bytes; a following char cut off mid-sequence
                    // by the window still leaves a valid prefix).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(Error::new("invalid UTF-8")),
                    };
                    let c = valid.chars().next().expect("non-empty valid prefix");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::new(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use serde::Value;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("name".to_string(), Value::Str("fp \"mul\"\n".to_string())),
            ("count".to_string(), Value::Num(42.0)),
            ("ratio".to_string(), Value::Num(-0.125)),
            (
                "flags".to_string(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = super::to_string(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = super::from_str(&s).unwrap();
        assert_eq!(back.0, v);

        let pretty = super::to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = super::from_str(&pretty).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn integers_render_without_fraction() {
        let s = super::to_string(&ValueWrap(Value::Num(3.0))).unwrap();
        assert_eq!(s, "3");
        let s = super::to_string(&ValueWrap(Value::Num(2.5e-9))).unwrap();
        let n: f64 = s.parse().unwrap();
        assert_eq!(n, 2.5e-9);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(super::from_str::<ValueWrap>("1 2").is_err());
        assert!(super::from_str::<ValueWrap>("{\"a\":").is_err());
    }

    /// Test helper: passes a raw `Value` through the trait interface.
    struct ValueWrap(Value);

    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, serde::DeError> {
            Ok(ValueWrap(v.clone()))
        }
    }
}
