//! Fast EM resonance detection (§5.3) across all three of the paper's
//! CPUs, including the power-gating shifts of Fig. 13.
//!
//! ```sh
//! cargo run --release --example resonance_sweep
//! ```

use emvolt::prelude::*;

fn sweep(domain: &VoltageDomain, seed: u64) -> Result<f64, Box<dyn std::error::Error>> {
    let mut bench = EmBench::new(seed);
    let cfg = FastSweepConfig::for_domain(domain);
    let result = fast_resonance_sweep(domain, &mut bench, &cfg)?;
    Ok(result.resonance_hz)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let juno = JunoBoard::new();
    let amd = AmdDesktop::new();

    println!("platform            analytic    EM sweep");
    for (name, domain, seed) in [
        ("A72 (2 cores)", juno.a72.clone(), 1u64),
        ("A53 (4 cores)", juno.a53.clone(), 2),
        ("Athlon (4 cores)", amd.domain.clone(), 3),
    ] {
        let f = sweep(&domain, seed)?;
        println!(
            "{name:<18} {:>7.1} MHz {:>7.1} MHz",
            domain.expected_resonance_hz() / 1e6,
            f / 1e6
        );
    }

    // Power-gating shifts the A53 resonance upward (Fig. 13).
    println!("\nA53 power-gating scenarios:");
    for active in (1..=4).rev() {
        let mut a53 = juno.a53.clone();
        a53.power_gate(active);
        let f = sweep(&a53, 10 + active as u64)?;
        println!(
            "  {active} core(s) powered: analytic {:>5.1} MHz, measured {:>5.1} MHz",
            a53.expected_resonance_hz() / 1e6,
            f / 1e6
        );
    }
    println!("\ngating cores off removes die capacitance, raising the resonance —");
    println!("a power-saving feature that makes voltage noise faster and harder to damp (§6).");
    Ok(())
}
