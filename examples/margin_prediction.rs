//! Voltage-margin prediction from passive EM readings (§10 future work):
//! calibrate once with direct measurements, then estimate any workload's
//! droop and V_MIN with nothing but the antenna.
//!
//! ```sh
//! cargo run --release --example margin_prediction
//! ```

use emvolt::core::MarginPredictor;
use emvolt::isa::kernels::resonant_stress_kernel;
use emvolt::isa::Kernel;
use emvolt::platform::spec2006_suite;
use emvolt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let mut bench = EmBench::new(2025);
    let cfg = RunConfig::default();
    let suite = spec2006_suite(Isa::ArmV8);

    // One-off calibration: a handful of workloads spanning the dynamic
    // range, with their droops measured directly.
    let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
    let mut calibration: Vec<(&str, &Kernel)> = suite
        .iter()
        .take(6)
        .map(|w| (w.name.as_str(), &w.kernel))
        .collect();
    calibration.push(("stress", &stress));
    let predictor = MarginPredictor::calibrate(&domain, &mut bench, &calibration, 2, 10, &cfg)?;
    println!(
        "calibrated on {} workloads: droop = {:.1} mV/sqrt(W) * A + {:.1} mV   (R² = {:.3})",
        calibration.len(),
        predictor.slope() * 1e3,
        predictor.intercept() * 1e3,
        predictor.r_squared()
    );

    // From here on: antenna only.
    let model = FailureModel::juno_a72();
    println!(
        "\n{:<12} {:>15} {:>12} {:>15}",
        "workload", "predicted droop", "actual", "predicted Vmin"
    );
    for w in suite.iter().skip(6) {
        let run = domain.run(&w.kernel, 2, &cfg)?;
        let reading = bench.measure(&run, 10);
        let predicted = predictor.predict_droop(&reading);
        let vmin = predictor.predict_vmin(&reading, &model, domain.frequency());
        println!(
            "{:<12} {:>12.1} mV {:>9.1} mV {:>13.3} V",
            w.name,
            predicted * 1e3,
            run.max_droop() * 1e3,
            vmin
        );
    }
    println!("\nno undervolting ladder, no probe: the EM reading alone ranks the margins.");
    Ok(())
}
