//! Explore the power-delivery-network substrate directly: impedance
//! spectra, resonance calibration and resonant amplification (the physics
//! of the paper's Figs. 1 and 2).
//!
//! ```sh
//! cargo run --release --example pdn_explorer
//! ```

use emvolt::circuit::{Stimulus, TransientConfig};
use emvolt::pdn::{calibrate_die_capacitance, find_resonance_peaks, log_freqs};
use emvolt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The generic Fig. 1(a) network.
    let params = PdnParams::generic_mobile();
    let pdn = Pdn::new(params.clone(), 2);

    println!("impedance seen from the die (log sweep 1 kHz – 1 GHz):");
    let sweep = pdn.impedance_sweep(&log_freqs(1e3, 1e9, 800))?;
    for peak in find_resonance_peaks(&sweep).into_iter().take(3) {
        println!(
            "  resonance at {:>10.3} MHz  |Z| = {:>7.1} mOhm",
            peak.frequency_hz / 1e6,
            peak.impedance_ohms * 1e3
        );
    }
    println!(
        "  analytic 1st-order estimate: {:.1} MHz",
        params.first_order_resonance_hz(2) / 1e6
    );

    // Resonant vs off-resonance excitation (Fig. 2).
    let f_res = params.first_order_resonance_hz(2);
    let mut excited = Pdn::new(params.clone(), 2);
    let cfg = TransientConfig::new(0.25e-9, 4e-6).with_warmup(2e-6);
    println!("\n1 A square-wave excitation:");
    for f in [f_res / 3.0, f_res, f_res * 2.5] {
        excited.set_load(Stimulus::square(0.0, 1.0, f));
        let (v, i) = excited.transient(&cfg)?;
        println!(
            "  {:>6.1} MHz: V_DIE p2p {:>6.1} mV, I_DIE p2p {:>5.2} A{}",
            f / 1e6,
            v.peak_to_peak() * 1e3,
            i.peak_to_peak(),
            if (f - f_res).abs() < 1.0 {
                "   <- resonant"
            } else {
                ""
            }
        );
    }

    // Calibration: solve the die-capacitance split from two measured
    // resonances, the way the platform models match the paper's numbers.
    let die = calibrate_die_capacitance(params.effective_tank_inductance(), 4, 76.5e6, 97e6)?;
    println!(
        "\ncalibrated A53-like die capacitance: cluster {:.1} nF + {:.1} nF per core",
        die.cluster_farads * 1e9,
        die.per_core_farads * 1e9
    );
    for n in (1..=4).rev() {
        let mut p = params.clone();
        p.die_capacitance = die;
        println!(
            "  {n} core(s) powered -> first-order resonance {:.1} MHz",
            p.first_order_resonance_hz(n) / 1e6
        );
    }
    Ok(())
}
