//! V_MIN characterization (§5.2): rank workloads by the lowest voltage at
//! which they still execute correctly, and compare against a resonant
//! stress kernel.
//!
//! ```sh
//! cargo run --release --example vmin_characterization
//! ```

use emvolt::isa::kernels::resonant_stress_kernel;
use emvolt::platform::spec2006_suite;
use emvolt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let model = FailureModel::juno_a72();

    println!(
        "undervolting ladder on {}: start {:.2} V, 10 mV steps\n",
        domain.core_model().name,
        domain.voltage()
    );
    println!(
        "{:<22} {:>9} {:>11} {:>9}",
        "workload", "Vmin (V)", "droop (mV)", "margin"
    );

    let mut entries: Vec<(String, emvolt::isa::Kernel)> = spec2006_suite(Isa::ArmV8)
        .into_iter()
        .filter(|w| ["gcc", "mcf", "namd", "lbm"].contains(&w.name.as_str()))
        .map(|w| (w.name, w.kernel))
        .collect();
    // A hand-built resonant kernel standing in for a GA virus: a SIMD
    // burst plus a chain that puts the loop frequency on the resonance.
    entries.push((
        "resonant stress loop".into(),
        resonant_stress_kernel(Isa::ArmV8, 12, 17),
    ));

    for (name, kernel) in entries {
        let cfg = VminConfig {
            trials: 5,
            loaded_cores: 2,
            ..VminConfig::default()
        };
        let res = vmin_test(&domain, &kernel, &model, &cfg)?;
        println!(
            "{:<22} {:>9.3} {:>11.1} {:>7.0}mV",
            name,
            res.vmin_v,
            res.max_droop_v * 1e3,
            (domain.voltage() - res.vmin_v) * 1e3
        );
    }

    println!("\nworkloads with stronger resonant excitation droop deeper and fail earlier;");
    println!("the margin a vendor must budget is set by the worst case — the stress loop.");
    Ok(())
}
