//! Quickstart: characterize a Cortex-A72-class voltage domain with the
//! EM methodology end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use emvolt::prelude::*;
use emvolt_ga::GaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the platform: a dual-core out-of-order cluster on the
    //    calibrated Juno-like PDN (first-order resonance ~69 MHz).
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    println!(
        "platform: {} x{} @ {:.1} GHz, {:.2} V",
        domain.core_model().name,
        domain.core_count(),
        domain.max_frequency() / 1e9,
        domain.voltage()
    );
    println!(
        "analytic first-order resonance: {:.1} MHz",
        domain.expected_resonance_hz() / 1e6
    );

    let mut session = Characterization::new(domain, 42);

    // 2. §5.3: the fast loop-frequency sweep localizes the resonance in
    //    simulated minutes instead of a multi-hour GA run.
    let sweep = session.find_resonance_fast()?;
    println!(
        "\nfast sweep: resonance ≈ {:.1} MHz (physical campaign {})",
        sweep.resonance_hz / 1e6,
        sweep.campaign.display()
    );

    // 3. §5.1: evolve a dI/dt virus guided only by EM amplitude. A small
    //    GA keeps the example quick; raise population/generations to the
    //    paper's 50x60 for a production-strength virus.
    let config = VirusGenConfig {
        ga: GaConfig {
            population: 16,
            generations: 12,
            ..GaConfig::default()
        },
        loaded_cores: 2,
        samples_per_individual: 5,
        ..VirusGenConfig::default()
    };
    let virus = session.generate_virus("a72em-quick", &config)?;
    println!(
        "\nvirus after {} generations: {:.1} dBm at {:.1} MHz",
        virus.history.len(),
        virus.fitness,
        virus.dominant_hz / 1e6
    );
    println!("generated loop body:\n{}", virus.kernel.render());

    // 4. §5.2: quantify how hard the virus stresses the margin.
    let report = session.report(
        &virus,
        &FailureModel::juno_a72(),
        &VminConfig {
            trials: 5,
            loaded_cores: 2,
            ..VminConfig::default()
        },
    )?;
    println!(
        "V_MIN margin below nominal: {:.0} mV (loop {:.1} MHz, dominant {:.1} MHz, IPC {:.2})",
        report.voltage_margin_v * 1e3,
        report.loop_freq_hz / 1e6,
        report.dominant_freq_hz / 1e6,
        report.ipc
    );
    Ok(())
}
