//! Simultaneous voltage-noise monitoring of both Juno clusters through a
//! single antenna (§6.1, Fig. 15) — impossible with any physically
//! attached probe.
//!
//! ```sh
//! cargo run --release --example multi_domain_monitoring
//! ```

use emvolt::core::monitor::{capture_multi_domain, detect_signatures};
use emvolt::isa::kernels::padded_sweep_kernel;
use emvolt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = JunoBoard::new();
    let cfg = RunConfig::default();

    // Run a resonant kernel on each cluster simultaneously. Their PDNs
    // resonate at different frequencies (69 vs 76.5 MHz), so their EM
    // signatures are separable in one spectrum.
    let run_a72 = board
        .a72
        .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)?;
    let run_a53 = board
        .a53
        .run(&padded_sweep_kernel(Isa::ArmV8, 8), 4, &cfg)?;
    println!(
        "A72 loop at {:.1} MHz; A53 loop at {:.1} MHz",
        run_a72.loop_frequency / 1e6,
        run_a53.loop_frequency / 1e6
    );

    let mut bench = EmBench::new(2024);
    let reading = capture_multi_domain(&mut bench, &[&run_a72, &run_a53]);
    let signatures = detect_signatures(&reading, -95.0, 4, 4e6, 10.0);

    println!("\ndetected voltage-noise signatures:");
    for s in &signatures {
        println!("  {:>6.1} MHz at {:>6.1} dBm", s.freq_hz / 1e6, s.level_dbm);
    }
    let sees = |f: f64| signatures.iter().any(|s| (s.freq_hz - f).abs() < 5e6);
    println!(
        "\nA72 domain visible: {}   A53 domain visible: {}",
        sees(run_a72.loop_frequency),
        sees(run_a53.loop_frequency)
    );
    println!("one antenna observes every voltage domain at once — no probe points needed.");
    Ok(())
}
