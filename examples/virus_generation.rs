//! Full dI/dt virus generation on the AMD desktop platform, comparing the
//! EM-driven flow against the voltage-feedback baseline (§7).
//!
//! ```sh
//! cargo run --release --example virus_generation
//! ```

use emvolt::ga::GaConfig;
use emvolt::inst::{Oscilloscope, ScopeConfig};
use emvolt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let amd = AmdDesktop::new();
    let config = VirusGenConfig {
        ga: GaConfig {
            population: 24,
            generations: 20,
            ..GaConfig::default()
        },
        loaded_cores: 4,
        samples_per_individual: 5,
        ..VirusGenConfig::default()
    };

    // EM-driven: no probe, just the antenna.
    let mut bench = EmBench::new(7);
    let em_virus = generate_em_virus("amdEm", &amd.domain, &mut bench, &config)?;
    println!(
        "EM-driven virus:       {:>7.1} dBm at {:>5.1} MHz (campaign {})",
        em_virus.fitness,
        em_virus.dominant_hz / 1e6,
        em_virus.campaign.display()
    );

    // Voltage-feedback baseline: differential probe on the Kelvin pads.
    let mut scope_cfg = ScopeConfig::bench_scope();
    scope_cfg.v_center = amd.domain.voltage();
    let scope = Oscilloscope::new(scope_cfg);
    let osc_virus = generate_voltage_virus("amdOsc", &amd.domain, &scope, &config, 99)?;
    println!(
        "voltage-driven virus:  {:>7.1} mV droop at {:>5.1} MHz",
        osc_virus.fitness * 1e3,
        osc_virus.dominant_hz / 1e6
    );

    // Both flows find the same resonance and comparable stress.
    let cfg = RunConfig::default();
    let em_run = amd.domain.run(&em_virus.kernel, 4, &cfg)?;
    let osc_run = amd.domain.run(&osc_virus.kernel, 4, &cfg)?;
    println!(
        "\ndroop on 4 cores: EM virus {:.1} mV vs voltage virus {:.1} mV",
        em_run.max_droop() * 1e3,
        osc_run.max_droop() * 1e3
    );
    println!(
        "dominant frequencies within the same band: {}",
        (em_virus.dominant_hz - osc_virus.dominant_hz).abs() < 10e6
    );
    println!("\nthe EM flow needed no voltage probe — only an antenna near the package.");
    Ok(())
}
