//! PDN tamper detection from outside the case (§10 future work): the
//! EM-measured first-order resonance is a fingerprint of the board's
//! capacitance and inductance; rework, implants or missing decaps move
//! it.
//!
//! ```sh
//! cargo run --release --example tamper_detection
//! ```

use emvolt::core::tamper::{compare, fingerprint, TamperVerdict};
use emvolt::core::FastSweepConfig;
use emvolt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Golden reference captured at manufacturing time.
    let golden_board = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let cfg = FastSweepConfig::for_domain(&golden_board);
    let golden = fingerprint(&golden_board, &mut EmBench::new(1), &cfg)?;
    println!(
        "golden fingerprint: resonance {:.1} MHz, peak {:.1} dBm",
        golden.resonance_hz / 1e6,
        golden.peak_dbm
    );

    let audit = |label: &str, board: &VoltageDomain| -> Result<(), Box<dyn std::error::Error>> {
        let cfg = FastSweepConfig::for_domain(board);
        let fp = fingerprint(board, &mut EmBench::new(2), &cfg)?;
        match compare(&golden, &fp, 0.05) {
            TamperVerdict::Clean => {
                println!("{label:<32} {:.1} MHz  -> clean", fp.resonance_hz / 1e6)
            }
            TamperVerdict::ResonanceShift { shift, .. } => println!(
                "{label:<32} {:.1} MHz  -> TAMPERED ({:+.1}% resonance shift)",
                fp.resonance_hz / 1e6,
                shift * 100.0
            ),
        }
        Ok(())
    };

    println!();
    // A unit fresh off the same line.
    audit("identical unit", &golden_board.clone())?;

    // A reworked package that lost half its shared decap.
    let mut damaged = a72_pdn();
    damaged.die_capacitance.cluster_farads *= 0.5;
    audit(
        "decap removed during rework",
        &VoltageDomain::new("A72", CoreModel::cortex_a72(), damaged, 1.2e9),
    )?;

    // A hardware implant hanging extra capacitance on the rail.
    let mut implant = a72_pdn();
    implant.die_capacitance.cluster_farads *= 1.6;
    audit(
        "parasitic implant on the rail",
        &VoltageDomain::new("A72", CoreModel::cortex_a72(), implant, 1.2e9),
    )?;

    println!("\nthe check is non-contact and takes one fast sweep per unit.");
    Ok(())
}
