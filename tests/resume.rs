//! Kill-and-resume determinism for the step-engine (ISSUE 10): a
//! campaign interrupted at an arbitrary batch boundary and resumed from
//! its checkpoint must produce results identical to an uninterrupted
//! run — at any worker-thread count, including a different count on
//! resume than at interrupt.

use emvolt::backend::LiveBackend;
use emvolt::core::{generate_em_virus_resumable, VirusGenConfig};
use emvolt::engine::DriveOptions;
use emvolt::ga::GaConfig;
use emvolt::isa::kernels::resonant_stress_kernel;
use emvolt::obs::Telemetry;
use emvolt::prelude::*;
use emvolt::vmin::{vmin_test_resumable, FailureModel, VminConfig};
use std::path::PathBuf;

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

fn small_virus_config() -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 4,
            generations: 2,
            seed: 9,
            ..GaConfig::default()
        },
        kernel_len: 8,
        samples_per_individual: 2,
        ..VirusGenConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("emvolt_resume_{tag}_{}.jsonl", std::process::id()))
}

fn run_virus(opts: &DriveOptions) -> Option<emvolt::core::Virus> {
    let cfg = small_virus_config();
    let mut backend = LiveBackend::single(a72(), EmBench::new(9), cfg.run.clone());
    generate_em_virus_resumable("resume-test", &mut backend, "A72", &cfg, opts, |_| {}).unwrap()
}

fn assert_same_virus(a: &emvolt::core::Virus, b: &emvolt::core::Virus) {
    assert_eq!(a.kernel.render(), b.kernel.render());
    assert_eq!(a.fitness.to_bits(), b.fitness.to_bits());
    assert_eq!(a.dominant_hz.to_bits(), b.dominant_hz.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.index, y.index);
        assert_eq!(x.best_fitness.to_bits(), y.best_fitness.to_bits());
        assert_eq!(x.mean_fitness.to_bits(), y.mean_fitness.to_bits());
        assert_eq!(x.dominant_hz.to_bits(), y.dominant_hz.to_bits());
    }
}

#[test]
fn virus_resume_is_identical_at_any_thread_count() {
    let baseline = run_virus(&DriveOptions::default()).expect("uninterrupted run completes");
    // Interrupt after each of the first batches, resume with a thread
    // count different from both the baseline and the interrupted leg.
    for (interrupt_after, threads_a, threads_b) in [(1, 1, 4), (2, 4, 1), (3, 2, 3)] {
        let path = scratch(&format!("virus_{interrupt_after}"));
        let interrupted = run_virus(&DriveOptions {
            threads: threads_a,
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            max_batches: Some(interrupt_after),
            ..DriveOptions::default()
        });
        assert!(
            interrupted.is_none(),
            "batch limit {interrupt_after} should interrupt the campaign"
        );
        let resumed = run_virus(&DriveOptions {
            threads: threads_b,
            resume: Some(path.clone()),
            ..DriveOptions::default()
        })
        .expect("resumed run completes");
        assert_same_virus(&baseline, &resumed);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn vmin_resume_reproduces_the_ladder() {
    let domain = a72();
    let kernel = resonant_stress_kernel(Isa::ArmV8, 12, 17);
    let model = FailureModel::juno_a72();
    let cfg = VminConfig {
        trials: 3,
        golden_iterations: 40,
        ..VminConfig::default()
    };
    let baseline = vmin_test_resumable(
        &domain,
        &kernel,
        &model,
        &cfg,
        Telemetry::noop(),
        &DriveOptions::default(),
    )
    .unwrap()
    .expect("uninterrupted run completes");

    let path = scratch("vmin");
    let interrupted = vmin_test_resumable(
        &domain,
        &kernel,
        &model,
        &cfg,
        Telemetry::noop(),
        &DriveOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            max_batches: Some(3),
            ..DriveOptions::default()
        },
    )
    .unwrap();
    assert!(interrupted.is_none(), "batch limit should interrupt");
    let resumed = vmin_test_resumable(
        &domain,
        &kernel,
        &model,
        &cfg,
        Telemetry::noop(),
        &DriveOptions {
            resume: Some(path.clone()),
            ..DriveOptions::default()
        },
    )
    .unwrap()
    .expect("resumed run completes");
    std::fs::remove_file(&path).ok();

    assert_eq!(
        baseline.first_failure_v.to_bits(),
        resumed.first_failure_v.to_bits()
    );
    assert_eq!(baseline.vmin_v.to_bits(), resumed.vmin_v.to_bits());
    assert_eq!(baseline.ladder.len(), resumed.ladder.len());
    for ((va, oa), (vb, ob)) in baseline.ladder.iter().zip(&resumed.ladder) {
        assert_eq!(va.to_bits(), vb.to_bits());
        assert_eq!(oa, ob);
    }
}

#[test]
fn resume_refuses_a_mismatched_config() {
    let path = scratch("guard");
    let interrupted = run_virus(&DriveOptions {
        checkpoint: Some(path.clone()),
        checkpoint_every: 1,
        max_batches: Some(1),
        ..DriveOptions::default()
    });
    assert!(interrupted.is_none());

    // Same checkpoint, different GA seed: the fingerprint must refuse.
    let mut cfg = small_virus_config();
    cfg.ga.seed = 10;
    let mut backend = LiveBackend::single(a72(), EmBench::new(9), cfg.run.clone());
    let err = generate_em_virus_resumable(
        "resume-test",
        &mut backend,
        "A72",
        &cfg,
        &DriveOptions {
            resume: Some(path.clone()),
            ..DriveOptions::default()
        },
        |_| {},
    )
    .unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        err.to_string().contains("refusing to resume"),
        "unexpected error: {err}"
    );
}
