//! Reduced-scale checks of the paper's headline claims. The full-scale
//! numbers live in EXPERIMENTS.md; these tests guard the *shape* of each
//! result on every build.

use emvolt::core::{fast_resonance_sweep, generate_em_virus, FastSweepConfig, VirusGenConfig};
use emvolt::ga::GaConfig;
use emvolt::prelude::*;

fn small_ga() -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 10,
            generations: 6,
            ..GaConfig::default()
        },
        kernel_len: 30,
        loaded_cores: 2,
        samples_per_individual: 2,
        ..VirusGenConfig::default()
    }
}

/// §5.1 / Fig. 7: the EM-driven GA improves its fitness and its dominant
/// frequency lands inside the paper's 50-200 MHz first-order band.
#[test]
fn ga_improves_and_lands_in_band() {
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let mut bench = EmBench::new(42);
    let virus = generate_em_virus("test", &domain, &mut bench, &small_ga()).unwrap();
    let first = virus.history.first().unwrap().best_so_far();
    let last = virus.history.last().unwrap().best_so_far();
    assert!(last >= first, "fitness regressed: {first} -> {last}");
    assert!(
        (50e6..=200e6).contains(&virus.dominant_hz),
        "dominant {:.1} MHz outside band",
        virus.dominant_hz / 1e6
    );
}

/// §5.3 / Figs. 11, 16: the fast sweep finds each platform's first-order
/// resonance within ~20%.
#[test]
fn fast_sweep_finds_resonance_on_all_three_cpus() {
    let juno = JunoBoard::new();
    let amd = AmdDesktop::new();
    for (domain, seed) in [(&juno.a72, 1u64), (&juno.a53, 2), (&amd.domain, 3)] {
        let mut bench = EmBench::new(seed);
        let mut cfg = FastSweepConfig::for_domain(domain);
        cfg.samples_per_point = 3;
        // Halve the point count to keep the test quick.
        cfg.cpu_freqs_hz = cfg.cpu_freqs_hz.iter().step_by(2).copied().collect();
        let result = fast_resonance_sweep(domain, &mut bench, &cfg).unwrap();
        let expected = domain.expected_resonance_hz();
        assert!(
            (result.resonance_hz - expected).abs() / expected < 0.25,
            "{}: sweep {:.1} MHz vs analytic {:.1} MHz",
            domain.name(),
            result.resonance_hz / 1e6,
            expected / 1e6
        );
    }
}

/// §6 / Fig. 13: power-gating cores raises the first-order resonance
/// monotonically on the quad-core A53.
#[test]
fn power_gating_raises_resonance_monotonically() {
    let board = JunoBoard::new();
    let mut last = 0.0;
    for active in (1..=4).rev() {
        let mut a53 = board.a53.clone();
        a53.power_gate(active);
        let f = a53.expected_resonance_hz();
        assert!(f > last, "resonance must rise as cores gate off");
        last = f;
    }
    // Endpoints match the paper's measured values.
    let p = a53_pdn();
    assert!((p.first_order_resonance_hz(4) - 76.5e6).abs() < 1e6);
    assert!((p.first_order_resonance_hz(1) - 97e6).abs() < 1.5e6);
}

/// Table 1 sanity: the three platforms expose the paper's configuration.
#[test]
fn table1_platform_inventory() {
    let juno = JunoBoard::new();
    let amd = AmdDesktop::new();
    assert_eq!(juno.a72.core_count(), 2);
    assert_eq!(juno.a53.core_count(), 4);
    assert_eq!(amd.domain.core_count(), 4);
    assert_eq!(juno.a72.core_model().isa, Isa::ArmV8);
    assert_eq!(amd.domain.core_model().isa, Isa::X86_64);
    assert!(!juno.a72.core_model().out_of_order || juno.a72.core_model().window > 0);
    assert!(!juno.a53.core_model().out_of_order, "A53 is in-order");
}

/// §2.2 / Fig. 2: pulsed excitation at the resonance amplifies both die
/// voltage and die current well beyond off-resonance excitation.
#[test]
fn resonant_amplification_holds() {
    use emvolt::circuit::{Stimulus, TransientConfig};
    let params = a72_pdn();
    let f_res = params.first_order_resonance_hz(2);
    let mut pdn = Pdn::new(params, 2);
    let cfg = TransientConfig::new(0.5e-9, 3e-6).with_warmup(1.5e-6);
    pdn.set_load(Stimulus::square(0.0, 0.5, f_res));
    let (v_on, i_on) = pdn.transient(&cfg).unwrap();
    pdn.set_load(Stimulus::square(0.0, 0.5, f_res / 3.1));
    let (v_off, i_off) = pdn.transient(&cfg).unwrap();
    assert!(v_on.peak_to_peak() > 2.0 * v_off.peak_to_peak());
    assert!(i_on.peak_to_peak() > 1.5 * i_off.peak_to_peak());
    // Resonant current swing exceeds the injected 0.5 A.
    assert!(i_on.peak_to_peak() > 0.5);
}

/// Helper so the test reads naturally: per-generation record's running
/// best.
trait BestSoFar {
    fn best_so_far(&self) -> f64;
}

impl BestSoFar for emvolt::core::GenerationRecord {
    fn best_so_far(&self) -> f64 {
        self.best_fitness
    }
}
