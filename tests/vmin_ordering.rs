//! Integration tests of the V_MIN machinery across crates: the ordering
//! claims behind Figs. 10, 14 and 18.

use emvolt::isa::kernels::resonant_stress_kernel;
use emvolt::platform::{desktop_suite, spec2006_suite};
use emvolt::prelude::*;
use emvolt::vmin::Outcome;

fn quick(loaded: usize, start: f64) -> VminConfig {
    VminConfig {
        start_v: start,
        floor_v: start - 0.35,
        trials: 3,
        loaded_cores: loaded,
        golden_iterations: 40,
        ..VminConfig::default()
    }
}

/// Fig. 10 shape: a resonant stress kernel fails at a higher voltage than
/// representative SPEC-like workloads on the A72.
#[test]
fn resonant_kernel_has_higher_vmin_than_benchmarks() {
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let model = FailureModel::juno_a72();
    let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
    let stress_res = vmin_test(&domain, &stress, &model, &quick(2, 1.0)).unwrap();

    for name in ["gcc", "sjeng", "mcf"] {
        let bench = spec2006_suite(Isa::ArmV8)
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        let res = vmin_test(&domain, &bench.kernel, &model, &quick(2, 1.0)).unwrap();
        assert!(
            stress_res.vmin_v >= res.vmin_v,
            "{name}: stress Vmin {:.3} < benchmark Vmin {:.3}",
            stress_res.vmin_v,
            res.vmin_v
        );
        assert!(
            stress_res.max_droop_v > res.max_droop_v,
            "{name}: stress droop {:.1} mV <= benchmark {:.1} mV",
            stress_res.max_droop_v * 1e3,
            res.max_droop_v * 1e3
        );
    }
}

/// Fig. 18 shape: on the AMD platform the stability tests pass at
/// voltages where a resonant stress kernel already fails.
#[test]
fn amd_stability_tests_are_not_worst_case() {
    let amd = AmdDesktop::new();
    let model = FailureModel::amd();
    let stress = resonant_stress_kernel(Isa::X86_64, 16, 40);
    let stress_res = vmin_test(&amd.domain, &stress, &model, &quick(4, 1.4)).unwrap();
    for name in ["prime95", "amd_stability"] {
        let w = desktop_suite()
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        let res = vmin_test(&amd.domain, &w.kernel, &model, &quick(4, 1.4)).unwrap();
        assert!(
            stress_res.vmin_v >= res.vmin_v,
            "{name} should not be worst case: stress {:.3} vs {:.3}",
            stress_res.vmin_v,
            res.vmin_v
        );
    }
}

/// §5.2: descending the ladder passes first, then deviates within the
/// ~10 mV SDC band, then crashes — and the campaign stops at the crash.
#[test]
fn ladder_shows_sdc_band_then_crash() {
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let model = FailureModel::juno_a72();
    let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
    let cfg = VminConfig {
        trials: 8,
        golden_iterations: 80,
        loaded_cores: 2,
        ..VminConfig::default()
    };
    let res = vmin_test(&domain, &stress, &model, &cfg).unwrap();
    let flat: Vec<Outcome> = res.ladder.iter().flat_map(|(_, o)| o.clone()).collect();
    assert!(flat.contains(&Outcome::Pass));
    assert!(flat.contains(&Outcome::SystemCrash));
    assert!(
        flat.iter()
            .any(|o| matches!(o, Outcome::Sdc | Outcome::AppCrash)),
        "no SDC band observed"
    );
    // The ladder terminates at the crash voltage.
    assert!(res.ladder.last().unwrap().1.contains(&Outcome::SystemCrash));
}

/// Undervolting the domain moves the failure point consistently: a lower
/// critical voltage (faster silicon) yields a lower V_MIN.
#[test]
fn vmin_tracks_the_critical_voltage() {
    let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
    let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
    let slow = FailureModel {
        v_crit: 0.80,
        ..FailureModel::juno_a72()
    };
    let fast = FailureModel {
        v_crit: 0.76,
        ..FailureModel::juno_a72()
    };
    let slow_res = vmin_test(&domain, &stress, &slow, &quick(2, 1.0)).unwrap();
    let fast_res = vmin_test(&domain, &stress, &fast, &quick(2, 1.0)).unwrap();
    assert!(
        slow_res.vmin_v > fast_res.vmin_v,
        "slower silicon must fail earlier: {:.3} vs {:.3}",
        slow_res.vmin_v,
        fast_res.vmin_v
    );
    let delta = slow_res.vmin_v - fast_res.vmin_v;
    assert!(
        (delta - 0.04).abs() <= 0.015,
        "Vmin shift {delta:.3} V should track the 40 mV v_crit shift"
    );
}
