//! Integration tests of the experiment harness and the instrument rig.

use emvolt::isa::kernels::padded_sweep_kernel;
use emvolt::prelude::*;
use emvolt_experiments::{run_experiment, Options};

fn quick() -> Options {
    Options {
        quick: true,
        ..Options::default()
    }
}

/// The cheap experiments run end-to-end through the registry and produce
/// the sections their figures require.
#[test]
fn cheap_experiments_run_through_the_registry() {
    std::env::set_var(
        "EMVOLT_RESULTS",
        std::env::temp_dir().join("emvolt_test_results"),
    );
    let table1 = run_experiment("table1", &quick()).expect("table1 runs");
    assert!(table1.contains("Cortex-A72"));
    assert!(table1.contains("Athlon II"));

    let fig02 = run_experiment("fig02", &quick()).expect("fig02 runs");
    assert!(fig02.contains("resonant"));

    let fig06 = run_experiment("fig06", &quick()).expect("fig06 runs");
    assert!(fig06.contains("self-resonance"));
    assert!(fig06.contains("2.9"), "dip near 2.95 GHz: {fig06}");
}

/// The OC-DSO capture and the EM path agree end to end: the frequency the
/// scope FFT sees on the rail is the frequency the analyzer sees over the
/// air (the Fig. 9 property as a regression test).
#[test]
fn scope_and_analyzer_agree_on_the_dominant_frequency() {
    use emvolt::dsp::{Spectrum, Window};
    use emvolt::inst::{Oscilloscope, ScopeConfig};
    use rand::{rngs::StdRng, SeedableRng};

    let board = JunoBoard::new();
    let run = board
        .a72
        .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &RunConfig::fast())
        .expect("run succeeds");

    let mut bench = EmBench::new(99);
    let reading = bench.measure(&run, 10);

    let scope = Oscilloscope::new(ScopeConfig::oc_dso());
    let mut rng = StdRng::seed_from_u64(99);
    let shot = scope.capture(&run.v_die, &mut rng);
    let (f_scope, _) = Spectrum::of_trace(&shot, Window::Hann)
        .peak_in_band(50e6, 200e6)
        .expect("band covered");

    assert!(
        (reading.dominant_hz - f_scope).abs() < 3e6,
        "analyzer {:.1} MHz vs scope {:.1} MHz",
        reading.dominant_hz / 1e6,
        f_scope / 1e6
    );
}

/// Max-hold across a phased run captures the loud phase's spike even
/// though most sweeps see the quiet phase.
#[test]
fn max_hold_catches_intermittent_noise() {
    use emvolt::inst::{TraceAccumulator, TraceMode};
    use emvolt::isa::kernels::{resonant_stress_kernel, sweep_kernel};

    let board = JunoBoard::new();
    let cfg = RunConfig::fast();
    let quiet = board
        .a72
        .run(&sweep_kernel(Isa::ArmV8), 1, &cfg)
        .expect("quiet run");
    let loud = board
        .a72
        .run(&resonant_stress_kernel(Isa::ArmV8, 12, 17), 2, &cfg)
        .expect("loud run");

    let mut bench = EmBench::new(7);
    let mut hold = TraceAccumulator::new(TraceMode::MaxHold);
    for _ in 0..4 {
        hold.add(&bench.sweep(&quiet));
    }
    hold.add(&bench.sweep(&loud)); // one loud sweep among many quiet ones
    for _ in 0..4 {
        hold.add(&bench.sweep(&quiet));
    }
    let (_, held) = hold.peak_in_band(50e6, 200e6).expect("band covered");
    let quiet_only = bench
        .sweep(&quiet)
        .peak_in_band(50e6, 200e6)
        .expect("band covered")
        .1;
    assert!(
        held > quiet_only + 10.0,
        "max-hold {held} dBm should retain the loud spike over {quiet_only} dBm"
    );
}

/// The assembly parser loads what the CLI/docs print: a full round trip
/// through text for a generated virus-sized kernel.
#[test]
fn kernels_survive_a_text_round_trip() {
    use emvolt::isa::{parse_kernel, InstructionPool};
    use rand::{rngs::StdRng, SeedableRng};

    for isa in [Isa::ArmV8, Isa::X86_64] {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(123);
        let kernel = pool.random_kernel(50, &mut rng);
        let text = kernel.render();
        let parsed = parse_kernel(isa, &text).expect("parses");
        assert_eq!(parsed.render(), text);
    }
}
