//! Integration tests across the whole measurement chain:
//! kernel -> CPU current -> PDN -> radiation -> antenna -> analyzer.

use emvolt::isa::kernels::{padded_sweep_kernel, sweep_kernel};
use emvolt::prelude::*;

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

#[test]
fn resonant_kernel_outshines_off_resonance_kernel() {
    let domain = a72();
    let cfg = RunConfig::fast();
    let mut bench = EmBench::new(1);
    // ~70 MHz loop (on resonance) vs ~240 MHz loop (far above).
    let on = domain
        .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
        .unwrap();
    let off = domain.run(&sweep_kernel(Isa::ArmV8), 2, &cfg).unwrap();
    let on_reading = bench.measure(&on, 5);
    let off_reading = bench.measure(&off, 5);
    assert!(
        on_reading.metric_dbm > off_reading.metric_dbm + 6.0,
        "resonant {} dBm vs off-resonance {} dBm",
        on_reading.metric_dbm,
        off_reading.metric_dbm
    );
    // And the dominant frequency sits at the PDN resonance.
    let f_res = domain.expected_resonance_hz();
    assert!(
        (on_reading.dominant_hz - f_res).abs() < 6e6,
        "dominant {:.1} MHz vs resonance {:.1} MHz",
        on_reading.dominant_hz / 1e6,
        f_res / 1e6
    );
}

#[test]
fn em_amplitude_tracks_voltage_noise() {
    // The paper's central correlation: stronger EM metric <=> more droop.
    let domain = a72();
    let cfg = RunConfig::fast();
    let mut bench = EmBench::new(2);
    let mut points: Vec<(f64, f64)> = Vec::new();
    for pad in [0usize, 8, 13, 17, 22, 30] {
        let run = domain
            .run(&padded_sweep_kernel(Isa::ArmV8, pad), 2, &cfg)
            .unwrap();
        let reading = bench.measure(&run, 5);
        points.push((reading.metric_dbm, run.max_droop()));
    }
    // Rank correlation between EM amplitude and droop must be positive.
    let mut concordant = 0i32;
    let mut discordant = 0i32;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let em = points[i].0 - points[j].0;
            let droop = points[i].1 - points[j].1;
            if em * droop > 0.0 {
                concordant += 1;
            } else if em * droop < 0.0 {
                discordant += 1;
            }
        }
    }
    assert!(
        concordant > discordant,
        "EM/droop correlation broken: {points:?}"
    );
}

#[test]
fn more_loaded_cores_radiate_more() {
    let domain = a72();
    let cfg = RunConfig::fast();
    let mut bench = EmBench::new(3);
    let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
    let one = domain.run(&kernel, 1, &cfg).unwrap();
    let two = domain.run(&kernel, 2, &cfg).unwrap();
    let r1 = bench.measure(&one, 5);
    let r2 = bench.measure(&two, 5);
    assert!(
        r2.metric_dbm > r1.metric_dbm + 3.0,
        "2-core {} dBm vs 1-core {} dBm",
        r2.metric_dbm,
        r1.metric_dbm
    );
}

#[test]
fn idle_reads_at_the_noise_floor() {
    let domain = a72();
    let mut bench = EmBench::new(4);
    let idle = domain.run_idle(&RunConfig::fast()).unwrap();
    let reading = bench.measure(&idle, 5);
    assert!(
        reading.metric_dbm < -85.0,
        "idle should be near the floor, got {} dBm",
        reading.metric_dbm
    );
}

#[test]
fn chain_is_deterministic_end_to_end() {
    let domain = a72();
    let cfg = RunConfig::fast();
    let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
    let a = {
        let run = domain.run(&kernel, 2, &cfg).unwrap();
        EmBench::new(5).measure(&run, 5)
    };
    let b = {
        let run = domain.run(&kernel, 2, &cfg).unwrap();
        EmBench::new(5).measure(&run, 5)
    };
    assert_eq!(a.metric_dbm, b.metric_dbm);
    assert_eq!(a.dominant_hz, b.dominant_hz);
}

#[test]
fn prelude_api_is_usable() {
    // Compile-time facade check: the prelude exposes enough to build
    // every major object.
    let _ = JunoBoard::new();
    let _ = AmdDesktop::new();
    let _ = InstructionPool::default_for(Isa::X86_64);
    let _ = FailureModel::amd();
    let _ = VminConfig::default();
    let _ = Architecture::armv8();
}
