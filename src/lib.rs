//! # emvolt
//!
//! A complete reproduction of *"Leveraging CPU Electromagnetic Emanations
//! for Voltage Noise Characterization"* (Hadjilambrou, Das, Antoniades,
//! Sazeides — MICRO 2018) as a Rust workspace: the paper's EM-driven
//! dI/dt stress-test generation and PDN resonance detection, plus every
//! substrate it needs (circuit/PDN simulation, cycle-level CPU current
//! models, EM radiation physics, instrument models, a GA engine, platform
//! assemblies and a V_MIN harness).
//!
//! This crate is the facade: it re-exports each subsystem under a short
//! module name. Depend on the individual `emvolt-*` crates instead when
//! you only need one layer.
//!
//! # Quick start
//!
//! ```no_run
//! use emvolt::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A Cortex-A72-class voltage domain with the paper's calibrated PDN.
//! let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
//! let mut session = Characterization::new(domain, 42);
//!
//! // §5.3: find the first-order resonance in simulated minutes.
//! let sweep = session.find_resonance_fast()?;
//! println!("resonance ≈ {:.1} MHz", sweep.resonance_hz / 1e6);
//!
//! // §5.1: evolve a dI/dt virus guided only by EM amplitude.
//! let virus = session.generate_virus("a72em", &VirusGenConfig::default())?;
//! println!("virus radiates at {:.1} MHz", virus.dominant_hz / 1e6);
//! println!("{}", virus.kernel.render());
//! # Ok(())
//! # }
//! ```
//!
//! # Layout
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`obs`] | `emvolt-obs` | telemetry: spans, counters, JSONL traces |
//! | [`backend`] | `emvolt-backend` | measurement backends: live, record, replay, cache |
//! | [`circuit`] | `emvolt-circuit` | MNA netlists, AC + transient analysis |
//! | [`dsp`] | `emvolt-dsp` | FFT, windows, spectra |
//! | [`pdn`] | `emvolt-pdn` | die–package–PCB network, resonance math |
//! | [`isa`] | `emvolt-isa` | instruction descriptors, kernels, pools |
//! | [`cpu`] | `emvolt-cpu` | cycle-level current-trace models |
//! | [`em`] | `emvolt-em` | antenna + radiation channel |
//! | [`inst`] | `emvolt-inst` | spectrum analyzer, oscilloscope, VNA |
//! | [`ga`] | `emvolt-ga` | the genetic-algorithm engine |
//! | [`engine`] | `emvolt-engine` | resumable step-engine, checkpoint store |
//! | [`platform`] | `emvolt-platform` | Juno/AMD boards, workloads, EM rig |
//! | [`vmin`] | `emvolt-vmin` | V_MIN harness and failure model |
//! | [`core`] | `emvolt-core` | the paper's EM methodology itself |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use emvolt_backend as backend;
pub use emvolt_circuit as circuit;
pub use emvolt_core as core;
pub use emvolt_cpu as cpu;
pub use emvolt_dsp as dsp;
pub use emvolt_em as em;
pub use emvolt_engine as engine;
pub use emvolt_ga as ga;
pub use emvolt_inst as inst;
pub use emvolt_isa as isa;
pub use emvolt_obs as obs;
pub use emvolt_pdn as pdn;
pub use emvolt_platform as platform;
pub use emvolt_vmin as vmin;

/// The most common types in one import.
pub mod prelude {
    pub use emvolt_backend::{BackendSpec, LiveBackend, MeasurementBackend};
    pub use emvolt_core::{
        fast_resonance_sweep, fast_resonance_sweep_on, generate_em_virus, generate_em_virus_on,
        generate_voltage_virus, Characterization, FastSweepConfig, VirusGenConfig,
    };
    pub use emvolt_cpu::{CoreModel, Cpu, SimConfig};
    pub use emvolt_ga::{GaConfig, GaEngine, KernelRepresentation};
    pub use emvolt_isa::{Architecture, InstructionPool, Isa, Kernel};
    pub use emvolt_pdn::{Pdn, PdnParams};
    pub use emvolt_platform::{
        a53_pdn, a72_pdn, amd_pdn, AmdDesktop, EmBench, JunoBoard, RunConfig, VoltageDomain,
    };
    pub use emvolt_vmin::{vmin_test, FailureModel, VminConfig};
}
