//! `emvolt` — command-line front end for the EM voltage-noise
//! characterization flow.
//!
//! ```sh
//! emvolt platforms
//! emvolt sweep --platform a72 [--cores 1]
//! emvolt impedance --platform amd
//! emvolt virus --platform a53 [--population 20] [--generations 15] [--seed 7]
//! emvolt vmin --platform a72 [--workload lbm | --stress]
//! ```

use emvolt::core::{fast_resonance_sweep, generate_em_virus, FastSweepConfig, VirusGenConfig};
use emvolt::ga::GaConfig;
use emvolt::isa::kernels::resonant_stress_kernel;
use emvolt::pdn::{lin_freqs, strongest_peak_in_band};
use emvolt::platform::spec2006_suite;
use emvolt::prelude::*;
use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

const USAGE: &str = "\
emvolt — EM-emanation-driven voltage-noise characterization

USAGE:
    emvolt <COMMAND> [OPTIONS]

COMMANDS:
    platforms                  list the built-in platforms
    sweep      --platform P    fast EM loop-frequency resonance sweep (paper §5.3)
    impedance  --platform P    PDN impedance table around the first-order band
    virus      --platform P    evolve a dI/dt virus with the EM-driven GA (§5.1)
    vmin       --platform P    undervolting ladder for a workload (§5.2)

OPTIONS:
    --platform a72|a53|amd|gpu   target platform (required except for `platforms`)
    --cores N                    powered cores (default: all)
    --population N               GA population (default 20)
    --generations N              GA generations (default 15)
    --seed S                     GA / measurement seed (default 42)
    --workload NAME              vmin: SPEC-like workload name (default lbm)
    --stress                     vmin: use the built-in resonant stress kernel
";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                "true".to_owned()
            };
            flags.insert(name.to_owned(), value);
        }
        i += 1;
    }
    flags
}

fn build_platform(flags: &HashMap<String, String>) -> Result<VoltageDomain, Box<dyn Error>> {
    let name = flags
        .get("platform")
        .ok_or("missing --platform (a72|a53|amd|gpu)")?;
    let mut domain = match name.as_str() {
        "a72" => JunoBoard::new().a72,
        "a53" => JunoBoard::new().a53,
        "amd" => AmdDesktop::new().domain,
        "gpu" => emvolt::platform::GpuCard::new().domain,
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    if let Some(cores) = flags.get("cores") {
        domain.power_gate(cores.parse()?);
    }
    Ok(domain)
}

fn seed(flags: &HashMap<String, String>) -> u64 {
    flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn cmd_platforms() {
    println!("platform  cores  clock      nominal  analytic resonance");
    for (tag, domain) in [
        ("a72", JunoBoard::new().a72),
        ("a53", JunoBoard::new().a53),
        ("amd", AmdDesktop::new().domain),
        ("gpu", emvolt::platform::GpuCard::new().domain),
    ] {
        println!(
            "{tag:<8}  {:<5}  {:>6.2} GHz  {:>5.2} V  {:>6.1} MHz",
            domain.core_count(),
            domain.max_frequency() / 1e9,
            domain.voltage(),
            domain.expected_resonance_hz() / 1e6
        );
    }
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let mut bench = EmBench::new(seed(flags));
    let cfg = FastSweepConfig::for_domain(&domain);
    eprintln!(
        "sweeping {} ({} powered cores) ...",
        domain.name(),
        domain.active_cores()
    );
    let result = fast_resonance_sweep(&domain, &mut bench, &cfg)?;
    println!("clock (MHz)  loop (MHz)  EM (dBm)");
    for p in &result.points {
        println!(
            "{:>11.1}  {:>10.1}  {:>8.1}",
            p.cpu_freq_hz / 1e6,
            p.loop_freq_hz / 1e6,
            p.amplitude_dbm
        );
    }
    println!(
        "\nfirst-order resonance ≈ {:.1} MHz (analytic {:.1} MHz); physical sweep {}",
        result.resonance_hz / 1e6,
        domain.expected_resonance_hz() / 1e6,
        result.campaign.display()
    );
    Ok(())
}

fn cmd_impedance(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let pdn = domain.build_pdn();
    let freqs = lin_freqs(20e6, 250e6, 2e6);
    let sweep = pdn.impedance_sweep(&freqs)?;
    println!("freq (MHz)  |Z| (mOhm)");
    for (f, z) in sweep.iter().step_by(5) {
        println!("{:>10.1}  {:>10.2}", f / 1e6, z.norm() * 1e3);
    }
    if let Some(peak) = strongest_peak_in_band(&sweep, 50e6, 200e6) {
        println!(
            "\nfirst-order peak: {:.1} MHz at {:.1} mOhm",
            peak.frequency_hz / 1e6,
            peak.impedance_ohms * 1e3
        );
    }
    Ok(())
}

fn cmd_virus(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let population = flags
        .get("population")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let generations = flags
        .get("generations")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let mut bench = EmBench::new(seed(flags));
    let cfg = VirusGenConfig {
        ga: GaConfig {
            population,
            generations,
            seed: seed(flags),
            ..GaConfig::default()
        },
        loaded_cores: domain.active_cores(),
        samples_per_individual: 5,
        ..VirusGenConfig::default()
    };
    eprintln!(
        "evolving a dI/dt virus on {} ({population} x {generations}) ...",
        domain.name()
    );
    let virus = generate_em_virus("cli", &domain, &mut bench, &cfg)?;
    println!("gen  best (dBm)  dominant (MHz)");
    for r in &virus.history {
        println!(
            "{:>3}  {:>10.2}  {:>14.2}",
            r.index,
            r.best_fitness,
            r.dominant_hz / 1e6
        );
    }
    println!(
        "\nfinal: {:.1} dBm at {:.1} MHz; simulated campaign {}",
        virus.fitness,
        virus.dominant_hz / 1e6,
        virus.campaign.display()
    );
    println!("\ngenerated loop:\n{}", virus.kernel.render());
    Ok(())
}

fn cmd_vmin(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let model = match domain.name() {
        "A72" => FailureModel::juno_a72(),
        "A53" => FailureModel::juno_a53(),
        _ => FailureModel::amd(),
    };
    let (label, kernel) = if flags.contains_key("stress") {
        let isa = domain.core_model().isa;
        (
            "resonant stress kernel".to_owned(),
            resonant_stress_kernel(isa, 12, 17),
        )
    } else {
        let name = flags
            .get("workload")
            .cloned()
            .unwrap_or_else(|| "lbm".to_owned());
        let w = spec2006_suite(domain.core_model().isa)
            .into_iter()
            .find(|w| w.name == name)
            .ok_or_else(|| format!("unknown workload `{name}` (try `lbm`)"))?;
        (w.name, w.kernel)
    };
    let cfg = VminConfig {
        start_v: domain.voltage(),
        floor_v: domain.voltage() - 0.35,
        trials: 5,
        loaded_cores: domain.active_cores(),
        ..VminConfig::default()
    };
    eprintln!(
        "running the V_MIN ladder for `{label}` on {} ...",
        domain.name()
    );
    let res = vmin_test(&domain, &kernel, &model, &cfg)?;
    println!("voltage (V)  outcomes");
    for (v, outcomes) in &res.ladder {
        let marks: String = outcomes
            .iter()
            .map(|o| match o {
                emvolt::vmin::Outcome::Pass => '.',
                emvolt::vmin::Outcome::Sdc => 'S',
                emvolt::vmin::Outcome::AppCrash => 'A',
                emvolt::vmin::Outcome::SystemCrash => 'X',
            })
            .collect();
        println!("{v:>11.3}  {marks}");
    }
    println!(
        "\nV_MIN = {:.3} V (droop {:.1} mV, p2p {:.1} mV, margin {:.0} mV)",
        res.vmin_v,
        res.max_droop_v * 1e3,
        res.peak_to_peak_v * 1e3,
        (domain.voltage() - res.vmin_v) * 1e3
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "platforms" => {
            cmd_platforms();
            Ok(())
        }
        "sweep" => cmd_sweep(&flags),
        "impedance" => cmd_impedance(&flags),
        "virus" => cmd_virus(&flags),
        "vmin" => cmd_vmin(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
