//! `emvolt` — command-line front end for the EM voltage-noise
//! characterization flow.
//!
//! ```sh
//! emvolt platforms
//! emvolt sweep --platform a72 [--cores 1]
//! emvolt impedance --platform amd
//! emvolt virus --platform a53 [--population 20] [--generations 15] [--seed 7]
//! emvolt vmin --platform a72 [--workload lbm | --stress]
//! ```

use emvolt::backend::BackendSpec;
use emvolt::core::{
    fast_resonance_sweep_resumable, generate_em_virus_resumable, FastSweepConfig, VirusGenConfig,
};
use emvolt::engine::DriveOptions;
use emvolt::ga::GaConfig;
use emvolt::isa::kernels::resonant_stress_kernel;
use emvolt::obs::{CounterId, JsonlRecorder, Layer, NoopRecorder, Telemetry, WaveDb, WaveKind};
use emvolt::pdn::{lin_freqs, strongest_peak_in_band};
use emvolt::platform::spec2006_suite;
use emvolt::prelude::*;
use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
emvolt — EM-emanation-driven voltage-noise characterization

USAGE:
    emvolt <COMMAND> [OPTIONS]

COMMANDS:
    platforms                  list the built-in platforms
    sweep      --platform P    fast EM loop-frequency resonance sweep (paper §5.3)
    impedance  --platform P    PDN impedance table around the first-order band
    virus      --platform P    evolve a dI/dt virus with the EM-driven GA (§5.1)
    vmin       --platform P    undervolting ladder for a workload (§5.2)

OPTIONS:
    --platform a72|a53|amd|gpu   target platform (required except for `platforms`)
    --cores N                    powered cores (default: all)
    --population N               GA population (default 20)
    --generations N              GA generations (default 15)
    --lanes N                    virus: individuals measured per batched
                                 backend call, 0..=64 (default 0 = auto:
                                 the detected SIMD level's preferred width,
                                 8 on AVX2 hosts, 4 otherwise); purely a
                                 performance knob — results are bit-identical
                                 at any lane width
    --seed S                     GA / measurement seed (default 42)
    --workload NAME              vmin: SPEC-like workload name (default lbm)
    --stress                     vmin: use the built-in resonant stress kernel
    --telemetry PATH             write a JSONL trace of the run to PATH and
                                 append a summary to results/campaign_summaries.jsonl
    --trace-vcd SPEC             record the analog/digital waveforms of the run
                                 into a VCD (or .rtt binary) waveform database.
                                 SPEC is PATH[:signals][:stride]: `signals` is a
                                 comma-separated list of hierarchical prefixes
                                 to keep (e.g. `pdn,cpu.i_core`; default all),
                                 `stride` a decimation factor (default 1).
                                 Output is deterministic: a seeded campaign
                                 dumps a byte-identical file at any thread
                                 count and any SIMD level
    --threads N                  fitness-evaluation worker threads (default
                                 0 = one per core); results and traces are
                                 bit-identical at any setting
    --checkpoint SPEC            sweep/virus/vmin: checkpoint campaign state to
                                 a versioned JSONL snapshot. SPEC is PATH[:N]
                                 with N the cadence in absorbed batches
                                 (default 1 = every batch). The file carries a
                                 run-config fingerprint, so it refuses to seed
                                 a run on a different chip/config
    --resume PATH                sweep/virus/vmin: restore campaign, rig and
                                 telemetry state from a checkpoint and continue;
                                 a seeded resumed run reproduces the
                                 uninterrupted run byte-for-byte
    --step-limit N               sweep/virus/vmin: stop after N absorbed
                                 batches, writing a final checkpoint (requires
                                 --checkpoint); the deterministic stand-in for
                                 killing a campaign mid-flight
    --kernel auto|lu|statespace  sweep/virus: transient solver kernel — `auto`
                                 (default) picks the fused state-space form for
                                 small PDNs, `lu` forces back-substitution
    --spectrum auto|fft|goertzel sweep/virus: in-band spectral path — `auto`
                                 (default) evaluates only the measured band via
                                 Goertzel when it is narrow, `fft` forces the
                                 full Bluestein FFT
    --progress                   virus: print one line per GA generation
    --backend SPEC               sweep/virus: measurement backend — `live` (the
                                 default simulated chain), `record:PATH` (live,
                                 persisting every measurement to a JSONL trace)
                                 or `replay:PATH` (serve a recorded trace; the
                                 circuit solver never runs)

ENVIRONMENT:
    EMVOLT_SIMD=auto|scalar|sse2|avx2|neon
                                 caps the runtime-dispatched SIMD level of the
                                 hot kernels (default auto = best supported);
                                 requests above the host's capability are
                                 clamped. Results are bit-identical at every
                                 level; `--lanes 0` auto-width follows the
                                 resolved level.
";

/// The flag group every measurement campaign shares, declared once so
/// `--threads`/`--lanes`/`--backend`/`--telemetry`/`--trace-vcd`/
/// `--checkpoint`/`--resume`/`--step-limit` parse uniformly across
/// sweep, virus, vmin and impedance.
const CAMPAIGN_FLAGS: &[&str] = &[
    "platform",
    "cores",
    "seed",
    "threads",
    "lanes",
    "backend",
    "telemetry",
    "trace-vcd",
    "checkpoint",
    "resume",
    "step-limit",
];

/// Which flags a subcommand accepts: `valued` take the next argument,
/// `boolean` stand alone.
struct FlagSpec {
    valued: Vec<&'static str>,
    boolean: Vec<&'static str>,
}

impl FlagSpec {
    /// The shared campaign group plus a subcommand's own flags.
    fn campaign(valued: &[&'static str], boolean: &[&'static str]) -> FlagSpec {
        FlagSpec {
            valued: CAMPAIGN_FLAGS.iter().chain(valued).copied().collect(),
            boolean: boolean.to_vec(),
        }
    }

    fn for_command(command: &str) -> Option<FlagSpec> {
        let spec = match command {
            "platforms" => FlagSpec {
                valued: Vec::new(),
                boolean: Vec::new(),
            },
            "sweep" => FlagSpec::campaign(&["kernel", "spectrum"], &[]),
            "impedance" => FlagSpec::campaign(&[], &[]),
            "virus" => FlagSpec::campaign(
                &["population", "generations", "kernel", "spectrum"],
                &["progress"],
            ),
            "vmin" => FlagSpec::campaign(&["workload"], &["stress"]),
            _ => return None,
        };
        Some(spec)
    }

    fn describe(&self) -> String {
        self.valued
            .iter()
            .map(|f| format!("--{f} <value>"))
            .chain(self.boolean.iter().map(|f| format!("--{f}")))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Strict flag parsing: every argument must be a flag the subcommand
/// declares; unknown flags, stray positionals and valued flags missing
/// their value are all hard errors rather than silently ignored.
fn parse_flags(
    command: &str,
    args: &[String],
    spec: &FlagSpec,
) -> Result<HashMap<String, String>, Box<dyn Error>> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(format!(
                "unexpected argument `{}` — `emvolt {command}` takes flags only",
                args[i]
            )
            .into());
        };
        if spec.valued.contains(&name) {
            i += 1;
            let Some(value) = args.get(i) else {
                return Err(format!("flag `--{name}` requires a value").into());
            };
            flags.insert(name.to_owned(), value.clone());
        } else if spec.boolean.contains(&name) {
            flags.insert(name.to_owned(), "true".to_owned());
        } else {
            let accepted = spec.describe();
            let hint = if accepted.is_empty() {
                format!("`emvolt {command}` takes no flags")
            } else {
                format!("`emvolt {command}` accepts: {accepted}")
            };
            return Err(format!("unknown flag `--{name}` — {hint}").into());
        }
        i += 1;
    }
    Ok(flags)
}

/// A live waveform database plus the output path to dump it to — the
/// CLI-side state behind `--trace-vcd`.
struct Wavetrace {
    db: Arc<WaveDb>,
    path: String,
}

/// Parses `--trace-vcd PATH[:signals][:stride]`. The optional suffix
/// segments may appear in either order: an all-digit segment is the
/// decimation stride, anything else a comma-separated list of signal-name
/// prefixes to keep.
fn wavetrace_from(flags: &HashMap<String, String>) -> Result<Option<Wavetrace>, Box<dyn Error>> {
    let Some(spec) = flags.get("trace-vcd") else {
        return Ok(None);
    };
    let mut parts = spec.split(':');
    let path = parts.next().unwrap_or_default().to_owned();
    if path.is_empty() {
        return Err(format!("--trace-vcd {spec}: empty output path").into());
    }
    let mut stride = 1usize;
    let mut filters: Vec<String> = Vec::new();
    for part in parts {
        if part.is_empty() {
            continue;
        }
        if part.bytes().all(|b| b.is_ascii_digit()) {
            stride = part
                .parse()
                .map_err(|_| format!("--trace-vcd {spec}: stride `{part}` out of range"))?;
            if stride == 0 {
                return Err(format!("--trace-vcd {spec}: stride must be >= 1").into());
            }
        } else {
            filters.extend(part.split(',').filter(|s| !s.is_empty()).map(str::to_owned));
        }
    }
    Ok(Some(Wavetrace {
        db: Arc::new(WaveDb::with_config(stride, filters)),
        path,
    }))
}

/// Builds the telemetry handle for `--telemetry PATH` / `--trace-vcd`,
/// or the inert handle when both flags are absent.
fn telemetry_from(
    flags: &HashMap<String, String>,
) -> Result<(Telemetry, Option<Wavetrace>), Box<dyn Error>> {
    let trace = wavetrace_from(flags)?;
    let recorder: Arc<dyn emvolt::obs::Recorder> = match flags.get("telemetry") {
        Some(path) => {
            Arc::new(JsonlRecorder::create(path).map_err(|e| format!("--telemetry {path}: {e}"))?)
        }
        None => Arc::new(NoopRecorder),
    };
    let tel = match &trace {
        Some(t) => Telemetry::with_waves(recorder, t.db.clone()),
        None if flags.contains_key("telemetry") => Telemetry::new(recorder),
        None => Telemetry::noop(),
    };
    Ok((tel, trace))
}

/// Charges the wavetrace counters and writes the waveform database to its
/// output path (VCD, or the compact binary form for a `.rtt` extension).
/// Call before [`finish_telemetry`] so the counters land in the campaign
/// summary. No-op without `--trace-vcd`.
fn dump_wavetrace(tel: &Telemetry, trace: &Option<Wavetrace>) -> Result<(), Box<dyn Error>> {
    let Some(trace) = trace else {
        return Ok(());
    };
    tel.count(CounterId::WavetraceSignals, trace.db.signal_count() as u64);
    tel.count(
        CounterId::WavetraceSamplesWritten,
        trace.db.samples_written(),
    );
    trace
        .db
        .dump_to_path(std::path::Path::new(&trace.path))
        .map_err(|e| format!("--trace-vcd {}: {e}", trace.path))?;
    eprintln!(
        "waveform trace: {} ({} signals, {} value changes)",
        trace.path,
        trace.db.signal_count(),
        trace.db.samples_written()
    );
    Ok(())
}

/// Flushes the trace and appends the campaign summary to
/// `results/campaign_summaries.jsonl`. No-op without `--telemetry`.
fn finish_telemetry(
    tel: &Telemetry,
    flags: &HashMap<String, String>,
    label: &str,
) -> Result<(), Box<dyn Error>> {
    if !tel.sink_enabled() {
        return Ok(());
    }
    tel.flush();
    let summary = tel.summary(label);
    std::fs::create_dir_all("results")?;
    summary.append_to("results/campaign_summaries.jsonl")?;
    eprintln!("{}", summary.render());
    if let Some(path) = flags.get("telemetry") {
        eprintln!("telemetry trace: {path}; summary appended to results/campaign_summaries.jsonl");
    }
    Ok(())
}

fn build_platform(flags: &HashMap<String, String>) -> Result<VoltageDomain, Box<dyn Error>> {
    let name = flags
        .get("platform")
        .ok_or("missing --platform (a72|a53|amd|gpu)")?;
    let mut domain = match name.as_str() {
        "a72" => JunoBoard::new().a72,
        "a53" => JunoBoard::new().a53,
        "amd" => AmdDesktop::new().domain,
        "gpu" => emvolt::platform::GpuCard::new().domain,
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    if let Some(cores) = flags.get("cores") {
        domain
            .try_power_gate(cores.parse()?)
            .map_err(|e| format!("--cores {cores}: {e}"))?;
    }
    Ok(domain)
}

/// Parses `--backend` (default `live`) and builds the measurement
/// backend over `domain`.
fn backend_from(
    flags: &HashMap<String, String>,
    domain: &VoltageDomain,
    bench_seed: u64,
    run_config: &RunConfig,
) -> Result<Box<dyn emvolt::backend::MeasurementBackend>, Box<dyn Error>> {
    let spec: BackendSpec = flags
        .get("backend")
        .map_or(Ok(BackendSpec::Live), |s| s.parse())?;
    let backend = spec
        .build(
            vec![domain.clone()],
            EmBench::new(bench_seed),
            run_config.clone(),
        )
        .map_err(|e| format!("--backend {spec}: {e}"))?;
    Ok(backend)
}

fn seed(flags: &HashMap<String, String>) -> u64 {
    flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Largest accepted `--lanes` width. Far above any useful batch width
/// (the SoA state of a 64-lane group already thrashes cache), so the cap
/// only rejects typos like `--lanes 1000000`.
const MAX_LANES: usize = 64;

/// Parses `--lanes` strictly: `0` (the default) means "auto — the
/// detected SIMD level's preferred width"; anything non-numeric or above
/// [`MAX_LANES`] is a hard error naming the accepted range.
fn parse_lanes(flags: &HashMap<String, String>) -> Result<usize, Box<dyn Error>> {
    let Some(raw) = flags.get("lanes") else {
        return Ok(0);
    };
    let lanes: usize = raw
        .parse()
        .map_err(|_| format!("--lanes {raw}: expected an integer in 0..={MAX_LANES} (0 = auto)"))?;
    if lanes > MAX_LANES {
        return Err(format!(
            "--lanes {raw}: accepted range is 0..={MAX_LANES} (0 = auto; \
             results are bit-identical at any width)"
        )
        .into());
    }
    Ok(lanes)
}

/// Parses `--threads` strictly: `0` (the default) means one worker per
/// core; anything non-numeric is a hard error.
fn parse_threads(flags: &HashMap<String, String>) -> Result<usize, Box<dyn Error>> {
    flags
        .get("threads")
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| format!("--threads {s}: expected a non-negative integer (0 = auto)"))
        })
        .transpose()
        .map(|t| t.unwrap_or(0))
        .map_err(Into::into)
}

/// Builds the step-engine options from the shared campaign flag group:
/// worker-pool shape (`--threads`/`--lanes`) plus the checkpoint/resume
/// wiring (`--checkpoint PATH[:N]`, `--resume PATH`, `--step-limit N`).
fn drive_options_from(flags: &HashMap<String, String>) -> Result<DriveOptions, Box<dyn Error>> {
    let mut opts = DriveOptions::pool(parse_threads(flags)?, parse_lanes(flags)?);
    opts.checkpoint_every = 1;
    if let Some(spec) = flags.get("checkpoint") {
        let (path, every) = match spec.rsplit_once(':') {
            Some((path, n)) if !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()) => {
                let every: u64 = n
                    .parse()
                    .map_err(|_| format!("--checkpoint {spec}: cadence `{n}` out of range"))?;
                if every == 0 {
                    return Err(format!("--checkpoint {spec}: cadence must be >= 1").into());
                }
                (path, every)
            }
            _ => (spec.as_str(), 1),
        };
        if path.is_empty() {
            return Err(format!("--checkpoint {spec}: empty checkpoint path").into());
        }
        opts.checkpoint = Some(path.into());
        opts.checkpoint_every = every;
    }
    if let Some(path) = flags.get("resume") {
        if path.is_empty() {
            return Err("--resume: empty checkpoint path".into());
        }
        opts.resume = Some(path.into());
    }
    if let Some(raw) = flags.get("step-limit") {
        let limit: u64 = raw
            .parse()
            .map_err(|_| format!("--step-limit {raw}: expected a positive batch count"))?;
        if limit == 0 {
            return Err(format!("--step-limit {raw}: must be >= 1").into());
        }
        if opts.checkpoint.is_none() {
            return Err(
                "--step-limit requires --checkpoint PATH, or the interrupted state is lost".into(),
            );
        }
        opts.max_batches = Some(limit);
    }
    Ok(opts)
}

/// Reports an engine interrupt (`--step-limit` reached): the campaign
/// state went to the checkpoint, so flush the event trace and stop
/// without appending a campaign summary or dumping a wavetrace — the
/// resumed run owns those, and the interrupted trace concatenated with
/// the resumed one reproduces the uninterrupted event stream.
fn report_interrupted(what: &str, tel: &Telemetry, opts: &DriveOptions) {
    tel.flush();
    let path = opts
        .checkpoint
        .as_ref()
        .expect("--step-limit requires --checkpoint");
    eprintln!(
        "{what} interrupted by --step-limit after {} batches; \
         resume with --resume {}",
        opts.max_batches.unwrap_or(0),
        path.display()
    );
}

/// Applies `--kernel` and `--spectrum` to a run configuration; both
/// default to `auto` when absent.
fn apply_solver_flags(
    flags: &HashMap<String, String>,
    run: &mut RunConfig,
) -> Result<(), Box<dyn Error>> {
    if let Some(k) = flags.get("kernel") {
        run.kernel = emvolt::platform::KernelChoice::parse(k)
            .ok_or_else(|| format!("--kernel {k}: expected auto|lu|statespace"))?;
    }
    if let Some(s) = flags.get("spectrum") {
        run.spectral = emvolt::platform::SpectralChoice::parse(s)
            .ok_or_else(|| format!("--spectrum {s}: expected auto|fft|goertzel"))?;
    }
    Ok(())
}

fn cmd_platforms() {
    println!("platform  cores  clock      nominal  analytic resonance");
    for (tag, domain) in [
        ("a72", JunoBoard::new().a72),
        ("a53", JunoBoard::new().a53),
        ("amd", AmdDesktop::new().domain),
        ("gpu", emvolt::platform::GpuCard::new().domain),
    ] {
        println!(
            "{tag:<8}  {:<5}  {:>6.2} GHz  {:>5.2} V  {:>6.1} MHz",
            domain.core_count(),
            domain.max_frequency() / 1e9,
            domain.voltage(),
            domain.expected_resonance_hz() / 1e6
        );
    }
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let (tel, trace) = telemetry_from(flags)?;
    let opts = drive_options_from(flags)?;
    let mut cfg = FastSweepConfig {
        telemetry: tel.clone(),
        ..FastSweepConfig::for_domain(&domain)
    };
    apply_solver_flags(flags, &mut cfg.run)?;
    let mut backend = backend_from(flags, &domain, seed(flags), &cfg.run)?;
    eprintln!(
        "sweeping {} ({} powered cores) ...",
        domain.name(),
        domain.active_cores()
    );
    let Some(result) = fast_resonance_sweep_resumable(&mut *backend, domain.name(), &cfg, &opts)?
    else {
        report_interrupted("sweep", &tel, &opts);
        return Ok(());
    };
    println!("clock (MHz)  loop (MHz)  EM (dBm)");
    for p in &result.points {
        println!(
            "{:>11.1}  {:>10.1}  {:>8.1}",
            p.cpu_freq_hz / 1e6,
            p.loop_freq_hz / 1e6,
            p.amplitude_dbm
        );
    }
    println!(
        "\nfirst-order resonance ≈ {:.1} MHz (analytic {:.1} MHz); physical sweep {}",
        result.resonance_hz / 1e6,
        domain.expected_resonance_hz() / 1e6,
        result.campaign.display()
    );
    dump_wavetrace(&tel, &trace)?;
    finish_telemetry(&tel, flags, "sweep")?;
    Ok(())
}

fn cmd_impedance(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let (tel, trace) = telemetry_from(flags)?;
    // The shared campaign flag group parses uniformly here too, but an
    // impedance table is one analytic sweep — nothing to checkpoint.
    let opts = drive_options_from(flags)?;
    if opts.checkpoint.is_some() || opts.resume.is_some() || opts.max_batches.is_some() {
        eprintln!("note: impedance is a single analytic sweep; checkpoint/resume have no effect");
    }
    let pdn = domain.build_pdn();
    let freqs = lin_freqs(20e6, 250e6, 2e6);
    let sweep = pdn.impedance_sweep(&freqs)?;
    if tel.wave_enabled() {
        // A frequency-domain "waveform": one trace second per MHz, so
        // the impedance curve plots directly against the sweep axis.
        let z_id = tel.wave_register("pdn.z_mohm", WaveKind::Real);
        for (f, z) in &sweep {
            tel.wave_real(z_id, f / 1e6, z.norm() * 1e3);
        }
    }
    println!("freq (MHz)  |Z| (mOhm)");
    for (f, z) in sweep.iter().step_by(5) {
        println!("{:>10.1}  {:>10.2}", f / 1e6, z.norm() * 1e3);
    }
    if let Some(peak) = strongest_peak_in_band(&sweep, 50e6, 200e6) {
        println!(
            "\nfirst-order peak: {:.1} MHz at {:.1} mOhm",
            peak.frequency_hz / 1e6,
            peak.impedance_ohms * 1e3
        );
        tel.span(
            "impedance",
            Layer::Cli,
            &[
                ("points", sweep.len() as f64),
                ("peak_mhz", peak.frequency_hz / 1e6),
                ("peak_mohm", peak.impedance_ohms * 1e3),
            ],
        );
    }
    dump_wavetrace(&tel, &trace)?;
    finish_telemetry(&tel, flags, "impedance")?;
    Ok(())
}

fn cmd_virus(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let population = flags
        .get("population")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let generations = flags
        .get("generations")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let (tel, trace) = telemetry_from(flags)?;
    let opts = drive_options_from(flags)?;
    let progress = flags.contains_key("progress");
    let mut cfg = VirusGenConfig {
        ga: GaConfig {
            population,
            generations,
            seed: seed(flags),
            ..GaConfig::default()
        },
        loaded_cores: domain.active_cores(),
        samples_per_individual: 5,
        telemetry: tel.clone(),
        ..VirusGenConfig::default()
    };
    apply_solver_flags(flags, &mut cfg.run)?;
    let mut backend = backend_from(flags, &domain, seed(flags), &cfg.run)?;
    eprintln!(
        "evolving a dI/dt virus on {} ({population} x {generations}) ...",
        domain.name()
    );
    let virus =
        generate_em_virus_resumable("cli", &mut *backend, domain.name(), &cfg, &opts, |p| {
            if progress {
                eprintln!(
                    "gen {:>3}  best {:>8.2} dBm  mean {:>8.2} dBm  cache {:>3.0}%",
                    p.index,
                    p.best_dbm,
                    p.mean_dbm,
                    p.cache_hit_pct()
                );
            }
        })?;
    let Some(virus) = virus else {
        report_interrupted("virus", &tel, &opts);
        return Ok(());
    };
    println!("gen  best (dBm)  dominant (MHz)");
    for r in &virus.history {
        println!(
            "{:>3}  {:>10.2}  {:>14.2}",
            r.index,
            r.best_fitness,
            r.dominant_hz / 1e6
        );
    }
    println!(
        "\nfinal: {:.1} dBm at {:.1} MHz; simulated campaign {}",
        virus.fitness,
        virus.dominant_hz / 1e6,
        virus.campaign.display()
    );
    println!("\ngenerated loop:\n{}", virus.kernel.render());
    dump_wavetrace(&tel, &trace)?;
    finish_telemetry(&tel, flags, "virus")?;
    Ok(())
}

fn cmd_vmin(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let domain = build_platform(flags)?;
    let (tel, trace) = telemetry_from(flags)?;
    let opts = drive_options_from(flags)?;
    let model = match domain.name() {
        "A72" => FailureModel::juno_a72(),
        "A53" => FailureModel::juno_a53(),
        _ => FailureModel::amd(),
    };
    let (label, kernel) = if flags.contains_key("stress") {
        let isa = domain.core_model().isa;
        (
            "resonant stress kernel".to_owned(),
            resonant_stress_kernel(isa, 12, 17),
        )
    } else {
        let name = flags
            .get("workload")
            .cloned()
            .unwrap_or_else(|| "lbm".to_owned());
        let w = spec2006_suite(domain.core_model().isa)
            .into_iter()
            .find(|w| w.name == name)
            .ok_or_else(|| format!("unknown workload `{name}` (try `lbm`)"))?;
        (w.name, w.kernel)
    };
    let cfg = VminConfig {
        start_v: domain.voltage(),
        floor_v: domain.voltage() - 0.35,
        trials: 5,
        loaded_cores: domain.active_cores(),
        ..VminConfig::default()
    };
    eprintln!(
        "running the V_MIN ladder for `{label}` on {} ...",
        domain.name()
    );
    let res =
        emvolt::vmin::vmin_test_resumable(&domain, &kernel, &model, &cfg, tel.clone(), &opts)?;
    let Some(res) = res else {
        report_interrupted("vmin", &tel, &opts);
        return Ok(());
    };
    println!("voltage (V)  outcomes");
    for (v, outcomes) in &res.ladder {
        let marks: String = outcomes
            .iter()
            .map(|o| match o {
                emvolt::vmin::Outcome::Pass => '.',
                emvolt::vmin::Outcome::Sdc => 'S',
                emvolt::vmin::Outcome::AppCrash => 'A',
                emvolt::vmin::Outcome::SystemCrash => 'X',
            })
            .collect();
        println!("{v:>11.3}  {marks}");
    }
    println!(
        "\nV_MIN = {:.3} V (droop {:.1} mV, p2p {:.1} mV, margin {:.0} mV)",
        res.vmin_v,
        res.max_droop_v * 1e3,
        res.peak_to_peak_v * 1e3,
        (domain.voltage() - res.vmin_v) * 1e3
    );
    tel.span(
        "vmin",
        Layer::Cli,
        &[
            ("vmin_v", res.vmin_v),
            ("droop_mv", res.max_droop_v * 1e3),
            ("p2p_mv", res.peak_to_peak_v * 1e3),
            ("margin_mv", (domain.voltage() - res.vmin_v) * 1e3),
        ],
    );
    dump_wavetrace(&tel, &trace)?;
    finish_telemetry(&tel, flags, "vmin")?;
    Ok(())
}

fn run(command: &str, rest: &[String]) -> Result<(), Box<dyn Error>> {
    if matches!(command, "help" | "--help" | "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let Some(spec) = FlagSpec::for_command(command) else {
        return Err(format!("unknown command `{command}`\n\n{USAGE}").into());
    };
    let flags = parse_flags(command, rest, &spec)?;
    match command {
        "platforms" => {
            cmd_platforms();
            Ok(())
        }
        "sweep" => cmd_sweep(&flags),
        "impedance" => cmd_impedance(&flags),
        "virus" => cmd_virus(&flags),
        "vmin" => cmd_vmin(&flags),
        _ => unreachable!("spec resolved above"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match run(command, &args[1..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt::obs::WaveSink;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn known_flags_parse_with_values() {
        let spec = FlagSpec::for_command("virus").unwrap();
        let flags = parse_flags(
            "virus",
            &argv(&["--platform", "a72", "--seed", "7", "--progress"]),
            &spec,
        )
        .unwrap();
        assert_eq!(flags.get("platform").unwrap(), "a72");
        assert_eq!(flags.get("seed").unwrap(), "7");
        assert_eq!(flags.get("progress").unwrap(), "true");
    }

    #[test]
    fn unknown_flag_is_rejected_with_accepted_list() {
        let spec = FlagSpec::for_command("sweep").unwrap();
        let err = parse_flags("sweep", &argv(&["--platfrom", "a72"]), &spec)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown flag `--platfrom`"), "{err}");
        assert!(err.contains("--platform"), "should list accepted: {err}");
    }

    #[test]
    fn boolean_flag_of_other_command_is_rejected() {
        // `--stress` belongs to vmin, not virus.
        let spec = FlagSpec::for_command("virus").unwrap();
        let err = parse_flags("virus", &argv(&["--stress"]), &spec)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown flag `--stress`"), "{err}");
    }

    #[test]
    fn stray_positional_is_rejected() {
        let spec = FlagSpec::for_command("vmin").unwrap();
        let err = parse_flags("vmin", &argv(&["a72"]), &spec)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unexpected argument `a72`"), "{err}");
    }

    #[test]
    fn valued_flag_missing_value_is_rejected() {
        let spec = FlagSpec::for_command("virus").unwrap();
        let err = parse_flags("virus", &argv(&["--telemetry"]), &spec)
            .unwrap_err()
            .to_string();
        assert!(err.contains("`--telemetry` requires a value"), "{err}");
    }

    #[test]
    fn platforms_takes_no_flags() {
        let spec = FlagSpec::for_command("platforms").unwrap();
        let err = parse_flags("platforms", &argv(&["--platform", "a72"]), &spec)
            .unwrap_err()
            .to_string();
        assert!(err.contains("takes no flags"), "{err}");
        assert!(parse_flags("platforms", &[], &spec).unwrap().is_empty());
    }

    #[test]
    fn unknown_command_has_no_spec() {
        assert!(FlagSpec::for_command("viurs").is_none());
    }

    #[test]
    fn lanes_flag_is_validated() {
        // Absent: auto.
        assert_eq!(parse_lanes(&HashMap::new()).unwrap(), 0);
        // In range: honored as-is.
        let mut flags = HashMap::new();
        flags.insert("lanes".to_owned(), "8".to_owned());
        assert_eq!(parse_lanes(&flags).unwrap(), 8);
        // Absurd widths and non-numbers are hard errors naming the range.
        for bad in ["1000000", "eight", "-3"] {
            let mut flags = HashMap::new();
            flags.insert("lanes".to_owned(), bad.to_owned());
            let err = parse_lanes(&flags).unwrap_err().to_string();
            assert!(err.contains("0..=64"), "{err}");
        }
    }

    #[test]
    fn campaign_flag_group_is_uniform_across_commands() {
        // Satellite of the step-engine refactor: the shared flag group
        // parses identically on every campaign command.
        for command in ["sweep", "impedance", "virus", "vmin"] {
            let spec = FlagSpec::for_command(command).unwrap();
            let flags = parse_flags(
                command,
                &argv(&[
                    "--platform",
                    "a72",
                    "--threads",
                    "2",
                    "--lanes",
                    "4",
                    "--backend",
                    "live",
                    "--telemetry",
                    "t.jsonl",
                    "--trace-vcd",
                    "w.vcd",
                    "--checkpoint",
                    "c.jsonl:3",
                    "--resume",
                    "c.jsonl",
                    "--step-limit",
                    "5",
                ]),
                &spec,
            )
            .unwrap();
            let opts = drive_options_from(&flags).unwrap();
            assert_eq!(opts.threads, 2, "{command}");
            assert_eq!(opts.lanes, 4, "{command}");
            assert_eq!(
                opts.checkpoint.as_deref(),
                Some("c.jsonl".as_ref()),
                "{command}"
            );
            assert_eq!(opts.checkpoint_every, 3, "{command}");
            assert_eq!(
                opts.resume.as_deref(),
                Some("c.jsonl".as_ref()),
                "{command}"
            );
            assert_eq!(opts.max_batches, Some(5), "{command}");
        }
    }

    #[test]
    fn checkpoint_spec_parses_cadence_suffix() {
        let mut flags = HashMap::new();
        // Bare path: cadence 1.
        flags.insert("checkpoint".to_owned(), "state.jsonl".to_owned());
        let opts = drive_options_from(&flags).unwrap();
        assert_eq!(opts.checkpoint.as_deref(), Some("state.jsonl".as_ref()));
        assert_eq!(opts.checkpoint_every, 1);
        // A path with a colon that is not a cadence stays a path
        // (Windows-style or odd names keep working).
        flags.insert("checkpoint".to_owned(), "state:a.jsonl".to_owned());
        let opts = drive_options_from(&flags).unwrap();
        assert_eq!(opts.checkpoint.as_deref(), Some("state:a.jsonl".as_ref()));
        // Zero cadence and empty paths are hard errors.
        for bad in ["state.jsonl:0", ":4", ""] {
            flags.insert("checkpoint".to_owned(), bad.to_owned());
            assert!(drive_options_from(&flags).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn step_limit_requires_a_checkpoint_path() {
        let mut flags = HashMap::new();
        flags.insert("step-limit".to_owned(), "3".to_owned());
        let err = drive_options_from(&flags).unwrap_err().to_string();
        assert!(err.contains("requires --checkpoint"), "{err}");
        flags.insert("checkpoint".to_owned(), "c.jsonl".to_owned());
        let opts = drive_options_from(&flags).unwrap();
        assert_eq!(opts.max_batches, Some(3));
        for bad in ["0", "-1", "three"] {
            flags.insert("step-limit".to_owned(), bad.to_owned());
            assert!(drive_options_from(&flags).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_vcd_spec_parses_path_filters_and_stride() {
        let mut flags = HashMap::new();
        // Bare path: all signals, stride 1.
        flags.insert("trace-vcd".to_owned(), "out.vcd".to_owned());
        let t = wavetrace_from(&flags).unwrap().unwrap();
        assert_eq!(t.path, "out.vcd");
        assert_eq!(t.db.stride(), 1);
        assert!(t.db.keeps("anything.at.all"));

        // Filters plus stride, in either order.
        for spec in ["out.vcd:pdn,cpu.i_core:4", "out.vcd:4:pdn,cpu.i_core"] {
            flags.insert("trace-vcd".to_owned(), spec.to_owned());
            let t = wavetrace_from(&flags).unwrap().unwrap();
            assert_eq!(t.db.stride(), 4, "{spec}");
            assert!(t.db.keeps("pdn.v_die"), "{spec}");
            assert!(t.db.keeps("cpu.i_core"), "{spec}");
            assert!(!t.db.keeps("inst.band_dbm"), "{spec}");
        }

        // Absent flag: no trace.
        assert!(wavetrace_from(&HashMap::new()).unwrap().is_none());

        // Malformed specs are hard errors.
        for bad in [":pdn:4", "out.vcd:0"] {
            flags.insert("trace-vcd".to_owned(), bad.to_owned());
            assert!(wavetrace_from(&flags).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_vcd_flag_is_accepted_on_all_physics_commands() {
        for command in ["sweep", "impedance", "virus", "vmin"] {
            let spec = FlagSpec::for_command(command).unwrap();
            let flags =
                parse_flags(command, &argv(&["--trace-vcd", "out.vcd:pdn:2"]), &spec).unwrap();
            assert_eq!(flags.get("trace-vcd").unwrap(), "out.vcd:pdn:2");
        }
    }

    #[test]
    fn backend_flag_parses_on_sweep_and_virus() {
        for command in ["sweep", "virus"] {
            let spec = FlagSpec::for_command(command).unwrap();
            let flags = parse_flags(
                command,
                &argv(&["--backend", "record:/tmp/trace.jsonl"]),
                &spec,
            )
            .unwrap();
            let spec: BackendSpec = flags.get("backend").unwrap().parse().unwrap();
            assert_eq!(spec.to_string(), "record:/tmp/trace.jsonl");
        }
    }

    #[test]
    fn malformed_backend_spec_is_rejected() {
        let err = "tape:/tmp/x.jsonl".parse::<BackendSpec>().unwrap_err();
        assert!(err.contains("tape"), "{err}");
    }

    #[test]
    fn solver_flags_apply_to_the_run_config() {
        let spec = FlagSpec::for_command("sweep").unwrap();
        let flags = parse_flags(
            "sweep",
            &argv(&["--kernel", "lu", "--spectrum", "fft"]),
            &spec,
        )
        .unwrap();
        let mut run = RunConfig::fast();
        apply_solver_flags(&flags, &mut run).unwrap();
        assert_eq!(run.kernel, emvolt::platform::KernelChoice::Lu);
        assert_eq!(run.spectral, emvolt::platform::SpectralChoice::FullFft);
        // Absent flags leave the auto defaults.
        let mut auto = RunConfig::fast();
        apply_solver_flags(&HashMap::new(), &mut auto).unwrap();
        assert_eq!(auto.kernel, emvolt::platform::KernelChoice::Auto);
        assert_eq!(auto.spectral, emvolt::platform::SpectralChoice::Auto);
    }

    #[test]
    fn bad_solver_flag_values_are_rejected() {
        let mut run = RunConfig::fast();
        let mut flags = HashMap::new();
        flags.insert("kernel".to_owned(), "cholesky".to_owned());
        let err = apply_solver_flags(&flags, &mut run)
            .unwrap_err()
            .to_string();
        assert!(err.contains("auto|lu|statespace"), "{err}");
        let mut flags = HashMap::new();
        flags.insert("spectrum".to_owned(), "bluestein".to_owned());
        let err = apply_solver_flags(&flags, &mut run)
            .unwrap_err()
            .to_string();
        assert!(err.contains("auto|fft|goertzel"), "{err}");
    }
}
