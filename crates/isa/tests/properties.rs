//! Property-based tests for the ISA crate.

use emvolt_isa::{InstructionPool, Isa, KernelSpec, MixCategory, PoolSpec};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn arb_isa() -> impl Strategy<Value = Isa> {
    prop_oneof![Just(Isa::ArmV8), Just(Isa::X86_64)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random kernels always render to non-empty assembly containing one
    /// line per instruction plus the loop frame.
    #[test]
    fn random_kernels_render(isa in arb_isa(), seed in any::<u64>(), len in 1usize..80) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = pool.random_kernel(len, &mut rng);
        let text = k.render();
        prop_assert_eq!(text.lines().count(), len + 2, "{}", text);
        prop_assert!(text.starts_with(".loop:"));
    }

    /// The Table-2 mix breakdown always sums to one and each fraction is
    /// a multiple of 1/len.
    #[test]
    fn mix_breakdown_is_a_distribution(isa in arb_isa(), seed in any::<u64>(), len in 1usize..60) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = pool.random_kernel(len, &mut rng);
        let mix = k.mix_breakdown();
        let total: f64 = mix.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (&cat, &frac) in &mix {
            prop_assert!(MixCategory::ALL.contains(&cat));
            let counts = frac * len as f64;
            prop_assert!((counts - counts.round()).abs() < 1e-6);
        }
    }

    /// KernelSpec round-trips every pool-generated kernel exactly.
    #[test]
    fn kernel_spec_round_trip(isa in arb_isa(), seed in any::<u64>(), len in 1usize..60) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = pool.random_kernel(len, &mut rng);
        let spec = KernelSpec::from_kernel(&k);
        let json = serde_json::to_string(&spec).unwrap();
        let back: KernelSpec = serde_json::from_str(&json).unwrap();
        let k2 = back.to_kernel().unwrap();
        prop_assert_eq!(k.body(), k2.body());
    }

    /// Mutation never produces instructions outside the pool, and
    /// preserves kernel length.
    #[test]
    fn mutation_stays_in_pool(isa in arb_isa(), seed in any::<u64>(), rounds in 1usize..200) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut k = pool.random_kernel(20, &mut rng);
        for _ in 0..rounds {
            let idx = (seed as usize + rounds) % k.len();
            pool.mutate_instr(&mut k.body_mut()[idx], &mut rng);
        }
        prop_assert_eq!(k.len(), 20);
        for i in k.body() {
            prop_assert!(pool.ops().contains(&i.op), "op escaped the pool");
        }
    }

    /// Pool specs restricted to arbitrary op subsets still resolve (as
    /// long as non-empty) and only emit the allowed ops.
    #[test]
    fn restricted_pools_respect_their_spec(
        isa in arb_isa(),
        mask in 1u32..(1 << 10),
        seed in any::<u64>(),
    ) {
        let full = PoolSpec::default_for(isa);
        let op_names: Vec<String> = full
            .op_names
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 10)) != 0)
            .map(|(_, n)| n.clone())
            .collect();
        prop_assume!(!op_names.is_empty());
        let spec = PoolSpec { op_names: op_names.clone(), ..full };
        let pool = InstructionPool::from_spec(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = pool.random_kernel(30, &mut rng);
        for i in k.body() {
            let name = k.arch().op(i.op).name;
            prop_assert!(op_names.iter().any(|n| n == name), "op {name} not allowed");
        }
    }
}
