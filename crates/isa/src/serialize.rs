//! Serde support for kernels.
//!
//! A [`Kernel`] holds an `Arc<Architecture>` and op indices, which do not
//! serialize meaningfully on their own; [`KernelSpec`] is the stable
//! interchange form (ISA tag + mnemonic-addressed instructions) used to
//! persist GA-generated viruses to disk.

use crate::arch::{Architecture, Isa};
use crate::instr::{Instr, Kernel, Reg, RegClass};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Serializable register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegSpec {
    /// `"gpr"` or `"fpr"`.
    pub file: String,
    /// Register index.
    pub index: u8,
}

impl From<Reg> for RegSpec {
    fn from(r: Reg) -> Self {
        RegSpec {
            file: match r.class {
                RegClass::Gpr => "gpr".to_owned(),
                RegClass::Fpr => "fpr".to_owned(),
            },
            index: r.index,
        }
    }
}

/// Serializable instruction (mnemonic-addressed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrSpec {
    /// Operation mnemonic.
    pub op: String,
    /// Destination register.
    pub dst: RegSpec,
    /// Source registers.
    pub srcs: [RegSpec; 2],
    /// Scratch-memory slot.
    pub mem_slot: u16,
}

/// Serializable kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Target ISA.
    pub isa: Isa,
    /// Loop body.
    pub body: Vec<InstrSpec>,
}

/// Error while resolving a [`KernelSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpecError {
    reason: String,
}

impl fmt::Display for KernelSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid kernel spec: {}", self.reason)
    }
}

impl std::error::Error for KernelSpecError {}

fn reg_from_spec(s: &RegSpec) -> Result<Reg, KernelSpecError> {
    match s.file.as_str() {
        "gpr" => Ok(Reg::gpr(s.index)),
        "fpr" => Ok(Reg::fpr(s.index)),
        other => Err(KernelSpecError {
            reason: format!("unknown register file `{other}`"),
        }),
    }
}

impl KernelSpec {
    /// Captures a kernel into its interchange form.
    pub fn from_kernel(kernel: &Kernel) -> Self {
        let arch = kernel.arch();
        KernelSpec {
            isa: arch.isa(),
            body: kernel
                .body()
                .iter()
                .map(|i| InstrSpec {
                    op: arch.op(i.op).name.to_owned(),
                    dst: RegSpec::from(i.dst),
                    srcs: [RegSpec::from(i.srcs[0]), RegSpec::from(i.srcs[1])],
                    mem_slot: i.mem_slot,
                })
                .collect(),
        }
    }

    /// Resolves the spec back into a kernel.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown mnemonics or register files.
    pub fn to_kernel(&self) -> Result<Kernel, KernelSpecError> {
        let arch = Arc::new(Architecture::for_isa(self.isa));
        let mut body = Vec::with_capacity(self.body.len());
        for i in &self.body {
            let op = arch.op_by_name(&i.op).ok_or_else(|| KernelSpecError {
                reason: format!("unknown op `{}` for {}", i.op, self.isa),
            })?;
            body.push(Instr {
                op,
                dst: reg_from_spec(&i.dst)?,
                srcs: [reg_from_spec(&i.srcs[0])?, reg_from_spec(&i.srcs[1])?],
                mem_slot: i.mem_slot,
            });
        }
        Ok(Kernel::new(arch, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::InstructionPool;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip_preserves_kernel() {
        for isa in [Isa::ArmV8, Isa::X86_64] {
            let pool = InstructionPool::default_for(isa);
            let mut rng = StdRng::seed_from_u64(33);
            let k = pool.random_kernel(50, &mut rng);
            let spec = KernelSpec::from_kernel(&k);
            let back = spec.to_kernel().unwrap();
            assert_eq!(k.body(), back.body());
            assert_eq!(k.render(), back.render());
        }
    }

    #[test]
    fn json_round_trip() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let mut rng = StdRng::seed_from_u64(7);
        let k = pool.random_kernel(10, &mut rng);
        let spec = KernelSpec::from_kernel(&k);
        let json = serde_json::to_string(&spec).unwrap();
        let back: KernelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn unknown_op_is_rejected() {
        let spec = KernelSpec {
            isa: Isa::ArmV8,
            body: vec![InstrSpec {
                op: "bogus".into(),
                dst: RegSpec {
                    file: "gpr".into(),
                    index: 0,
                },
                srcs: [
                    RegSpec {
                        file: "gpr".into(),
                        index: 0,
                    },
                    RegSpec {
                        file: "gpr".into(),
                        index: 0,
                    },
                ],
                mem_slot: 0,
            }],
        };
        assert!(spec.to_kernel().is_err());
    }

    #[test]
    fn unknown_register_file_is_rejected() {
        let spec = KernelSpec {
            isa: Isa::ArmV8,
            body: vec![InstrSpec {
                op: "add".into(),
                dst: RegSpec {
                    file: "vector".into(),
                    index: 0,
                },
                srcs: [
                    RegSpec {
                        file: "gpr".into(),
                        index: 0,
                    },
                    RegSpec {
                        file: "gpr".into(),
                        index: 0,
                    },
                ],
                mem_slot: 0,
            }],
        };
        assert!(spec.to_kernel().is_err());
    }
}
