//! # emvolt-isa
//!
//! Instruction-set abstractions for GA-generated dI/dt stress tests:
//!
//! * [`Architecture`] — per-ISA operation tables (latency, functional
//!   unit, per-cycle current draw, functional semantics) for ARMv8 and
//!   x86-64/SSE2, mirroring §3.3 of the reproduced paper.
//! * [`Kernel`] / [`Instr`] — loop bodies with assembly rendering and
//!   Table-2 instruction-mix accounting.
//! * [`InstructionPool`] / [`PoolSpec`] — the user-configurable search
//!   space the GA samples from (the paper's XML input file, as JSON).
//! * [`kernels`] — hand-written kernels such as the §5.3 resonance-sweep
//!   loop (8 ADDs + 1 DIV).
//!
//! # Examples
//!
//! ```
//! use emvolt_isa::{InstructionPool, Isa};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let pool = InstructionPool::default_for(Isa::ArmV8);
//! let mut rng = StdRng::seed_from_u64(42);
//! let kernel = pool.random_kernel(50, &mut rng);
//! assert_eq!(kernel.len(), 50);
//! println!("{}", kernel.render());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arch;
mod instr;
pub mod kernels;
mod parse;
mod pool;
mod serialize;

pub use arch::{Architecture, FuKind, Isa, MixCategory, Op, OpClass, OpIndex, Semantics};
pub use instr::{Instr, Kernel, Reg, RegClass};
pub use parse::{parse_kernel, ParseError};
pub use pool::{InstructionPool, PoolError, PoolSpec};
pub use serialize::{InstrSpec, KernelSpec, KernelSpecError, RegSpec};
