//! Instruction pools: the user-specified search space for GA-generated
//! stress tests.
//!
//! The paper's framework reads an XML file listing the instructions the GA
//! may use, the registers each instruction may touch and the memory
//! addresses available to memory instructions (§3.2). This module is that
//! configuration surface, expressed as a serde-able [`PoolSpec`] (JSON
//! replaces XML) resolved into an [`InstructionPool`] bound to an
//! [`Architecture`].

use crate::arch::{Architecture, Isa, OpIndex};
use crate::instr::{Instr, Kernel, Reg, RegClass};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Serializable description of an instruction pool (the paper's XML input
/// file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Target ISA.
    pub isa: Isa,
    /// Mnemonics the GA may emit; must exist in the target architecture.
    pub op_names: Vec<String>,
    /// General-purpose register indices available to generated code.
    pub gprs: Vec<u8>,
    /// FP/SIMD register indices available to generated code.
    pub fprs: Vec<u8>,
    /// Scratch-memory slots available to memory instructions.
    pub mem_slots: u16,
}

impl PoolSpec {
    /// The default ARMv8 pool: every op class of §3.3 (short/long integer,
    /// float, SIMD, loads/stores, dummy branches).
    pub fn arm_default() -> Self {
        PoolSpec {
            isa: Isa::ArmV8,
            op_names: [
                "mov", "add", "sub", "eor", "mul", "sdiv", "fadd", "fmul", "fdiv", "fsqrt",
                "add.4s", "fmul.4s", "fsqrt.4s", "ldr", "str", "b",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
            gprs: (0..12).collect(),
            fprs: (0..12).collect(),
            mem_slots: 64,
        }
    }

    /// The default x86-64 pool (SSE2 SIMD, memory operands instead of
    /// explicit loads/stores).
    pub fn x86_default() -> Self {
        PoolSpec {
            isa: Isa::X86_64,
            op_names: [
                "mov", "add", "sub", "xor", "addmem", "movmem", "imul", "idiv", "imulmem", "addsd",
                "mulsd", "divsd", "sqrtsd", "addpd", "mulpd", "sqrtpd", "jmp",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
            gprs: (0..12).collect(),
            fprs: (0..12).collect(),
            mem_slots: 64,
        }
    }

    /// Default pool for an ISA.
    pub fn default_for(isa: Isa) -> Self {
        match isa {
            Isa::ArmV8 => PoolSpec::arm_default(),
            Isa::X86_64 => PoolSpec::x86_default(),
        }
    }
}

/// Error resolving a [`PoolSpec`] against an architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolError {
    reason: String,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction pool: {}", self.reason)
    }
}

impl std::error::Error for PoolError {}

/// A resolved instruction pool: the sampling space for random kernels and
/// GA mutations.
#[derive(Debug, Clone)]
pub struct InstructionPool {
    arch: Arc<Architecture>,
    ops: Vec<OpIndex>,
    gprs: Vec<u8>,
    fprs: Vec<u8>,
    mem_slots: u16,
}

impl InstructionPool {
    /// Resolves a spec against its ISA's architecture description.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown mnemonics, out-of-range registers or
    /// an empty pool.
    pub fn from_spec(spec: &PoolSpec) -> Result<Self, PoolError> {
        let arch = Arc::new(Architecture::for_isa(spec.isa));
        let mut ops = Vec::with_capacity(spec.op_names.len());
        for name in &spec.op_names {
            let idx = arch.op_by_name(name).ok_or_else(|| PoolError {
                reason: format!("unknown op `{name}` for {}", spec.isa),
            })?;
            ops.push(idx);
        }
        if ops.is_empty() {
            return Err(PoolError {
                reason: "op list is empty".into(),
            });
        }
        if spec.gprs.is_empty() || spec.fprs.is_empty() {
            return Err(PoolError {
                reason: "register lists must be non-empty".into(),
            });
        }
        for &g in &spec.gprs {
            if g >= arch.gpr_count() {
                return Err(PoolError {
                    reason: format!("gpr {g} out of range (< {})", arch.gpr_count()),
                });
            }
        }
        for &f in &spec.fprs {
            if f >= arch.fpr_count() {
                return Err(PoolError {
                    reason: format!("fpr {f} out of range (< {})", arch.fpr_count()),
                });
            }
        }
        if spec.mem_slots == 0 || spec.mem_slots > arch.mem_slots() {
            return Err(PoolError {
                reason: format!("mem_slots must be in 1..={}", arch.mem_slots()),
            });
        }
        Ok(InstructionPool {
            arch,
            ops,
            gprs: spec.gprs.clone(),
            fprs: spec.fprs.clone(),
            mem_slots: spec.mem_slots,
        })
    }

    /// Default pool for an ISA.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the built-in specs always resolve.
    pub fn default_for(isa: Isa) -> Self {
        InstructionPool::from_spec(&PoolSpec::default_for(isa)).expect("built-in spec resolves")
    }

    /// The bound architecture.
    pub fn arch(&self) -> &Arc<Architecture> {
        &self.arch
    }

    /// Ops available to the generator.
    pub fn ops(&self) -> &[OpIndex] {
        &self.ops
    }

    fn random_reg(&self, class: RegClass, rng: &mut impl Rng) -> Reg {
        match class {
            RegClass::Gpr => Reg::gpr(*self.gprs.choose(rng).expect("non-empty gprs")),
            RegClass::Fpr => Reg::fpr(*self.fprs.choose(rng).expect("non-empty fprs")),
        }
    }

    /// Samples a random register valid as operand for `op` (destination
    /// and sources share a file in this model).
    pub fn random_operand(&self, op: OpIndex, rng: &mut impl Rng) -> Reg {
        let class = if self.arch.op(op).class.uses_fp_registers() {
            RegClass::Fpr
        } else {
            RegClass::Gpr
        };
        self.random_reg(class, rng)
    }

    /// Samples a random instruction.
    pub fn random_instr(&self, rng: &mut impl Rng) -> Instr {
        let op_idx = *self.ops.choose(rng).expect("non-empty ops");
        let op = self.arch.op(op_idx);
        let dst = self.random_operand(op_idx, rng);
        let mut srcs = [
            self.random_operand(op_idx, rng),
            self.random_operand(op_idx, rng),
        ];
        // x86 two-operand encoding: dst is also the first source.
        if self.arch.isa() == Isa::X86_64 && op.src_count == 2 {
            srcs[0] = dst;
        }
        let mem_slot = rng.gen_range(0..self.mem_slots);
        Instr {
            op: op_idx,
            dst,
            srcs,
            mem_slot,
        }
    }

    /// Samples a random instruction restricted to ops of `class`, or
    /// `None` when the pool has no such op — used by the synthetic
    /// workload library to realise instruction-mix profiles.
    pub fn random_instr_of_class(
        &self,
        class: crate::arch::OpClass,
        rng: &mut impl Rng,
    ) -> Option<Instr> {
        let candidates: Vec<OpIndex> = self
            .ops
            .iter()
            .copied()
            .filter(|&i| self.arch.op(i).class == class)
            .collect();
        let op_idx = *candidates.choose(rng)?;
        let op = self.arch.op(op_idx);
        let dst = self.random_operand(op_idx, rng);
        let mut srcs = [
            self.random_operand(op_idx, rng),
            self.random_operand(op_idx, rng),
        ];
        if self.arch.isa() == Isa::X86_64 && op.src_count == 2 {
            srcs[0] = dst;
        }
        Some(Instr {
            op: op_idx,
            dst,
            srcs,
            mem_slot: rng.gen_range(0..self.mem_slots),
        })
    }

    /// Samples a random kernel of `len` instructions — a GA seed
    /// individual.
    pub fn random_kernel(&self, len: usize, rng: &mut impl Rng) -> Kernel {
        let body = (0..len).map(|_| self.random_instr(rng)).collect();
        Kernel::new(Arc::clone(&self.arch), body)
    }

    /// Mutates one instruction in place: with equal probability replaces
    /// the whole instruction or re-rolls one operand (the paper's
    /// instruction / instruction-operand mutation).
    pub fn mutate_instr(&self, instr: &mut Instr, rng: &mut impl Rng) {
        if rng.gen_bool(0.5) {
            *instr = self.random_instr(rng);
        } else {
            let op = self.arch.op(instr.op);
            match rng.gen_range(0..3u8) {
                0 if op.has_dst => {
                    instr.dst = self.random_operand(instr.op, rng);
                    if self.arch.isa() == Isa::X86_64 && op.src_count == 2 {
                        instr.srcs[0] = instr.dst;
                    }
                }
                1 if op.src_count > 0 => {
                    let s = rng.gen_range(0..op.src_count as usize);
                    if !(self.arch.isa() == Isa::X86_64 && op.src_count == 2 && s == 0) {
                        instr.srcs[s] = self.random_operand(instr.op, rng);
                    }
                }
                _ => instr.mem_slot = rng.gen_range(0..self.mem_slots),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_pools_resolve() {
        for isa in [Isa::ArmV8, Isa::X86_64] {
            let pool = InstructionPool::default_for(isa);
            assert!(!pool.ops().is_empty());
        }
    }

    #[test]
    fn unknown_op_is_rejected() {
        let mut spec = PoolSpec::arm_default();
        spec.op_names.push("frobnicate".into());
        assert!(InstructionPool::from_spec(&spec).is_err());
    }

    #[test]
    fn out_of_range_registers_rejected() {
        let mut spec = PoolSpec::arm_default();
        spec.gprs = vec![200];
        assert!(InstructionPool::from_spec(&spec).is_err());
    }

    #[test]
    fn empty_ops_rejected() {
        let mut spec = PoolSpec::arm_default();
        spec.op_names.clear();
        assert!(InstructionPool::from_spec(&spec).is_err());
    }

    #[test]
    fn random_kernels_are_valid_and_deterministic() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = pool.random_kernel(50, &mut rng1);
        let b = pool.random_kernel(50, &mut rng2);
        assert_eq!(a.body(), b.body(), "same seed must give same kernel");
        assert_eq!(a.len(), 50);
        for i in a.body() {
            let op = pool.arch().op(i.op);
            if op.class.uses_fp_registers() {
                assert_eq!(i.dst.class, RegClass::Fpr);
            }
        }
    }

    #[test]
    fn x86_two_operand_invariant_holds() {
        let pool = InstructionPool::default_for(Isa::X86_64);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let i = pool.random_instr(&mut rng);
            let op = pool.arch().op(i.op);
            if op.src_count == 2 {
                assert_eq!(i.srcs[0], i.dst, "{} broke two-operand form", op.name);
            }
        }
    }

    #[test]
    fn mutation_preserves_two_operand_invariant() {
        let pool = InstructionPool::default_for(Isa::X86_64);
        let mut rng = StdRng::seed_from_u64(11);
        let mut k = pool.random_kernel(50, &mut rng);
        for _ in 0..2000 {
            let idx = rng.gen_range(0..k.len());
            let arch = Arc::clone(pool.arch());
            pool.mutate_instr(&mut k.body_mut()[idx], &mut rng);
            let i = &k.body()[idx];
            let op = arch.op(i.op);
            if op.src_count == 2 {
                assert_eq!(i.srcs[0], i.dst);
            }
        }
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = PoolSpec::x86_default();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: PoolSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn mem_slot_limits_enforced() {
        let mut spec = PoolSpec::arm_default();
        spec.mem_slots = 0;
        assert!(InstructionPool::from_spec(&spec).is_err());
        spec.mem_slots = 10_000;
        assert!(InstructionPool::from_spec(&spec).is_err());
    }
}
