//! Assembly-text parsing: the inverse of [`Kernel::render`].
//!
//! Lets users bring hand-written loop bodies (or kernels saved as text)
//! into the framework. The accepted grammar is exactly what
//! [`Kernel::render`] emits: a `.loop:` label, one instruction per line
//! in the target ISA's syntax, and a closing back-branch.

use crate::arch::{Architecture, Isa, OpClass};
use crate::instr::{Instr, Kernel, Reg, RegClass};
use std::fmt;
use std::sync::Arc;

/// Error while parsing kernel assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, reason: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        reason: reason.into(),
    })
}

const X86_GPR_NAMES: [&str; 12] = [
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13",
];

fn parse_reg(isa: Isa, token: &str, line: usize) -> Result<Reg, ParseError> {
    let t = token.trim().trim_end_matches(',');
    match isa {
        Isa::ArmV8 => {
            if let Some(n) = t.strip_prefix('x') {
                if let Ok(i) = n.parse::<u8>() {
                    return Ok(Reg::gpr(i));
                }
            }
            if let Some(n) = t.strip_prefix('v') {
                if let Ok(i) = n.parse::<u8>() {
                    return Ok(Reg::fpr(i));
                }
            }
            err(line, format!("unknown ARM register `{t}`"))
        }
        Isa::X86_64 => {
            if let Some(i) = X86_GPR_NAMES.iter().position(|&n| n == t) {
                return Ok(Reg::gpr(i as u8));
            }
            if let Some(n) = t.strip_prefix("xmm") {
                if let Ok(i) = n.parse::<u8>() {
                    return Ok(Reg::fpr(i));
                }
            }
            err(line, format!("unknown x86 register `{t}`"))
        }
    }
}

/// Parses a memory operand (`[x28, #off]` / `[rbp+off]`) into a slot.
fn parse_mem(isa: Isa, token: &str, line: usize) -> Result<u16, ParseError> {
    let t = token.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            reason: format!("expected memory operand, got `{t}`"),
        })?;
    let offset: i64 = match isa {
        Isa::ArmV8 => {
            let rest = inner
                .strip_prefix("x28")
                .map(|s| s.trim_start_matches(',').trim())
                .ok_or_else(|| ParseError {
                    line,
                    reason: format!("ARM memory operand must use x28 base, got `{inner}`"),
                })?;
            rest.strip_prefix('#')
                .unwrap_or(rest)
                .parse()
                .map_err(|_| ParseError {
                    line,
                    reason: format!("bad memory offset in `{inner}`"),
                })?
        }
        Isa::X86_64 => {
            let rest = inner.strip_prefix("rbp").ok_or_else(|| ParseError {
                line,
                reason: format!("x86 memory operand must use rbp base, got `{inner}`"),
            })?;
            rest.trim_start_matches('+')
                .parse()
                .map_err(|_| ParseError {
                    line,
                    reason: format!("bad memory offset in `{inner}`"),
                })?
        }
    };
    if offset < 0 || offset % 8 != 0 {
        return err(
            line,
            format!("memory offset {offset} is not an 8-byte slot"),
        );
    }
    Ok((offset / 8) as u16)
}

fn split_operands(rest: &str) -> Vec<String> {
    // Memory operands contain commas; split at top level only.
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in rest.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_owned());
    }
    parts
}

/// Parses one instruction line.
fn parse_instr(arch: &Architecture, raw: &str, line: usize) -> Result<Instr, ParseError> {
    let isa = arch.isa();
    let text = raw.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m.trim(), r.trim()),
        None => (text, ""),
    };
    // Dummy branch to the next line.
    if (isa == Isa::ArmV8 && mnemonic == "b" || isa == Isa::X86_64 && mnemonic == "jmp")
        && rest.starts_with(".l")
    {
        let op = arch
            .ops()
            .iter()
            .position(|o| o.class == OpClass::Branch)
            .ok_or_else(|| ParseError {
                line,
                reason: "architecture has no branch op".into(),
            })?;
        return Ok(Instr {
            op: crate::arch::OpIndex(op),
            dst: Reg::gpr(0),
            srcs: [Reg::gpr(0), Reg::gpr(0)],
            mem_slot: 0,
        });
    }
    let operands = split_operands(rest);
    let has_mem = operands.iter().any(|o| o.starts_with('['));

    // Resolve the op: memory forms of x86 integer ops use the `mem`
    // suffix internally (`add rax, [rbp+8]` -> `addmem`).
    let op_idx = if isa == Isa::X86_64 && has_mem {
        let candidate = if mnemonic == "mov" {
            "movmem".to_owned()
        } else {
            format!("{mnemonic}mem")
        };
        arch.op_by_name(&candidate)
            .or_else(|| arch.op_by_name(mnemonic))
    } else {
        arch.op_by_name(mnemonic)
    };
    let op_idx = op_idx.ok_or_else(|| ParseError {
        line,
        reason: format!("unknown mnemonic `{mnemonic}` for {isa}"),
    })?;
    let op = arch.op(op_idx);

    let mut dst = Reg::gpr(0);
    let mut srcs = [Reg::gpr(0), Reg::gpr(0)];
    let mut mem_slot = 0u16;

    match (isa, op.class) {
        (Isa::ArmV8, OpClass::Load) => {
            if operands.len() != 2 {
                return err(line, "ldr expects `dst, [mem]`");
            }
            dst = parse_reg(isa, &operands[0], line)?;
            mem_slot = parse_mem(isa, &operands[1], line)?;
        }
        (Isa::ArmV8, OpClass::Store) => {
            if operands.len() != 2 {
                return err(line, "str expects `src, [mem]`");
            }
            srcs[0] = parse_reg(isa, &operands[0], line)?;
            mem_slot = parse_mem(isa, &operands[1], line)?;
        }
        (Isa::X86_64, OpClass::IntShortMem | OpClass::IntLongMem) => {
            if operands.len() != 2 {
                return err(line, "memory-form op expects `dst, [mem]`");
            }
            dst = parse_reg(isa, &operands[0], line)?;
            mem_slot = parse_mem(isa, &operands[1], line)?;
            if op.src_count >= 1 {
                srcs[0] = dst;
            }
        }
        (Isa::X86_64, _) => {
            // Two-operand form: dst doubles as the first source.
            let mut it = operands.iter();
            if op.has_dst {
                dst = parse_reg(
                    isa,
                    it.next().ok_or_else(|| ParseError {
                        line,
                        reason: "missing destination".into(),
                    })?,
                    line,
                )?;
            }
            if op.src_count == 2 {
                srcs[0] = dst;
                srcs[1] = parse_reg(
                    isa,
                    it.next().ok_or_else(|| ParseError {
                        line,
                        reason: "missing source".into(),
                    })?,
                    line,
                )?;
            } else if op.src_count == 1 {
                srcs[0] = parse_reg(
                    isa,
                    it.next().ok_or_else(|| ParseError {
                        line,
                        reason: "missing source".into(),
                    })?,
                    line,
                )?;
            }
        }
        _ => {
            // Generic ARM form: dst then src_count sources.
            let mut it = operands.iter();
            if op.has_dst {
                dst = parse_reg(
                    isa,
                    it.next().ok_or_else(|| ParseError {
                        line,
                        reason: "missing destination".into(),
                    })?,
                    line,
                )?;
            }
            for (k, slot) in srcs.iter_mut().enumerate().take(op.src_count as usize) {
                *slot = parse_reg(
                    isa,
                    it.next().ok_or_else(|| ParseError {
                        line,
                        reason: format!("missing source operand {k}"),
                    })?,
                    line,
                )?;
            }
        }
    }
    // Destination register file must match the op's class.
    if op.has_dst {
        let want = if op.class.uses_fp_registers()
            || matches!(op.semantics, crate::arch::Semantics::LoadMem if dst.class == RegClass::Fpr)
        {
            RegClass::Fpr
        } else {
            dst.class
        };
        if op.class.uses_fp_registers() && dst.class != want {
            return err(line, format!("`{mnemonic}` needs an FP/SIMD destination"));
        }
    }
    Ok(Instr {
        op: op_idx,
        dst,
        srcs,
        mem_slot,
    })
}

/// Parses the assembly text produced by [`Kernel::render`] back into a
/// [`Kernel`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for unknown
/// mnemonics, malformed operands or registers outside the file.
pub fn parse_kernel(isa: Isa, text: &str) -> Result<Kernel, ParseError> {
    let arch = Arc::new(Architecture::for_isa(isa));
    let mut body = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let t = raw.trim();
        if t.is_empty() || t.ends_with(':') || t.starts_with("//") || t.starts_with('#') {
            continue;
        }
        // The closing back-branch is structural, not part of the body.
        if t == "b .loop" || t == "jmp .loop" {
            continue;
        }
        body.push(parse_instr(&arch, t, line)?);
    }
    Ok(Kernel::new(arch, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::InstructionPool;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn parses_a_hand_written_arm_loop() {
        let text = "\
.loop:
    add x1, x2, x3
    ldr x4, [x28, #24]
    fmul v1, v2, v3
    fsqrt v5, v1
    str x1, [x28, #8]
    b .loop
";
        let k = parse_kernel(Isa::ArmV8, text).unwrap();
        assert_eq!(k.len(), 5);
        assert_eq!(k.arch().op(k.body()[0].op).name, "add");
        assert_eq!(k.body()[1].mem_slot, 3);
        assert_eq!(k.body()[4].srcs[0], Reg::gpr(1));
    }

    #[test]
    fn parses_x86_two_operand_and_memory_forms() {
        let text = "\
.loop:
    add rax, rbx
    add rcx, [rbp+16]
    mulpd xmm3, xmm4
    sqrtsd xmm1, xmm2
    jmp .loop
";
        let k = parse_kernel(Isa::X86_64, text).unwrap();
        assert_eq!(k.len(), 4);
        // Two-operand invariant restored on parse.
        assert_eq!(k.body()[0].srcs[0], k.body()[0].dst);
        assert_eq!(k.arch().op(k.body()[1].op).name, "addmem");
        assert_eq!(k.body()[1].mem_slot, 2);
    }

    #[test]
    fn render_parse_render_is_identity() {
        for isa in [Isa::ArmV8, Isa::X86_64] {
            let pool = InstructionPool::default_for(isa);
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..10 {
                let k = pool.random_kernel(40, &mut rng);
                let text = k.render();
                let parsed =
                    parse_kernel(isa, &text).unwrap_or_else(|e| panic!("{isa}: {e}\n{text}"));
                assert_eq!(parsed.render(), text, "{isa} round-trip diverged");
            }
        }
    }

    #[test]
    fn reports_unknown_mnemonics_with_line_numbers() {
        let e = parse_kernel(Isa::ArmV8, ".loop:\n    frobnicate x1, x2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn reports_bad_registers_and_offsets() {
        assert!(parse_kernel(Isa::ArmV8, "add q1, x2, x3\n").is_err());
        assert!(parse_kernel(Isa::ArmV8, "ldr x1, [x28, #7]\n").is_err());
        assert!(parse_kernel(Isa::X86_64, "add rax, [rsp+8]\n").is_err());
    }

    #[test]
    fn comments_and_labels_are_skipped() {
        let text = "// a comment\n.loop:\n    add x1, x2, x3\n# another\n    b .loop\n";
        let k = parse_kernel(Isa::ArmV8, text).unwrap();
        assert_eq!(k.len(), 1);
    }
}
