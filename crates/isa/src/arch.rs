//! Architecture descriptions: operation classes, functional units and the
//! per-operation timing/energy descriptors the CPU model consumes.

use serde::{Deserialize, Serialize};

/// Which instruction-set architecture a description models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isa {
    /// ARMv8-A (AArch64), as on the Cortex-A72/A53 clusters.
    ArmV8,
    /// x86-64 with SSE2, as on the AMD Athlon II.
    X86_64,
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Isa::ArmV8 => write!(f, "ARMv8"),
            Isa::X86_64 => write!(f, "x86-64"),
        }
    }
}

/// Fine-grained operation class.
///
/// These are the instruction categories §3.3 of the paper feeds to the GA:
/// short/long-latency integer, floating-point, SIMD, memory and dummy
/// branches, plus the x86 memory-operand forms used in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Unconditional branch to the next instruction (dummy branch).
    Branch,
    /// Single-cycle integer ALU op with register operands.
    IntShort,
    /// Multi-cycle integer op (MUL/DIV) with register operands.
    IntLong,
    /// x86 only: short-latency integer op with a memory operand.
    IntShortMem,
    /// x86 only: long-latency integer op with a memory operand.
    IntLongMem,
    /// Short-latency scalar floating-point op.
    FloatShort,
    /// Long-latency scalar floating-point op (divide, square root).
    FloatLong,
    /// SIMD op of moderate latency.
    Simd,
    /// Long-latency SIMD op (vector divide/square root).
    SimdLong,
    /// ARM load.
    Load,
    /// ARM store.
    Store,
}

/// The instruction-mix category used by Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MixCategory {
    /// Branches (ARM only in the paper's table).
    Branch,
    /// Short-latency integer, register operands.
    ShortIntReg,
    /// Long-latency integer, register operands.
    LongIntReg,
    /// Short-latency integer with memory operand (x86 only).
    ShortIntMem,
    /// Long-latency integer with memory operand (x86 only).
    LongIntMem,
    /// Scalar floating point.
    Float,
    /// SIMD.
    Simd,
    /// Explicit loads/stores (ARM only).
    Mem,
}

impl MixCategory {
    /// All categories in Table 2 column order.
    pub const ALL: [MixCategory; 8] = [
        MixCategory::Branch,
        MixCategory::ShortIntReg,
        MixCategory::LongIntReg,
        MixCategory::ShortIntMem,
        MixCategory::LongIntMem,
        MixCategory::Float,
        MixCategory::Simd,
        MixCategory::Mem,
    ];

    /// Table-2 column label.
    pub fn label(self) -> &'static str {
        match self {
            MixCategory::Branch => "Branch",
            MixCategory::ShortIntReg => "SL int Register",
            MixCategory::LongIntReg => "LL int Register",
            MixCategory::ShortIntMem => "SL int Mem",
            MixCategory::LongIntMem => "LL int Mem",
            MixCategory::Float => "Float",
            MixCategory::Simd => "SIMD",
            MixCategory::Mem => "MEM",
        }
    }
}

impl OpClass {
    /// Maps the fine-grained class onto the paper's Table-2 category.
    pub fn mix_category(self) -> MixCategory {
        match self {
            OpClass::Branch => MixCategory::Branch,
            OpClass::IntShort => MixCategory::ShortIntReg,
            OpClass::IntLong => MixCategory::LongIntReg,
            OpClass::IntShortMem => MixCategory::ShortIntMem,
            OpClass::IntLongMem => MixCategory::LongIntMem,
            OpClass::FloatShort | OpClass::FloatLong => MixCategory::Float,
            OpClass::Simd | OpClass::SimdLong => MixCategory::Simd,
            OpClass::Load | OpClass::Store => MixCategory::Mem,
        }
    }

    /// `true` for classes that access memory.
    pub fn accesses_memory(self) -> bool {
        matches!(
            self,
            OpClass::IntShortMem | OpClass::IntLongMem | OpClass::Load | OpClass::Store
        )
    }

    /// `true` for classes whose destination/operands live in the FP/SIMD
    /// register file.
    pub fn uses_fp_registers(self) -> bool {
        matches!(
            self,
            OpClass::FloatShort | OpClass::FloatLong | OpClass::Simd | OpClass::SimdLong
        )
    }
}

/// Functional-unit kind an operation executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuKind {
    /// Simple integer ALU.
    Alu,
    /// Integer multiplier.
    Mul,
    /// Integer divider (typically unpipelined).
    Div,
    /// Floating-point add/multiply pipe.
    Fpu,
    /// Floating-point divide/sqrt (unpipelined).
    FpDiv,
    /// SIMD pipe.
    SimdUnit,
    /// Load/store unit + L1 data cache.
    LoadStore,
    /// Branch unit.
    BranchUnit,
}

/// The arithmetic behaviour of an operation, used by the functional
/// executor to compute golden outputs for silent-data-corruption checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Semantics {
    /// Copies the first source.
    Move,
    /// Wrapping integer add.
    IntAdd,
    /// Wrapping integer subtract.
    IntSub,
    /// Bitwise exclusive or.
    IntXor,
    /// Wrapping integer multiply.
    IntMul,
    /// Integer divide (divisor forced odd/non-zero by the executor).
    IntDiv,
    /// Floating add.
    FloatAdd,
    /// Floating multiply.
    FloatMul,
    /// Floating divide.
    FloatDiv,
    /// Floating square root of the absolute value.
    FloatSqrt,
    /// Load from scratch memory.
    LoadMem,
    /// Store to scratch memory.
    StoreMem,
    /// No architectural effect (dummy branch).
    Nop,
}

/// A static operation descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Mnemonic, e.g. `"add"`, `"fsqrt"`, `"ldr"`.
    pub name: &'static str,
    /// Fine-grained class.
    pub class: OpClass,
    /// Execution unit.
    pub fu: FuKind,
    /// Result latency in cycles.
    pub latency: u32,
    /// `true` when the FU cannot accept a new op until this one retires
    /// (unpipelined dividers and sqrt units).
    pub unpipelined: bool,
    /// Current drawn in the issue cycle, in amps (per-platform scaling is
    /// applied by the CPU model).
    pub issue_current: f64,
    /// Current drawn in each subsequent execution cycle, in amps.
    pub active_current: f64,
    /// Number of register sources.
    pub src_count: u8,
    /// Whether the op writes a destination register.
    pub has_dst: bool,
    /// Architectural behaviour for the functional executor.
    pub semantics: Semantics,
}

/// Index of an [`Op`] within its [`Architecture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpIndex(pub usize);

/// A complete architecture description: ISA plus its operation table and
/// register-file shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    isa: Isa,
    ops: Vec<Op>,
    /// Number of general-purpose registers usable by generated code.
    gpr_count: u8,
    /// Number of FP/SIMD registers usable by generated code.
    fpr_count: u8,
    /// Number of 8-byte scratch-memory slots (all L1-resident).
    mem_slots: u16,
}

impl Architecture {
    /// The ARMv8 description used for the Cortex-A72/A53 experiments.
    pub fn armv8() -> Self {
        use FuKind::*;
        use OpClass::*;
        use Semantics::*;
        let ops = vec![
            Op {
                name: "mov",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 0.30,
                active_current: 0.0,
                src_count: 1,
                has_dst: true,
                semantics: Move,
            },
            Op {
                name: "add",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 0.35,
                active_current: 0.0,
                src_count: 2,
                has_dst: true,
                semantics: IntAdd,
            },
            Op {
                name: "sub",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 0.35,
                active_current: 0.0,
                src_count: 2,
                has_dst: true,
                semantics: IntSub,
            },
            Op {
                name: "eor",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 0.33,
                active_current: 0.0,
                src_count: 2,
                has_dst: true,
                semantics: IntXor,
            },
            Op {
                name: "mul",
                class: IntLong,
                fu: Mul,
                latency: 3,
                unpipelined: false,
                issue_current: 0.45,
                active_current: 0.10,
                src_count: 2,
                has_dst: true,
                semantics: IntMul,
            },
            Op {
                name: "sdiv",
                class: IntLong,
                fu: Div,
                latency: 4,
                unpipelined: true,
                issue_current: 0.20,
                active_current: 0.04,
                src_count: 2,
                has_dst: true,
                semantics: IntDiv,
            },
            Op {
                name: "fadd",
                class: FloatShort,
                fu: Fpu,
                latency: 3,
                unpipelined: false,
                issue_current: 0.45,
                active_current: 0.08,
                src_count: 2,
                has_dst: true,
                semantics: FloatAdd,
            },
            Op {
                name: "fmul",
                class: FloatShort,
                fu: Fpu,
                latency: 4,
                unpipelined: false,
                issue_current: 0.50,
                active_current: 0.10,
                src_count: 2,
                has_dst: true,
                semantics: FloatMul,
            },
            Op {
                name: "fdiv",
                class: FloatLong,
                fu: FpDiv,
                latency: 18,
                unpipelined: true,
                issue_current: 0.22,
                active_current: 0.03,
                src_count: 2,
                has_dst: true,
                semantics: FloatDiv,
            },
            Op {
                name: "fsqrt",
                class: FloatLong,
                fu: FpDiv,
                latency: 22,
                unpipelined: true,
                issue_current: 0.20,
                active_current: 0.03,
                src_count: 1,
                has_dst: true,
                semantics: FloatSqrt,
            },
            Op {
                name: "add.4s",
                class: Simd,
                fu: SimdUnit,
                latency: 3,
                unpipelined: false,
                issue_current: 0.60,
                active_current: 0.12,
                src_count: 2,
                has_dst: true,
                semantics: IntAdd,
            },
            Op {
                name: "fmul.4s",
                class: Simd,
                fu: SimdUnit,
                latency: 4,
                unpipelined: false,
                issue_current: 0.70,
                active_current: 0.15,
                src_count: 2,
                has_dst: true,
                semantics: FloatMul,
            },
            Op {
                name: "fsqrt.4s",
                class: SimdLong,
                fu: SimdUnit,
                latency: 26,
                unpipelined: true,
                issue_current: 0.25,
                active_current: 0.04,
                src_count: 1,
                has_dst: true,
                semantics: FloatSqrt,
            },
            Op {
                name: "ldr",
                class: Load,
                fu: LoadStore,
                latency: 4,
                unpipelined: false,
                issue_current: 0.50,
                active_current: 0.06,
                src_count: 0,
                has_dst: true,
                semantics: LoadMem,
            },
            Op {
                name: "str",
                class: Store,
                fu: LoadStore,
                latency: 1,
                unpipelined: false,
                issue_current: 0.45,
                active_current: 0.0,
                src_count: 1,
                has_dst: false,
                semantics: StoreMem,
            },
            Op {
                name: "b",
                class: Branch,
                fu: BranchUnit,
                latency: 1,
                unpipelined: false,
                issue_current: 0.15,
                active_current: 0.0,
                src_count: 0,
                has_dst: false,
                semantics: Nop,
            },
        ];
        Architecture {
            isa: Isa::ArmV8,
            ops,
            gpr_count: 12,
            fpr_count: 12,
            mem_slots: 64,
        }
    }

    /// The x86-64/SSE2 description used for the AMD Athlon experiments.
    ///
    /// x86 has no explicit load/store in the paper's pool; memory traffic
    /// comes from integer ops with memory operands (§3.3).
    pub fn x86_64() -> Self {
        use FuKind::*;
        use OpClass::*;
        use Semantics::*;
        let ops = vec![
            Op {
                name: "mov",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 0.8,
                active_current: 0.0,
                src_count: 1,
                has_dst: true,
                semantics: Move,
            },
            Op {
                name: "add",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 1.0,
                active_current: 0.0,
                src_count: 2,
                has_dst: true,
                semantics: IntAdd,
            },
            Op {
                name: "sub",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 1.0,
                active_current: 0.0,
                src_count: 2,
                has_dst: true,
                semantics: IntSub,
            },
            Op {
                name: "xor",
                class: IntShort,
                fu: Alu,
                latency: 1,
                unpipelined: false,
                issue_current: 0.95,
                active_current: 0.0,
                src_count: 2,
                has_dst: true,
                semantics: IntXor,
            },
            Op {
                name: "addmem",
                class: IntShortMem,
                fu: LoadStore,
                latency: 5,
                unpipelined: false,
                issue_current: 1.5,
                active_current: 0.20,
                src_count: 1,
                has_dst: true,
                semantics: IntAdd,
            },
            Op {
                name: "movmem",
                class: IntShortMem,
                fu: LoadStore,
                latency: 4,
                unpipelined: false,
                issue_current: 1.3,
                active_current: 0.18,
                src_count: 0,
                has_dst: true,
                semantics: LoadMem,
            },
            Op {
                name: "imul",
                class: IntLong,
                fu: Mul,
                latency: 3,
                unpipelined: false,
                issue_current: 1.3,
                active_current: 0.30,
                src_count: 2,
                has_dst: true,
                semantics: IntMul,
            },
            Op {
                name: "idiv",
                class: IntLong,
                fu: Div,
                latency: 20,
                unpipelined: true,
                issue_current: 0.6,
                active_current: 0.10,
                src_count: 2,
                has_dst: true,
                semantics: IntDiv,
            },
            Op {
                name: "imulmem",
                class: IntLongMem,
                fu: Mul,
                latency: 8,
                unpipelined: false,
                issue_current: 1.5,
                active_current: 0.25,
                src_count: 1,
                has_dst: true,
                semantics: IntMul,
            },
            Op {
                name: "addsd",
                class: FloatShort,
                fu: Fpu,
                latency: 3,
                unpipelined: false,
                issue_current: 1.3,
                active_current: 0.25,
                src_count: 2,
                has_dst: true,
                semantics: FloatAdd,
            },
            Op {
                name: "mulsd",
                class: FloatShort,
                fu: Fpu,
                latency: 5,
                unpipelined: false,
                issue_current: 1.4,
                active_current: 0.28,
                src_count: 2,
                has_dst: true,
                semantics: FloatMul,
            },
            Op {
                name: "divsd",
                class: FloatLong,
                fu: FpDiv,
                latency: 14,
                unpipelined: true,
                issue_current: 0.6,
                active_current: 0.10,
                src_count: 2,
                has_dst: true,
                semantics: FloatDiv,
            },
            Op {
                name: "sqrtsd",
                class: FloatLong,
                fu: FpDiv,
                latency: 16,
                unpipelined: true,
                issue_current: 0.55,
                active_current: 0.09,
                src_count: 1,
                has_dst: true,
                semantics: FloatSqrt,
            },
            Op {
                name: "addpd",
                class: Simd,
                fu: SimdUnit,
                latency: 3,
                unpipelined: false,
                issue_current: 1.8,
                active_current: 0.35,
                src_count: 2,
                has_dst: true,
                semantics: FloatAdd,
            },
            Op {
                name: "mulpd",
                class: Simd,
                fu: SimdUnit,
                latency: 5,
                unpipelined: false,
                issue_current: 2.0,
                active_current: 0.40,
                src_count: 2,
                has_dst: true,
                semantics: FloatMul,
            },
            Op {
                name: "sqrtpd",
                class: SimdLong,
                fu: SimdUnit,
                latency: 20,
                unpipelined: true,
                issue_current: 0.7,
                active_current: 0.12,
                src_count: 1,
                has_dst: true,
                semantics: FloatSqrt,
            },
            Op {
                name: "jmp",
                class: Branch,
                fu: BranchUnit,
                latency: 1,
                unpipelined: false,
                issue_current: 0.4,
                active_current: 0.0,
                src_count: 0,
                has_dst: false,
                semantics: Nop,
            },
        ];
        Architecture {
            isa: Isa::X86_64,
            ops,
            gpr_count: 12,
            fpr_count: 12,
            mem_slots: 64,
        }
    }

    /// Builds the architecture for an [`Isa`].
    pub fn for_isa(isa: Isa) -> Self {
        match isa {
            Isa::ArmV8 => Architecture::armv8(),
            Isa::X86_64 => Architecture::x86_64(),
        }
    }

    /// Which ISA this describes.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// All operation descriptors.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Descriptor for `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn op(&self, idx: OpIndex) -> &Op {
        &self.ops[idx.0]
    }

    /// Looks up an operation by mnemonic.
    pub fn op_by_name(&self, name: &str) -> Option<OpIndex> {
        self.ops.iter().position(|o| o.name == name).map(OpIndex)
    }

    /// Number of usable general-purpose registers.
    pub fn gpr_count(&self) -> u8 {
        self.gpr_count
    }

    /// Number of usable FP/SIMD registers.
    pub fn fpr_count(&self) -> u8 {
        self.fpr_count
    }

    /// Number of 8-byte scratch-memory slots.
    pub fn mem_slots(&self) -> u16 {
        self.mem_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_has_all_paper_classes() {
        let a = Architecture::armv8();
        for class in [
            OpClass::IntShort,
            OpClass::IntLong,
            OpClass::FloatShort,
            OpClass::FloatLong,
            OpClass::Simd,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ] {
            assert!(
                a.ops().iter().any(|o| o.class == class),
                "missing class {class:?}"
            );
        }
    }

    #[test]
    fn x86_uses_memory_operands_not_explicit_loads() {
        let a = Architecture::x86_64();
        assert!(a.ops().iter().all(|o| o.class != OpClass::Load));
        assert!(a.ops().iter().any(|o| o.class == OpClass::IntShortMem));
        assert!(a.ops().iter().any(|o| o.class == OpClass::IntLongMem));
    }

    #[test]
    fn op_lookup_by_name() {
        let a = Architecture::armv8();
        let idx = a.op_by_name("fsqrt").unwrap();
        assert_eq!(a.op(idx).name, "fsqrt");
        assert!(a.op_by_name("bogus").is_none());
    }

    #[test]
    fn long_latency_ops_are_slower_and_cooler() {
        // The paper's premise: long ops stall the pipe and draw less
        // current per cycle than a sustained stream of short ops.
        for arch in [Architecture::armv8(), Architecture::x86_64()] {
            let short_max = arch
                .ops()
                .iter()
                .filter(|o| o.class == OpClass::IntShort)
                .map(|o| o.issue_current)
                .fold(0.0, f64::max);
            for o in arch.ops().iter().filter(|o| o.unpipelined) {
                assert!(o.latency >= 4, "{} latency {}", o.name, o.latency);
                let avg = (o.issue_current + o.active_current * (o.latency - 1) as f64)
                    / o.latency as f64;
                assert!(
                    avg < short_max / 2.0,
                    "{} per-cycle current {avg} not low vs {short_max}",
                    o.name
                );
            }
        }
    }

    #[test]
    fn mix_categories_cover_all_classes() {
        for arch in [Architecture::armv8(), Architecture::x86_64()] {
            for o in arch.ops() {
                // Must not panic and must land in a Table-2 category.
                let cat = o.class.mix_category();
                assert!(MixCategory::ALL.contains(&cat));
            }
        }
    }

    #[test]
    fn semantics_and_register_files_are_consistent() {
        for arch in [Architecture::armv8(), Architecture::x86_64()] {
            for o in arch.ops() {
                if o.class.uses_fp_registers() {
                    assert!(
                        matches!(
                            o.semantics,
                            Semantics::FloatAdd
                                | Semantics::FloatMul
                                | Semantics::FloatDiv
                                | Semantics::FloatSqrt
                                | Semantics::IntAdd
                                | Semantics::Move
                        ),
                        "{} has odd semantics for FP class",
                        o.name
                    );
                }
            }
        }
    }
}
