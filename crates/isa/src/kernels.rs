//! Hand-written kernels: the fast resonance-sweep loop of §5.3 and other
//! fixed instruction sequences used outside the GA.

use crate::arch::{Architecture, Isa};
use crate::instr::{Instr, Kernel, Reg};
use std::sync::Arc;

/// Builds the paper's §5.3 sweep loop: a high-current burst of eight
/// single-cycle ADDs followed by one long-latency divide.
///
/// On a dual-issue core the ADDs retire in 4 cycles at high current and
/// the divide stalls the pipe at low current, so the loop produces one
/// current pulse per iteration — an EM spike at the loop frequency, which
/// DVFS then sweeps across the resonance.
pub fn sweep_kernel(isa: Isa) -> Kernel {
    let arch = Arc::new(Architecture::for_isa(isa));
    let (add_name, div_name) = match isa {
        Isa::ArmV8 => ("add", "sdiv"),
        Isa::X86_64 => ("add", "idiv"),
    };
    let add = arch.op_by_name(add_name).expect("add exists");
    let div = arch.op_by_name(div_name).expect("div exists");
    let div_dst = Reg::gpr(0);
    let mut body = Vec::with_capacity(9);
    for k in 0..8u8 {
        // Independent adds so a dual-issue core sustains 2 per cycle —
        // except the first, which consumes the divide's result so the
        // loop's high- and low-current phases cannot overlap across
        // iterations.
        let dst = Reg::gpr(1 + (k % 6));
        let src = match (isa, k) {
            (_, 0) => div_dst,
            (Isa::ArmV8, _) => Reg::gpr(7 + (k % 4)),
            // x86 two-operand form: dst is also the first source.
            (Isa::X86_64, _) => dst,
        };
        body.push(Instr {
            op: add,
            dst,
            srcs: [src, Reg::gpr(7 + ((k + 1) % 4))],
            mem_slot: 0,
        });
    }
    body.push(Instr {
        op: div,
        dst: div_dst,
        srcs: [
            if isa == Isa::X86_64 {
                div_dst
            } else {
                Reg::gpr(9)
            },
            Reg::gpr(10),
        ],
        mem_slot: 0,
    });
    Kernel::new(arch, body)
}

/// Builds the sweep loop stretched with `extra_adds` serially dependent
/// single-cycle adds. The dependent chain is loop-carried, so the loop
/// period is at least `extra_adds` cycles — used to place the loop
/// frequency near a known resonance without DVFS.
pub fn padded_sweep_kernel(isa: Isa, extra_adds: usize) -> Kernel {
    let base = sweep_kernel(isa);
    let arch = Arc::clone(base.arch());
    let add = arch.op_by_name("add").expect("add exists");
    let mut body = base.body().to_vec();
    let dst = Reg::gpr(11);
    for _ in 0..extra_adds {
        // `dst` doubles as the first source: a loop-carried chain on both
        // ISAs (and exactly the x86 two-operand form).
        body.push(Instr {
            op: add,
            dst,
            srcs: [dst, Reg::gpr(10)],
            mem_slot: 0,
        });
    }
    Kernel::new(arch, body)
}

/// Builds a strong resonant stress kernel: a burst of `simd_ops` parallel
/// SIMD multiplies (the highest-current instructions) followed by a
/// loop-carried chain of `pad` single-cycle adds that sets the loop
/// period. Pick `pad` so the loop frequency (~`f_clk / max(pad, burst)`)
/// lands on the PDN resonance; the result approximates a GA-generated
/// dI/dt virus without running the GA (useful in tests and examples).
pub fn resonant_stress_kernel(isa: Isa, simd_ops: usize, pad: usize) -> Kernel {
    let arch = Arc::new(Architecture::for_isa(isa));
    let simd_name = match isa {
        Isa::ArmV8 => "fmul.4s",
        Isa::X86_64 => "mulpd",
    };
    let simd = arch.op_by_name(simd_name).expect("simd op exists");
    let add = arch.op_by_name("add").expect("add exists");
    let mut body = Vec::with_capacity(simd_ops + pad);
    for k in 0..simd_ops {
        let dst = Reg::fpr((k % 8) as u8);
        let s0 = if isa == Isa::X86_64 {
            dst
        } else {
            Reg::fpr(8 + (k % 4) as u8)
        };
        body.push(Instr {
            op: simd,
            dst,
            srcs: [s0, Reg::fpr(8 + ((k + 1) % 4) as u8)],
            mem_slot: 0,
        });
    }
    let dst = Reg::gpr(11);
    for _ in 0..pad {
        body.push(Instr {
            op: add,
            dst,
            srcs: [dst, Reg::gpr(10)],
            mem_slot: 0,
        });
    }
    Kernel::new(arch, body)
}

/// Builds a simple alternating high/low-current kernel with `bursts`
/// repetitions of (8 ADDs + 1 DIV) per loop iteration — used to construct
/// loops whose intra-iteration modulation frequency is a multiple of the
/// loop frequency.
pub fn burst_kernel(isa: Isa, bursts: usize) -> Kernel {
    let single = sweep_kernel(isa);
    let arch = Arc::clone(single.arch());
    let mut body = Vec::with_capacity(single.len() * bursts);
    for _ in 0..bursts {
        body.extend_from_slice(single.body());
    }
    Kernel::new(arch, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::OpClass;

    #[test]
    fn sweep_kernel_is_eight_adds_one_div() {
        for isa in [Isa::ArmV8, Isa::X86_64] {
            let k = sweep_kernel(isa);
            assert_eq!(k.len(), 9);
            let adds = k
                .body()
                .iter()
                .filter(|i| k.arch().op(i.op).class == OpClass::IntShort)
                .count();
            let divs = k
                .body()
                .iter()
                .filter(|i| k.arch().op(i.op).class == OpClass::IntLong)
                .count();
            assert_eq!((adds, divs), (8, 1), "{isa:?}");
        }
    }

    #[test]
    fn sweep_kernel_adds_are_independent_pairs() {
        let k = sweep_kernel(Isa::ArmV8);
        // Consecutive adds must not form dst->src chains that would
        // serialize a dual-issue core.
        for pair in k.body()[..8].windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert_ne!(a.dst, b.srcs[0]);
            assert_ne!(a.dst, b.srcs[1]);
        }
        // The first add consumes the divide result (loop-carried
        // serialization of the high/low phases).
        assert_eq!(k.body()[0].srcs[0], k.body()[8].dst);
    }

    #[test]
    fn padded_kernel_grows_by_requested_adds() {
        let k = padded_sweep_kernel(Isa::ArmV8, 9);
        assert_eq!(k.len(), 18);
        let k0 = padded_sweep_kernel(Isa::X86_64, 0);
        assert_eq!(k0.len(), 9);
    }

    #[test]
    fn resonant_stress_kernel_shape() {
        let k = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        assert_eq!(k.len(), 29);
        assert!(k.class_fraction(OpClass::Simd) > 0.35);
        let x = resonant_stress_kernel(Isa::X86_64, 16, 40);
        assert_eq!(x.len(), 56);
    }

    #[test]
    fn burst_kernel_scales_length() {
        let k = burst_kernel(Isa::ArmV8, 4);
        assert_eq!(k.len(), 36);
    }

    #[test]
    fn renders_cleanly() {
        let text = sweep_kernel(Isa::X86_64).render();
        assert!(text.contains("idiv"), "{text}");
        assert!(text.matches("add ").count() >= 8, "{text}");
    }
}
