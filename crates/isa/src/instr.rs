//! Instruction instances and kernels (loop bodies).

use crate::arch::{Architecture, Isa, MixCategory, OpClass, OpIndex};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Register-file class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose (integer) register.
    Gpr,
    /// Floating-point / SIMD register.
    Fpr,
}

/// A concrete register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// Register-file class.
    pub class: RegClass,
    /// Index within the file.
    pub index: u8,
}

impl Reg {
    /// A general-purpose register.
    pub fn gpr(index: u8) -> Self {
        Reg {
            class: RegClass::Gpr,
            index,
        }
    }

    /// A floating-point/SIMD register.
    pub fn fpr(index: u8) -> Self {
        Reg {
            class: RegClass::Fpr,
            index,
        }
    }
}

/// One instruction of a kernel: an operation with bound operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Operation index into the kernel's [`Architecture`].
    pub op: OpIndex,
    /// Destination register (meaningful when the op writes one).
    pub dst: Reg,
    /// Source registers; only the first `src_count` of the op are used.
    pub srcs: [Reg; 2],
    /// Scratch-memory slot for memory-class ops.
    pub mem_slot: u16,
}

/// A loop kernel: the 50-instruction body the GA evolves (plus the back
/// branch implied at the end).
///
/// # Examples
///
/// ```
/// use emvolt_isa::{Architecture, Kernel, Instr, Reg, OpIndex};
/// use std::sync::Arc;
///
/// let arch = Arc::new(Architecture::armv8());
/// let add = arch.op_by_name("add").unwrap();
/// let instr = Instr { op: add, dst: Reg::gpr(1), srcs: [Reg::gpr(2), Reg::gpr(3)], mem_slot: 0 };
/// let kernel = Kernel::new(arch, vec![instr]);
/// assert_eq!(kernel.len(), 1);
/// assert!(kernel.render().contains("add"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    arch: Arc<Architecture>,
    body: Vec<Instr>,
}

impl Kernel {
    /// Creates a kernel from a loop body.
    pub fn new(arch: Arc<Architecture>, body: Vec<Instr>) -> Self {
        Kernel { arch, body }
    }

    /// The architecture this kernel targets.
    pub fn arch(&self) -> &Arc<Architecture> {
        &self.arch
    }

    /// The loop body.
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// Mutable access to the loop body (used by GA operators).
    pub fn body_mut(&mut self) -> &mut Vec<Instr> {
        &mut self.body
    }

    /// Number of instructions in the loop body.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// `true` when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Instruction-mix breakdown as fractions per Table-2 category
    /// (fractions sum to 1 for a non-empty kernel).
    pub fn mix_breakdown(&self) -> BTreeMap<MixCategory, f64> {
        let mut counts: BTreeMap<MixCategory, usize> = BTreeMap::new();
        for i in &self.body {
            *counts
                .entry(self.arch.op(i.op).class.mix_category())
                .or_insert(0) += 1;
        }
        let total = self.body.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(k, v)| (k, v as f64 / total))
            .collect()
    }

    /// Fraction of instructions in `class`.
    pub fn class_fraction(&self, class: OpClass) -> f64 {
        if self.body.is_empty() {
            return 0.0;
        }
        let n = self
            .body
            .iter()
            .filter(|i| self.arch.op(i.op).class == class)
            .count();
        n as f64 / self.body.len() as f64
    }

    /// Renders the kernel as assembly text in the target ISA's syntax,
    /// wrapped in a label + back-branch loop, matching what the paper's
    /// framework would hand to the assembler on the target machine.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, ".loop:");
        for (k, i) in self.body.iter().enumerate() {
            let _ = writeln!(out, "    {}", self.render_instr(i, k));
        }
        match self.arch.isa() {
            Isa::ArmV8 => {
                let _ = writeln!(out, "    b .loop");
            }
            Isa::X86_64 => {
                let _ = writeln!(out, "    jmp .loop");
            }
        }
        out
    }

    fn reg_name(&self, r: Reg) -> String {
        match (self.arch.isa(), r.class) {
            (Isa::ArmV8, RegClass::Gpr) => format!("x{}", r.index),
            (Isa::ArmV8, RegClass::Fpr) => format!("v{}", r.index),
            (Isa::X86_64, RegClass::Gpr) => {
                const NAMES: [&str; 12] = [
                    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12",
                    "r13",
                ];
                NAMES
                    .get(r.index as usize)
                    .map(|s| (*s).to_owned())
                    .unwrap_or_else(|| format!("r{}", r.index))
            }
            (Isa::X86_64, RegClass::Fpr) => format!("xmm{}", r.index),
        }
    }

    fn render_instr(&self, i: &Instr, position: usize) -> String {
        let op = self.arch.op(i.op);
        let mem = |slot: u16| match self.arch.isa() {
            Isa::ArmV8 => format!("[x28, #{}]", slot * 8),
            Isa::X86_64 => format!("[rbp+{}]", slot * 8),
        };
        match (self.arch.isa(), op.class) {
            (_, OpClass::Branch) => match self.arch.isa() {
                Isa::ArmV8 => format!("b .l{}", position + 1),
                Isa::X86_64 => format!("jmp .l{}", position + 1),
            },
            (Isa::ArmV8, OpClass::Load) => {
                format!("ldr {}, {}", self.reg_name(i.dst), mem(i.mem_slot))
            }
            (Isa::ArmV8, OpClass::Store) => {
                format!("str {}, {}", self.reg_name(i.srcs[0]), mem(i.mem_slot))
            }
            (Isa::X86_64, OpClass::IntShortMem | OpClass::IntLongMem) => {
                if op.src_count == 0 {
                    format!("mov {}, {}", self.reg_name(i.dst), mem(i.mem_slot))
                } else {
                    format!(
                        "{} {}, {}",
                        base_mnemonic(op.name),
                        self.reg_name(i.dst),
                        mem(i.mem_slot)
                    )
                }
            }
            (Isa::X86_64, _) => {
                // x86 two-operand form: the destination doubles as the
                // first source (the pool generator enforces
                // `srcs[0] == dst` for 2-source ops).
                let mut parts: Vec<String> = Vec::with_capacity(2);
                if op.has_dst {
                    parts.push(self.reg_name(i.dst));
                }
                if op.src_count == 2 {
                    parts.push(self.reg_name(i.srcs[1]));
                } else if op.src_count == 1 {
                    parts.push(self.reg_name(i.srcs[0]));
                }
                format!("{} {}", op.name, parts.join(", "))
            }
            _ => {
                let mut parts: Vec<String> = Vec::with_capacity(3);
                if op.has_dst {
                    parts.push(self.reg_name(i.dst));
                }
                for s in 0..op.src_count as usize {
                    parts.push(self.reg_name(i.srcs[s]));
                }
                format!("{} {}", op.name, parts.join(", "))
            }
        }
    }
}

/// Strips the `mem` suffix from synthetic memory-form mnemonics
/// (`addmem` renders as `add dst, [mem]`).
fn base_mnemonic(name: &str) -> &str {
    name.strip_suffix("mem").unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;

    fn arm_kernel() -> Kernel {
        let arch = Arc::new(Architecture::armv8());
        let add = arch.op_by_name("add").unwrap();
        let ldr = arch.op_by_name("ldr").unwrap();
        let fsqrt = arch.op_by_name("fsqrt").unwrap();
        let body = vec![
            Instr {
                op: add,
                dst: Reg::gpr(1),
                srcs: [Reg::gpr(2), Reg::gpr(3)],
                mem_slot: 0,
            },
            Instr {
                op: ldr,
                dst: Reg::gpr(4),
                srcs: [Reg::gpr(0), Reg::gpr(0)],
                mem_slot: 3,
            },
            Instr {
                op: fsqrt,
                dst: Reg::fpr(1),
                srcs: [Reg::fpr(2), Reg::fpr(0)],
                mem_slot: 0,
            },
        ];
        Kernel::new(arch, body)
    }

    #[test]
    fn renders_arm_syntax() {
        let text = arm_kernel().render();
        assert!(text.contains("add x1, x2, x3"), "{text}");
        assert!(text.contains("ldr x4, [x28, #24]"), "{text}");
        assert!(text.contains("fsqrt v1, v2"), "{text}");
        assert!(text.trim_end().ends_with("b .loop"), "{text}");
    }

    #[test]
    fn renders_x86_syntax() {
        let arch = Arc::new(Architecture::x86_64());
        let addmem = arch.op_by_name("addmem").unwrap();
        let mulpd = arch.op_by_name("mulpd").unwrap();
        let body = vec![
            Instr {
                op: addmem,
                dst: Reg::gpr(0),
                srcs: [Reg::gpr(0), Reg::gpr(0)],
                mem_slot: 2,
            },
            Instr {
                op: mulpd,
                dst: Reg::fpr(3),
                srcs: [Reg::fpr(3), Reg::fpr(4)],
                mem_slot: 0,
            },
        ];
        let k = Kernel::new(arch, body);
        let text = k.render();
        assert!(text.contains("add rax, [rbp+16]"), "{text}");
        assert!(text.contains("mulpd xmm3, xmm4"), "{text}");
        assert!(text.trim_end().ends_with("jmp .loop"), "{text}");
    }

    #[test]
    fn mix_breakdown_sums_to_one() {
        let k = arm_kernel();
        let mix = k.mix_breakdown();
        let total: f64 = mix.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((mix[&MixCategory::ShortIntReg] - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix[&MixCategory::Mem] - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix[&MixCategory::Float] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn class_fraction() {
        let k = arm_kernel();
        assert!((k.class_fraction(OpClass::IntShort) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(k.class_fraction(OpClass::Simd), 0.0);
    }

    #[test]
    fn empty_kernel_is_well_behaved() {
        let arch = Arc::new(Architecture::armv8());
        let k = Kernel::new(arch, vec![]);
        assert!(k.is_empty());
        assert!(k.mix_breakdown().is_empty());
        assert_eq!(k.class_fraction(OpClass::IntShort), 0.0);
        assert!(k.render().contains(".loop"));
    }
}
