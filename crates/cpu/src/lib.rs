//! # emvolt-cpu
//!
//! Cycle-level CPU core models that turn instruction kernels into
//! per-cycle current traces — the I_LOAD waveforms exciting the PDN — plus
//! a functional executor for golden-output/silent-data-corruption checks.
//!
//! Three core presets mirror the paper's platforms: an out-of-order big
//! core (Cortex-A72-like), an in-order little core (Cortex-A53-like) and
//! an out-of-order desktop core (AMD Athlon II-like).
//!
//! # Examples
//!
//! ```
//! use emvolt_cpu::{Cpu, CoreModel, SimConfig};
//! use emvolt_isa::{kernels::sweep_kernel, Isa};
//!
//! # fn main() -> Result<(), emvolt_cpu::SimError> {
//! let cpu = Cpu::new(CoreModel::cortex_a72(), 1.2e9);
//! let out = cpu.simulate(&sweep_kernel(Isa::ArmV8), &SimConfig::default())?;
//! assert!(out.ipc > 0.0);
//! assert!(out.loop_frequency() > 1e6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod func;
mod model;

pub use engine::{Cpu, SimConfig, SimError, SimOutput};
pub use func::{execute, execute_with_faults, ArchState, FaultModel, FuncOutput};
pub use model::CoreModel;
