//! Functional (architectural) execution of kernels.
//!
//! Timing and function are split: the timing engine shapes the current
//! waveform, while this executor computes the architectural results the
//! V_MIN harness compares against a golden reference to detect silent data
//! corruption (the paper checks workload output against a reference
//! obtained at nominal voltage, §5.2).

use emvolt_isa::{Kernel, RegClass, Semantics};
use rand::Rng;

/// Architectural state: both register files plus scratch memory.
///
/// GPRs hold `u64`; FPRs hold `f64`. The register template is
/// pre-initialised with deterministic non-trivial values, mirroring the
/// paper's pre-initialised register template (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// General-purpose registers.
    pub gprs: [u64; 64],
    /// Floating-point registers.
    pub fprs: [f64; 64],
    /// Scratch memory slots (8 bytes each, always cache-resident).
    pub mem: Vec<u64>,
}

impl ArchState {
    /// The canonical pre-initialised template.
    pub fn template(mem_slots: u16) -> Self {
        let mut gprs = [0u64; 64];
        let mut fprs = [0f64; 64];
        for (i, g) in gprs.iter_mut().enumerate() {
            // Odd values so divides are well-behaved.
            *g = (0x9E37_79B9_7F4A_7C15u64)
                .wrapping_mul(i as u64 + 1)
                .wrapping_add(1)
                | 1;
        }
        for (i, f) in fprs.iter_mut().enumerate() {
            // Values in (1, 2): stable under repeated mul/div/sqrt.
            *f = 1.0 + (i as f64 + 1.0) / 80.0;
        }
        let mem = (0..mem_slots as u64)
            .map(|i| i.wrapping_mul(0xD1B5_4A32_D192_ED03) | 1)
            .collect();
        ArchState { gprs, fprs, mem }
    }

    /// Order-sensitive digest of the full architectural state (FNV-1a).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for &g in &self.gprs {
            eat(g);
        }
        for &f in &self.fprs {
            eat(f.to_bits());
        }
        for &m in &self.mem {
            eat(m);
        }
        h
    }
}

/// Bit-flip fault injection model: each executed instruction's result is
/// corrupted with probability `per_instr_probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that any single executed instruction's destination is
    /// corrupted by a single-bit flip.
    pub per_instr_probability: f64,
}

/// Outcome of a functional run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncOutput {
    /// Digest of the final architectural state.
    pub digest: u64,
    /// Number of instructions whose results were corrupted.
    pub faults_injected: u64,
}

/// Executes `kernel` for `iterations` loop iterations without faults and
/// returns the golden digest.
///
/// The digest folds the architectural state after *every* iteration, so
/// corruption anywhere in the run is visible in the output even when the
/// register file later converges back to a fixed point (real output
/// checking observes the whole output stream, not just the final state).
pub fn execute(kernel: &Kernel, iterations: usize) -> u64 {
    let mut state = ArchState::template(kernel.arch().mem_slots());
    let (digest, _) = run(
        kernel,
        iterations,
        &mut state,
        None,
        &mut rand::rngs::mock::StepRng::new(0, 1),
    );
    digest
}

/// Executes with bit-flip fault injection; returns the digest and the
/// number of injected faults.
pub fn execute_with_faults<R: Rng>(
    kernel: &Kernel,
    iterations: usize,
    faults: FaultModel,
    rng: &mut R,
) -> FuncOutput {
    let mut state = ArchState::template(kernel.arch().mem_slots());
    let (digest, injected) = run(kernel, iterations, &mut state, Some(faults), rng);
    FuncOutput {
        digest,
        faults_injected: injected,
    }
}

fn run<R: Rng>(
    kernel: &Kernel,
    iterations: usize,
    state: &mut ArchState,
    faults: Option<FaultModel>,
    rng: &mut R,
) -> (u64, u64) {
    let arch = kernel.arch();
    let mut injected = 0u64;
    let mut stream_digest: u64 = 0xcbf29ce484222325;
    for _ in 0..iterations {
        for i in kernel.body() {
            let op = arch.op(i.op);
            let slot = (i.mem_slot as usize) % state.mem.len().max(1);
            let g = |r: emvolt_isa::Reg, st: &ArchState| match r.class {
                RegClass::Gpr => st.gprs[r.index as usize],
                RegClass::Fpr => st.fprs[r.index as usize].to_bits(),
            };
            let gf = |r: emvolt_isa::Reg, st: &ArchState| match r.class {
                RegClass::Gpr => st.gprs[r.index as usize] as f64,
                RegClass::Fpr => st.fprs[r.index as usize],
            };
            let a = i.srcs[0];
            let b = i.srcs[1];
            enum Res {
                Int(u64),
                Float(f64),
                None,
            }
            let mut res = match op.semantics {
                Semantics::Move => {
                    if i.dst.class == RegClass::Fpr {
                        Res::Float(gf(a, state))
                    } else {
                        Res::Int(g(a, state))
                    }
                }
                Semantics::IntAdd => {
                    if i.dst.class == RegClass::Fpr {
                        // SIMD integer add modelled on the FP file.
                        Res::Float(gf(a, state) + gf(b, state))
                    } else {
                        Res::Int(g(a, state).wrapping_add(g(b, state)))
                    }
                }
                Semantics::IntSub => Res::Int(g(a, state).wrapping_sub(g(b, state))),
                Semantics::IntXor => Res::Int(g(a, state) ^ g(b, state)),
                Semantics::IntMul => Res::Int(g(a, state).wrapping_mul(g(b, state))),
                Semantics::IntDiv => {
                    let divisor = g(b, state) | 1; // never zero
                    Res::Int(g(a, state) / divisor)
                }
                Semantics::FloatAdd => Res::Float(gf(a, state) + gf(b, state)),
                Semantics::FloatMul => Res::Float(norm(gf(a, state) * gf(b, state))),
                Semantics::FloatDiv => {
                    let d = gf(b, state);
                    let d = if d.abs() < 1e-300 { 1.0 } else { d };
                    Res::Float(norm(gf(a, state) / d))
                }
                Semantics::FloatSqrt => Res::Float(gf(a, state).abs().sqrt()),
                Semantics::LoadMem => {
                    let v = state.mem[slot];
                    if i.dst.class == RegClass::Fpr {
                        Res::Float(f64::from_bits(v))
                    } else {
                        Res::Int(v)
                    }
                }
                Semantics::StoreMem => {
                    state.mem[slot] = g(a, state);
                    Res::None
                }
                Semantics::Nop => Res::None,
            };
            // Fault injection on the produced value.
            if let Some(fm) = faults {
                if !matches!(res, Res::None)
                    && rng.gen_bool(fm.per_instr_probability.clamp(0.0, 1.0))
                {
                    injected += 1;
                    let bit = rng.gen_range(0..52u32); // avoid exponent bits for floats
                    res = match res {
                        Res::Int(v) => Res::Int(v ^ (1u64 << bit)),
                        Res::Float(f) => Res::Float(f64::from_bits(f.to_bits() ^ (1u64 << bit))),
                        Res::None => Res::None,
                    };
                }
            }
            if op.has_dst {
                match (res, i.dst.class) {
                    (Res::Int(v), RegClass::Gpr) => state.gprs[i.dst.index as usize] = v,
                    (Res::Int(v), RegClass::Fpr) => {
                        state.fprs[i.dst.index as usize] = f64::from_bits(v)
                    }
                    (Res::Float(f), RegClass::Fpr) => state.fprs[i.dst.index as usize] = f,
                    (Res::Float(f), RegClass::Gpr) => {
                        state.gprs[i.dst.index as usize] = f.to_bits()
                    }
                    (Res::None, _) => {}
                }
            }
        }
        // Fold this iteration's state into the output-stream digest.
        for b in state.digest().to_le_bytes() {
            stream_digest ^= b as u64;
            stream_digest = stream_digest.wrapping_mul(0x100000001b3);
        }
    }
    (stream_digest, injected)
}

/// Keeps float magnitudes in a sane range so long runs neither overflow
/// nor denormalise (the real templates re-seed registers similarly).
fn norm(x: f64) -> f64 {
    if !x.is_finite() || x.abs() > 1e30 || (x != 0.0 && x.abs() < 1e-30) {
        1.5
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_isa::{kernels::sweep_kernel, InstructionPool, Isa};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn execution_is_deterministic() {
        let k = sweep_kernel(Isa::ArmV8);
        assert_eq!(execute(&k, 100), execute(&k, 100));
    }

    #[test]
    fn different_iteration_counts_change_digest() {
        // An accumulating kernel (x1 += x2) changes state every iteration;
        // the plain sweep kernel reaches a register fixed point instead.
        let arch = std::sync::Arc::new(emvolt_isa::Architecture::armv8());
        let add = arch.op_by_name("add").unwrap();
        let body = vec![emvolt_isa::Instr {
            op: add,
            dst: emvolt_isa::Reg::gpr(1),
            srcs: [emvolt_isa::Reg::gpr(1), emvolt_isa::Reg::gpr(2)],
            mem_slot: 0,
        }];
        let k = emvolt_isa::Kernel::new(arch, body);
        assert_ne!(execute(&k, 10), execute(&k, 11));
    }

    #[test]
    fn random_kernels_execute_without_panicking() {
        for isa in [Isa::ArmV8, Isa::X86_64] {
            let pool = InstructionPool::default_for(isa);
            let mut rng = StdRng::seed_from_u64(17);
            for _ in 0..20 {
                let k = pool.random_kernel(50, &mut rng);
                let _ = execute(&k, 50);
            }
        }
    }

    #[test]
    fn zero_fault_probability_matches_golden() {
        let k = sweep_kernel(Isa::X86_64);
        let golden = execute(&k, 200);
        let mut rng = StdRng::seed_from_u64(3);
        let out = execute_with_faults(
            &k,
            200,
            FaultModel {
                per_instr_probability: 0.0,
            },
            &mut rng,
        );
        assert_eq!(out.digest, golden);
        assert_eq!(out.faults_injected, 0);
    }

    #[test]
    fn faults_corrupt_the_digest() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let mut rng = StdRng::seed_from_u64(5);
        let k = pool.random_kernel(50, &mut rng);
        let golden = execute(&k, 100);
        let out = execute_with_faults(
            &k,
            100,
            FaultModel {
                per_instr_probability: 0.01,
            },
            &mut rng,
        );
        assert!(out.faults_injected > 0);
        assert_ne!(out.digest, golden, "bit flips must be visible in output");
    }

    #[test]
    fn state_template_is_nontrivial() {
        let s = ArchState::template(64);
        assert!(s.gprs.iter().all(|&g| g != 0));
        assert!(s.gprs[0] != s.gprs[1]);
        assert!(s.fprs.iter().all(|&f| f > 1.0 && f < 2.0));
        assert_eq!(s.mem.len(), 64);
    }

    #[test]
    fn float_values_stay_finite_over_long_runs() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let mut rng = StdRng::seed_from_u64(23);
        let k = pool.random_kernel(50, &mut rng);
        let mut state = ArchState::template(64);
        let _ = run(&k, 5000, &mut state, None, &mut rng);
        for &f in &state.fprs {
            assert!(f.is_finite(), "non-finite register after long run");
        }
    }
}
