//! Cycle-level timing simulation producing per-cycle current traces.
//!
//! The model is deliberately at the abstraction level the paper's physics
//! needs: what shapes voltage noise is the *cycle-by-cycle current
//! waveform* of the loop — which instructions issue together, where the
//! pipeline stalls on long-latency or unpipelined operations, and how much
//! switching activity each instruction contributes. Caches are always warm
//! (the paper deliberately avoids misses for determinism, §3.3).
//!
//! Simplifications relative to real pipelines, none of which affect the
//! current waveform's spectral content at the fidelity this work needs:
//! only true (RAW) register dependences stall issue (no WAW/WAR
//! interlocks — most cores of this era rename or forward around them),
//! and scratch-memory accesses are treated as independent (distinct
//! 8-byte slots, no store-to-load aliasing stalls).

use crate::model::CoreModel;
use emvolt_circuit::Trace;
use emvolt_isa::{FuKind, Kernel, Reg, RegClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// Configuration of one timing-simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Loop iterations executed before recording starts (pipeline and
    /// current-history settling).
    pub warmup_iterations: usize,
    /// Minimum recorded duration in seconds (determines spectral
    /// resolution downstream).
    pub min_duration: f64,
    /// Hard cap on simulated cycles to guard against pathological
    /// configurations.
    pub max_cycles: u64,
    /// Mean wall-clock interval between front-end interference stalls
    /// (uncore arbitration, DRAM refresh, snoops); `0.0` disables them.
    /// Real loops are never perfectly periodic: these events limit the
    /// coherence time of loop-harmonic spectral lines exactly as on
    /// hardware, so narrowband spikes cannot sit arbitrarily far from the
    /// PDN resonance without losing coherent amplitude.
    pub interference_interval_s: f64,
    /// Stall duration range in cycles when interference strikes.
    pub interference_stall: (u32, u32),
    /// Seed for the (deterministic) interference sequence.
    pub jitter_seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            warmup_iterations: 10,
            min_duration: 4e-6,
            max_cycles: 50_000_000,
            interference_interval_s: 0.0,
            interference_stall: (2, 10),
            jitter_seed: 0x1177,
        }
    }
}

/// Errors from the timing simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel has no instructions.
    EmptyKernel,
    /// An instruction requires a functional unit the core does not have.
    MissingFunctionalUnit {
        /// The mnemonic of the offending instruction.
        op: &'static str,
        /// The unit kind it needs.
        fu: FuKind,
    },
    /// The cycle cap was reached before the requested duration completed.
    CycleLimitExceeded {
        /// The configured cap.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyKernel => write!(f, "kernel has no instructions"),
            SimError::MissingFunctionalUnit { op, fu } => {
                write!(f, "no {fu:?} unit available for `{op}`")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a timing simulation.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Per-cycle core current in amps; `dt = 1 / f_clk`.
    pub current: Trace,
    /// Average instructions per cycle over the recorded window.
    pub ipc: f64,
    /// Average cycles per loop iteration in steady state.
    pub cycles_per_iteration: f64,
    /// Clock frequency the run used, in Hz.
    pub clock_hz: f64,
    /// Issue counts per functional-unit kind over the recorded window —
    /// where the pipeline's activity (and current) comes from.
    pub fu_issues: std::collections::BTreeMap<FuKind, u64>,
}

impl SimOutput {
    /// Loop period in seconds (`cycles_per_iteration / f_clk`).
    pub fn loop_period(&self) -> f64 {
        self.cycles_per_iteration / self.clock_hz
    }

    /// Fraction of recorded issues that went to `kind`.
    pub fn fu_share(&self, kind: FuKind) -> f64 {
        let total: u64 = self.fu_issues.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.fu_issues.get(&kind).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Loop frequency in Hz (`1 / loop_period`), the quantity swept in
    /// §5.3 of the paper.
    pub fn loop_frequency(&self) -> f64 {
        1.0 / self.loop_period()
    }
}

/// A CPU core clocked at a specific frequency, ready to simulate kernels.
#[derive(Debug, Clone)]
pub struct Cpu {
    model: CoreModel,
    freq_hz: f64,
}

/// Flat register id: GPRs then FPRs.
fn reg_id(r: Reg) -> usize {
    match r.class {
        RegClass::Gpr => r.index as usize,
        RegClass::Fpr => 64 + r.index as usize,
    }
}

const REG_SPACE: usize = 128;
const NO_PRODUCER: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct DynOp {
    /// Index into the kernel body, or `usize::MAX` for the implicit
    /// back-branch.
    deps: [u64; 2],
    dep_count: u8,
    fu: FuKind,
    latency: u32,
    unpipelined: bool,
    issue_current: f64,
    active_current: f64,
    ends_iteration: bool,
}

impl Cpu {
    /// Creates a core at `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive.
    pub fn new(model: CoreModel, freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "clock frequency must be positive");
        Cpu { model, freq_hz }
    }

    /// The microarchitecture model.
    pub fn model(&self) -> &CoreModel {
        &self.model
    }

    /// Current clock frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.freq_hz
    }

    /// Re-clocks the core (DVFS).
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive.
    pub fn set_frequency(&mut self, freq_hz: f64) {
        assert!(freq_hz > 0.0, "clock frequency must be positive");
        self.freq_hz = freq_hz;
    }

    /// Runs the timing simulation of `kernel` looping continuously.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for empty kernels, missing functional units or
    /// cycle-limit exhaustion.
    pub fn simulate(&self, kernel: &Kernel, config: &SimConfig) -> Result<SimOutput, SimError> {
        self.simulate_inner(kernel, config, None)
    }

    /// Like [`Cpu::simulate`], additionally filling `occupancy` with the
    /// number of slots issued on each recorded cycle — index `k` pairs
    /// with sample `k` of the returned current trace. The simulation
    /// itself is bit-identical to [`Cpu::simulate`]; the capture only
    /// stores counts the issue loop already computes (this is the
    /// `cpu.issue_slots` waveform-trace source).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for the same conditions as [`Cpu::simulate`];
    /// on error `occupancy` contents are unspecified.
    pub fn simulate_traced(
        &self,
        kernel: &Kernel,
        config: &SimConfig,
        occupancy: &mut Vec<u32>,
    ) -> Result<SimOutput, SimError> {
        self.simulate_inner(kernel, config, Some(occupancy))
    }

    fn simulate_inner(
        &self,
        kernel: &Kernel,
        config: &SimConfig,
        mut occupancy: Option<&mut Vec<u32>>,
    ) -> Result<SimOutput, SimError> {
        if let Some(occ) = occupancy.as_deref_mut() {
            occ.clear();
        }
        if kernel.is_empty() {
            return Err(SimError::EmptyKernel);
        }
        // Pre-flight: every op must have a unit.
        for i in kernel.body() {
            let op = kernel.arch().op(i.op);
            if self.model.fu_count(op.fu) == 0 {
                return Err(SimError::MissingFunctionalUnit {
                    op: op.name,
                    fu: op.fu,
                });
            }
        }
        let branch_op = kernel
            .arch()
            .ops()
            .iter()
            .position(|o| o.class == emvolt_isa::OpClass::Branch);

        // --- Static decode: per-body-slot metadata -----------------------
        struct StaticOp {
            srcs: [usize; 2],
            src_count: u8,
            dst: Option<usize>,
            fu: FuKind,
            latency: u32,
            unpipelined: bool,
            issue_current: f64,
            active_current: f64,
        }
        let scale = self.model.current_scale;
        let mut statics: Vec<StaticOp> = kernel
            .body()
            .iter()
            .map(|i| {
                let op = kernel.arch().op(i.op);
                StaticOp {
                    srcs: [reg_id(i.srcs[0]), reg_id(i.srcs[1])],
                    src_count: op.src_count,
                    dst: op.has_dst.then(|| reg_id(i.dst)),
                    fu: op.fu,
                    latency: op.latency.max(1),
                    unpipelined: op.unpipelined,
                    issue_current: op.issue_current * scale,
                    active_current: op.active_current * scale,
                }
            })
            .collect();
        // Implicit back-branch closing the loop.
        if let Some(bi) = branch_op {
            let op = &kernel.arch().ops()[bi];
            if self.model.fu_count(op.fu) > 0 {
                statics.push(StaticOp {
                    srcs: [0, 0],
                    src_count: 0,
                    dst: None,
                    fu: op.fu,
                    latency: 1,
                    unpipelined: false,
                    issue_current: op.issue_current * scale,
                    active_current: 0.0,
                });
            }
        }
        let slots = statics.len();

        // --- Engine state -------------------------------------------------
        let mut fu_free: std::collections::BTreeMap<FuKind, Vec<u64>> = self
            .model
            .fu_counts
            .iter()
            .map(|(&k, &n)| (k, vec![0u64; n as usize]))
            .collect();
        let mut last_writer = [NO_PRODUCER; REG_SPACE];
        let mut completion: Vec<u64> = Vec::new(); // dyn id -> completion cycle
        let mut dyn_current: Vec<f64> = Vec::new();
        let mut cycle: u64 = 0;
        let mut fetched: u64 = 0;
        let mut iterations_done: usize = 0;
        let mut record_start: Option<u64> = None;
        let mut issued_since_start: u64 = 0;
        let mut fu_issues: std::collections::BTreeMap<FuKind, u64> =
            std::collections::BTreeMap::new();
        let mut iter_start_cycle: Option<u64> = None;
        let mut iters_in_window: usize = 0;

        let duration_cycles = (config.min_duration * self.freq_hz).ceil() as u64;
        let duration_cycles = duration_cycles.max(slots as u64 * 4).max(64);

        // On-die charge delivery spreads each event's current draw over a
        // few cycles (pipeline capacitance and grid RC); a short triangular
        // kernel keeps tens-of-MHz content while taming cycle-to-cycle
        // chatter.
        const SPREAD: [f64; 3] = [0.5, 0.3, 0.2];
        let add_current = |dyn_current: &mut Vec<f64>, at: u64, amps: f64| {
            let idx = at as usize;
            if dyn_current.len() <= idx + SPREAD.len() {
                dyn_current.resize(idx + SPREAD.len() + 1, 0.0);
            }
            for (k, w) in SPREAD.iter().enumerate() {
                dyn_current[idx + k] += amps * w;
            }
        };

        // Window of in-flight dynamic ops (size 1-slot lookahead for the
        // in-order engine).
        let window_cap = if self.model.out_of_order {
            self.model.window.max(self.model.issue_width as usize)
        } else {
            self.model.issue_width as usize
        };
        let mut window: VecDeque<(u64, DynOp, bool)> = VecDeque::new(); // (id, op, issued)
        let mut jitter_rng = StdRng::seed_from_u64(config.jitter_seed);
        let mut fetch_stall: u32 = 0;
        // Per-cycle probability of an interference event.
        let interference_p = if config.interference_interval_s > 0.0 {
            ((1.0 / self.freq_hz) / config.interference_interval_s).clamp(0.0, 1.0)
        } else {
            0.0
        };

        let fetch = |window: &mut VecDeque<(u64, DynOp, bool)>,
                     fetched: &mut u64,
                     last_writer: &mut [u64; REG_SPACE],
                     completion: &mut Vec<u64>| {
            let slot = (*fetched % slots as u64) as usize;
            let s = &statics[slot];
            let mut deps = [NO_PRODUCER; 2];
            let mut dep_count = 0u8;
            for k in 0..s.src_count as usize {
                let p = last_writer[s.srcs[k]];
                if p != NO_PRODUCER {
                    deps[dep_count as usize] = p;
                    dep_count += 1;
                }
            }
            // In-order scoreboard also interlocks on WAW through
            // last_writer tracking at issue; OoO renames (no WAW dep).
            let d = DynOp {
                deps,
                dep_count,
                fu: s.fu,
                latency: s.latency,
                unpipelined: s.unpipelined,
                issue_current: s.issue_current,
                active_current: s.active_current,
                ends_iteration: slot == slots - 1,
            };
            let id = *fetched;
            if let Some(dst) = s.dst {
                last_writer[dst] = id;
            }
            completion.push(u64::MAX);
            window.push_back((id, d, false));
            *fetched += 1;
        };

        loop {
            if cycle >= config.max_cycles {
                return Err(SimError::CycleLimitExceeded {
                    limit: config.max_cycles,
                });
            }
            // Keep the window full (unless an interference stall holds
            // the front end).
            if fetch_stall > 0 {
                fetch_stall -= 1;
            } else {
                if interference_p > 0.0 && jitter_rng.gen_bool(interference_p) {
                    let (lo, hi) = config.interference_stall;
                    fetch_stall = jitter_rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
                } else {
                    while window.len() < window_cap {
                        fetch(&mut window, &mut fetched, &mut last_writer, &mut completion);
                    }
                }
            }

            // Issue.
            let mut issued = 0u32;
            let in_order = !self.model.out_of_order;
            for slot_ref in window.iter_mut() {
                if issued >= self.model.issue_width {
                    break;
                }
                let (id, d, done) = (&slot_ref.0, &slot_ref.1, &mut slot_ref.2);
                if *done {
                    continue;
                }
                // Dependency check: all producers completed by now.
                let mut ready = true;
                for k in 0..d.dep_count as usize {
                    let c = completion[d.deps[k] as usize];
                    if c == u64::MAX || c > cycle {
                        ready = false;
                        break;
                    }
                }
                // FU availability.
                let mut fu_slot: Option<usize> = None;
                if ready {
                    if let Some(units) = fu_free.get(&d.fu) {
                        fu_slot = units.iter().position(|&free| free <= cycle);
                    }
                    if fu_slot.is_none() {
                        ready = false;
                    }
                }
                if ready {
                    let unit = fu_slot.expect("checked above");
                    let busy_until = if d.unpipelined {
                        cycle + d.latency as u64
                    } else {
                        cycle + 1
                    };
                    fu_free.get_mut(&d.fu).expect("fu exists")[unit] = busy_until;
                    completion[*id as usize] = cycle + d.latency as u64;
                    add_current(&mut dyn_current, cycle, d.issue_current);
                    for t in 1..d.latency as u64 {
                        add_current(&mut dyn_current, cycle + t, d.active_current);
                    }
                    *done = true;
                    issued += 1;
                    if record_start.is_some() {
                        issued_since_start += 1;
                        *fu_issues.entry(d.fu).or_insert(0) += 1;
                    }
                    if d.ends_iteration {
                        iterations_done += 1;
                        if iterations_done == config.warmup_iterations {
                            record_start = Some(cycle + 1);
                            iter_start_cycle = Some(cycle + 1);
                        } else if record_start.is_some() {
                            iters_in_window += 1;
                        }
                    }
                } else if in_order {
                    // Stall-on-first-hazard.
                    break;
                }
            }

            // Retire front entries so the window admits new work. The
            // in-order engine uses the window purely as an issue buffer
            // (completion is tracked in the scoreboard), while the
            // out-of-order engine retires in order on completion, like a
            // reorder buffer.
            if in_order {
                while window.front().map(|(_, _, done)| *done).unwrap_or(false) {
                    window.pop_front();
                }
            } else {
                while window
                    .front()
                    .map(|(id, _, done)| *done && completion[*id as usize] <= cycle + 1)
                    .unwrap_or(false)
                {
                    window.pop_front();
                }
            }

            // Absolute-cycle occupancy log; sliced to the recorded window
            // at assembly so entry `k` pairs with current sample `k`.
            if let Some(occ) = occupancy.as_deref_mut() {
                occ.push(issued);
            }

            cycle += 1;

            if let Some(start) = record_start {
                if cycle >= start + duration_cycles && iters_in_window >= 2 {
                    // --- Assemble outputs ---------------------------------
                    let end = start + duration_cycles;
                    let mut samples = Vec::with_capacity(duration_cycles as usize);
                    for c in start..end {
                        let dynamic = dyn_current.get(c as usize).copied().unwrap_or(0.0);
                        samples.push(self.model.idle_current + dynamic);
                    }
                    if let Some(occ) = occupancy.as_deref_mut() {
                        occ.drain(..start as usize);
                        occ.truncate(duration_cycles as usize);
                    }
                    let dt = 1.0 / self.freq_hz;
                    let window_cycles = (cycle - start) as f64;
                    let ipc = issued_since_start as f64 / window_cycles;
                    let cycles_per_iteration = if iters_in_window > 0 {
                        (cycle - iter_start_cycle.unwrap_or(start)) as f64 / iters_in_window as f64
                    } else {
                        window_cycles
                    };
                    return Ok(SimOutput {
                        current: Trace::from_samples(dt, samples),
                        ipc,
                        cycles_per_iteration,
                        clock_hz: self.freq_hz,
                        fu_issues,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CoreModel;
    use emvolt_isa::{kernels::sweep_kernel, InstructionPool, Isa};
    use rand::{rngs::StdRng, SeedableRng};

    fn a53() -> Cpu {
        Cpu::new(CoreModel::cortex_a53(), 950e6)
    }

    fn a72() -> Cpu {
        Cpu::new(CoreModel::cortex_a72(), 1.2e9)
    }

    #[test]
    fn traced_simulation_is_bit_identical_and_aligned() {
        let cpu = a53();
        let k = sweep_kernel(Isa::ArmV8);
        let cfg = SimConfig::default();
        let plain = cpu.simulate(&k, &cfg).unwrap();
        let mut occupancy = vec![99u32; 3]; // stale contents must be cleared
        let traced = cpu.simulate_traced(&k, &cfg, &mut occupancy).unwrap();
        assert_eq!(plain.current.samples(), traced.current.samples());
        assert_eq!(plain.ipc, traced.ipc);
        assert_eq!(occupancy.len(), traced.current.len());
        let width = cpu.model().issue_width;
        assert!(occupancy.iter().all(|&n| n <= width));
        // The kernel issues work, so some recorded cycle must be busy.
        assert!(occupancy.iter().any(|&n| n > 0));
        // Occupancy integrates to the issue count implied by the IPC over
        // the same window.
        // (up to issue_width boundary issues land on the cycle before the
        // recorded window opens).
        let total: u64 = occupancy.iter().map(|&n| n as u64).sum();
        let expected = traced.ipc * occupancy.len() as f64;
        assert!(
            (total as f64 - expected).abs() <= width as f64 + 1e-9,
            "sum {total} vs ipc-implied {expected}"
        );
    }

    #[test]
    fn sweep_kernel_takes_about_eight_cycles_on_dual_issue() {
        // 8 independent ADDs dual-issue in 4 cycles; the unpipelined DIV
        // blocks for ~its latency; total near 4 + DIV latency.
        let cpu = a53();
        let k = sweep_kernel(Isa::ArmV8);
        let out = cpu.simulate(&k, &SimConfig::default()).unwrap();
        assert!(
            out.cycles_per_iteration >= 8.0 && out.cycles_per_iteration <= 20.0,
            "cycles/iter {}",
            out.cycles_per_iteration
        );
    }

    #[test]
    fn current_trace_alternates_high_low() {
        let cpu = a53();
        let k = sweep_kernel(Isa::ArmV8);
        let out = cpu.simulate(&k, &SimConfig::default()).unwrap();
        let p2p = out.current.peak_to_peak();
        // With the calibrated per-op currents the high (dual-issue ADD)
        // and low (DIV stall) phases differ by tens of milliamps.
        assert!(p2p > 0.05, "current swing too small: {p2p}");
        assert!(out.current.min() >= cpu.model().idle_current - 1e-12);
    }

    #[test]
    fn ooo_beats_in_order_on_random_code() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let mut rng = StdRng::seed_from_u64(5);
        let k = pool.random_kernel(50, &mut rng);
        let out_io = a53().simulate(&k, &SimConfig::default()).unwrap();
        let out_ooo = a72().simulate(&k, &SimConfig::default()).unwrap();
        assert!(
            out_ooo.ipc >= out_io.ipc * 0.95,
            "OoO IPC {} should be at least in-order IPC {}",
            out_ooo.ipc,
            out_io.ipc
        );
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let k = pool.random_kernel(50, &mut rng);
            let out = a72().simulate(&k, &SimConfig::default()).unwrap();
            assert!(out.ipc > 0.0 && out.ipc <= 3.0 + 1e-9, "ipc {}", out.ipc);
        }
    }

    #[test]
    fn loop_frequency_scales_with_clock() {
        let k = sweep_kernel(Isa::ArmV8);
        let cfg = SimConfig::default();
        let mut cpu = a53();
        let f1 = cpu.simulate(&k, &cfg).unwrap().loop_frequency();
        cpu.set_frequency(475e6);
        let f2 = cpu.simulate(&k, &cfg).unwrap().loop_frequency();
        assert!(
            (f1 / f2 - 2.0).abs() < 0.05,
            "halving the clock must halve loop frequency: {f1} vs {f2}"
        );
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let arch = std::sync::Arc::new(emvolt_isa::Architecture::armv8());
        let k = emvolt_isa::Kernel::new(arch, vec![]);
        assert!(matches!(
            a53().simulate(&k, &SimConfig::default()),
            Err(SimError::EmptyKernel)
        ));
    }

    #[test]
    fn deterministic_output() {
        let pool = InstructionPool::default_for(Isa::X86_64);
        let mut rng = StdRng::seed_from_u64(1);
        let k = pool.random_kernel(50, &mut rng);
        let cpu = Cpu::new(CoreModel::athlon_ii(), 3.1e9);
        let a = cpu.simulate(&k, &SimConfig::default()).unwrap();
        let b = cpu.simulate(&k, &SimConfig::default()).unwrap();
        assert_eq!(a.current.samples(), b.current.samples());
        assert_eq!(a.ipc, b.ipc);
    }

    #[test]
    fn missing_fu_is_reported() {
        let mut model = CoreModel::cortex_a53();
        model.fu_counts.remove(&FuKind::Div);
        let cpu = Cpu::new(model, 1e9);
        let k = sweep_kernel(Isa::ArmV8);
        assert!(matches!(
            cpu.simulate(&k, &SimConfig::default()),
            Err(SimError::MissingFunctionalUnit { .. })
        ));
    }
}

#[cfg(test)]
mod hazard_tests {
    use super::*;
    use crate::model::CoreModel;
    use emvolt_isa::{Architecture, Instr, Kernel, Reg};
    use std::sync::Arc;

    fn kernel(instrs: Vec<Instr>) -> Kernel {
        Kernel::new(Arc::new(Architecture::armv8()), instrs)
    }

    fn add(arch: &Architecture, dst: u8, a: u8, b: u8) -> Instr {
        Instr {
            op: arch.op_by_name("add").unwrap(),
            dst: Reg::gpr(dst),
            srcs: [Reg::gpr(a), Reg::gpr(b)],
            mem_slot: 0,
        }
    }

    /// A fully serial RAW chain issues one instruction per cycle even on
    /// a wide out-of-order core.
    #[test]
    fn raw_chain_serializes() {
        let arch = Architecture::armv8();
        let body: Vec<Instr> = (0..8).map(|_| add(&arch, 1, 1, 2)).collect();
        let cpu = Cpu::new(CoreModel::cortex_a72(), 1.2e9);
        let out = cpu.simulate(&kernel(body), &SimConfig::default()).unwrap();
        assert!(
            out.ipc < 1.15,
            "dependent chain should bound IPC near 1, got {}",
            out.ipc
        );
    }

    /// Independent adds dual-issue on the in-order A53 (2 ALUs).
    #[test]
    fn independent_adds_dual_issue_in_order() {
        let arch = Architecture::armv8();
        let body: Vec<Instr> = (0..8u8).map(|k| add(&arch, 1 + (k % 6), 8, 9)).collect();
        let cpu = Cpu::new(CoreModel::cortex_a53(), 950e6);
        let out = cpu.simulate(&kernel(body), &SimConfig::default()).unwrap();
        assert!(out.ipc > 1.5, "expected dual issue, got IPC {}", out.ipc);
    }

    /// Back-to-back divides serialize on the single unpipelined divider.
    #[test]
    fn unpipelined_divider_is_a_structural_hazard() {
        let arch = Architecture::armv8();
        let sdiv = arch.op_by_name("sdiv").unwrap();
        let lat = arch.op(sdiv).latency as f64;
        let body: Vec<Instr> = (0..4u8)
            .map(|k| Instr {
                op: sdiv,
                dst: Reg::gpr(1 + k),
                srcs: [Reg::gpr(8), Reg::gpr(9)],
                mem_slot: 0,
            })
            .collect();
        let cpu = Cpu::new(CoreModel::cortex_a72(), 1.2e9);
        let out = cpu.simulate(&kernel(body), &SimConfig::default()).unwrap();
        // Four divides of `lat` cycles each on one busy-until-done unit.
        assert!(
            out.cycles_per_iteration >= 4.0 * lat - 1.0,
            "cycles/iter {} for 4 divides of {lat} cycles",
            out.cycles_per_iteration
        );
    }

    /// The out-of-order core hides a long-latency op behind independent
    /// work; the in-order core cannot when a dependent op follows it.
    #[test]
    fn ooo_hides_latency_behind_independent_work() {
        let arch = Architecture::armv8();
        let fdiv = arch.op_by_name("fdiv").unwrap();
        let mut body = vec![Instr {
            op: fdiv,
            dst: Reg::fpr(1),
            srcs: [Reg::fpr(2), Reg::fpr(3)],
            mem_slot: 0,
        }];
        // Dependent consumer right behind the divide...
        body.push(Instr {
            op: arch.op_by_name("fadd").unwrap(),
            dst: Reg::fpr(4),
            srcs: [Reg::fpr(1), Reg::fpr(5)],
            mem_slot: 0,
        });
        // ...and plenty of independent integer work.
        for k in 0..12u8 {
            body.push(add(&arch, 1 + (k % 6), 8, 9));
        }
        let k = kernel(body);
        let ooo = Cpu::new(CoreModel::cortex_a72(), 1.2e9)
            .simulate(&k, &SimConfig::default())
            .unwrap();
        let io = Cpu::new(CoreModel::cortex_a53(), 1.2e9)
            .simulate(&k, &SimConfig::default())
            .unwrap();
        assert!(
            ooo.cycles_per_iteration < io.cycles_per_iteration,
            "OoO {} cycles vs in-order {}",
            ooo.cycles_per_iteration,
            io.cycles_per_iteration
        );
    }

    /// FU issue accounting matches the kernel's composition.
    #[test]
    fn fu_issue_shares_reflect_the_kernel() {
        let arch = Architecture::armv8();
        let mut body: Vec<Instr> = (0..6u8).map(|k| add(&arch, 1 + (k % 6), 8, 9)).collect();
        let vmul = arch.op_by_name("fmul.4s").unwrap();
        for k in 0..2u8 {
            body.push(Instr {
                op: vmul,
                dst: Reg::fpr(k),
                srcs: [Reg::fpr(8), Reg::fpr(9)],
                mem_slot: 0,
            });
        }
        let cpu = Cpu::new(CoreModel::cortex_a72(), 1.2e9);
        let out = cpu.simulate(&kernel(body), &SimConfig::default()).unwrap();
        let alu = out.fu_share(FuKind::Alu);
        let simd = out.fu_share(FuKind::SimdUnit);
        // 6 adds : 2 SIMD : 1 branch per iteration.
        assert!((alu - 6.0 / 9.0).abs() < 0.05, "alu share {alu}");
        assert!((simd - 2.0 / 9.0).abs() < 0.05, "simd share {simd}");
        assert!(out.fu_share(FuKind::Div) < 1e-9);
    }
}
