//! Core microarchitecture models.

use emvolt_isa::{FuKind, Isa};
use std::collections::BTreeMap;

/// Microarchitectural parameters of one CPU core.
///
/// The timing model only needs the handful of properties that shape the
/// cycle-by-cycle current waveform: issue width, in-order vs out-of-order
/// scheduling, functional-unit counts and the per-core current baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreModel {
    /// Human-readable model name.
    pub name: &'static str,
    /// The instruction-set architecture this core executes.
    pub isa: Isa,
    /// Instructions issued per cycle at most.
    pub issue_width: u32,
    /// `true` for out-of-order scheduling over a window, `false` for
    /// stall-on-first-hazard in-order issue.
    pub out_of_order: bool,
    /// Scheduling-window size (out-of-order only).
    pub window: usize,
    /// Functional-unit counts by kind; kinds absent here cannot execute.
    pub fu_counts: BTreeMap<FuKind, u32>,
    /// Static + clock-tree current of a powered core, in amps.
    pub idle_current: f64,
    /// Scale factor applied to every op's dynamic current (captures the
    /// power class of the implementation/process).
    pub current_scale: f64,
}

fn fu_map(entries: &[(FuKind, u32)]) -> BTreeMap<FuKind, u32> {
    entries.iter().copied().collect()
}

impl CoreModel {
    /// Out-of-order dual-issue-class big core (Cortex-A72-like, 16 nm).
    pub fn cortex_a72() -> Self {
        CoreModel {
            name: "Cortex-A72",
            isa: Isa::ArmV8,
            issue_width: 3,
            out_of_order: true,
            window: 64,
            fu_counts: fu_map(&[
                (FuKind::Alu, 2),
                (FuKind::Mul, 1),
                (FuKind::Div, 1),
                (FuKind::Fpu, 2),
                (FuKind::FpDiv, 1),
                (FuKind::SimdUnit, 2),
                (FuKind::LoadStore, 2),
                (FuKind::BranchUnit, 1),
            ]),
            idle_current: 0.25,
            current_scale: 0.18,
        }
    }

    /// In-order dual-issue little core (Cortex-A53-like, 16 nm).
    pub fn cortex_a53() -> Self {
        CoreModel {
            name: "Cortex-A53",
            isa: Isa::ArmV8,
            issue_width: 2,
            out_of_order: false,
            window: 0,
            fu_counts: fu_map(&[
                (FuKind::Alu, 2),
                (FuKind::Mul, 1),
                (FuKind::Div, 1),
                (FuKind::Fpu, 1),
                (FuKind::FpDiv, 1),
                (FuKind::SimdUnit, 1),
                (FuKind::LoadStore, 1),
                (FuKind::BranchUnit, 1),
            ]),
            idle_current: 0.12,
            current_scale: 0.15,
        }
    }

    /// Out-of-order desktop core (AMD Athlon II-like, 45 nm).
    pub fn athlon_ii() -> Self {
        CoreModel {
            name: "Athlon II",
            isa: Isa::X86_64,
            issue_width: 3,
            out_of_order: true,
            window: 72,
            fu_counts: fu_map(&[
                (FuKind::Alu, 3),
                (FuKind::Mul, 1),
                (FuKind::Div, 1),
                (FuKind::Fpu, 2),
                (FuKind::FpDiv, 1),
                (FuKind::SimdUnit, 2),
                (FuKind::LoadStore, 2),
                (FuKind::BranchUnit, 1),
            ]),
            idle_current: 2.5,
            current_scale: 0.18,
        }
    }

    /// A GPU streaming-multiprocessor-like core (the paper's §10 future
    /// work extends the methodology to GPU PDNs, following EmerGPU/HPCA'15
    /// studies): wide in-order SIMD issue, many parallel lanes, high
    /// dynamic current per instruction.
    pub fn gpu_sm() -> Self {
        CoreModel {
            name: "GPU SM",
            isa: Isa::ArmV8, // lane ISA stands in for the shader ISA
            issue_width: 4,
            out_of_order: false,
            window: 0,
            fu_counts: fu_map(&[
                (FuKind::Alu, 4),
                (FuKind::Mul, 2),
                (FuKind::Div, 1),
                (FuKind::Fpu, 4),
                (FuKind::FpDiv, 2),
                (FuKind::SimdUnit, 4),
                (FuKind::LoadStore, 2),
                (FuKind::BranchUnit, 1),
            ]),
            idle_current: 0.6,
            current_scale: 0.5,
        }
    }

    /// Number of units of `kind` (0 when the kind is absent).
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        self.fu_counts.get(&kind).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_shapes() {
        let a72 = CoreModel::cortex_a72();
        let a53 = CoreModel::cortex_a53();
        let amd = CoreModel::athlon_ii();
        assert!(a72.out_of_order && !a53.out_of_order && amd.out_of_order);
        assert!(a72.issue_width > a53.issue_width || a72.window > 0);
        assert!(amd.idle_current > a72.idle_current, "desktop idles hotter");
        for m in [&a72, &a53, &amd] {
            assert!(m.fu_count(FuKind::Alu) >= 2, "{} needs >=2 ALUs", m.name);
            assert!(m.fu_count(FuKind::Div) >= 1);
            assert!(m.current_scale > 0.0);
        }
    }

    #[test]
    fn missing_fu_kind_reports_zero() {
        let mut m = CoreModel::cortex_a53();
        m.fu_counts.remove(&FuKind::Div);
        assert_eq!(m.fu_count(FuKind::Div), 0);
    }
}
