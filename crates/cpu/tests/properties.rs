//! Property-based tests for the CPU timing and functional models.

use emvolt_cpu::{execute, execute_with_faults, CoreModel, Cpu, FaultModel, SimConfig};
use emvolt_isa::{InstructionPool, Isa};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn quick_cfg() -> SimConfig {
    SimConfig {
        warmup_iterations: 3,
        min_duration: 0.5e-6,
        ..SimConfig::default()
    }
}

fn model_for(isa: Isa, big: bool) -> (CoreModel, f64) {
    match (isa, big) {
        (Isa::ArmV8, true) => (CoreModel::cortex_a72(), 1.2e9),
        (Isa::ArmV8, false) => (CoreModel::cortex_a53(), 950e6),
        (Isa::X86_64, _) => (CoreModel::athlon_ii(), 3.1e9),
    }
}

fn arb_isa() -> impl Strategy<Value = Isa> {
    prop_oneof![Just(Isa::ArmV8), Just(Isa::X86_64)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// IPC is positive and never exceeds the issue width; current never
    /// dips below the idle floor.
    #[test]
    fn timing_invariants(isa in arb_isa(), big in any::<bool>(), seed in any::<u64>()) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = pool.random_kernel(30, &mut rng);
        let (model, freq) = model_for(isa, big);
        let width = model.issue_width as f64;
        let idle = model.idle_current;
        let cpu = Cpu::new(model, freq);
        let out = cpu.simulate(&kernel, &quick_cfg()).unwrap();
        prop_assert!(out.ipc > 0.0 && out.ipc <= width + 1e-9, "ipc {}", out.ipc);
        prop_assert!(out.current.min() >= idle - 1e-12);
        prop_assert!(out.current.max().is_finite());
        prop_assert!(out.cycles_per_iteration >= 1.0);
    }

    /// loop_frequency * cycles_per_iteration == clock frequency.
    #[test]
    fn loop_frequency_identity(isa in arb_isa(), seed in any::<u64>()) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = pool.random_kernel(25, &mut rng);
        let (model, freq) = model_for(isa, true);
        let cpu = Cpu::new(model, freq);
        let out = cpu.simulate(&kernel, &quick_cfg()).unwrap();
        let reconstructed = out.loop_frequency() * out.cycles_per_iteration;
        prop_assert!((reconstructed - freq).abs() / freq < 1e-9);
    }

    /// The timing simulation is a pure function of (kernel, config).
    #[test]
    fn simulation_is_deterministic(isa in arb_isa(), seed in any::<u64>()) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = pool.random_kernel(20, &mut rng);
        let (model, freq) = model_for(isa, false);
        let cpu = Cpu::new(model, freq);
        let a = cpu.simulate(&kernel, &quick_cfg()).unwrap();
        let b = cpu.simulate(&kernel, &quick_cfg()).unwrap();
        prop_assert_eq!(a.current.samples(), b.current.samples());
        prop_assert_eq!(a.ipc, b.ipc);
    }

    /// Functional execution is deterministic, and fault injection with
    /// non-zero probability eventually perturbs the digest.
    #[test]
    fn functional_invariants(isa in arb_isa(), seed in any::<u64>()) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = pool.random_kernel(30, &mut rng);
        let golden = execute(&kernel, 60);
        prop_assert_eq!(golden, execute(&kernel, 60));
        let mut frng = StdRng::seed_from_u64(seed ^ 0xF417);
        let out = execute_with_faults(
            &kernel,
            60,
            FaultModel { per_instr_probability: 0.05 },
            &mut frng,
        );
        if out.faults_injected > 0 {
            prop_assert_ne!(out.digest, golden);
        }
    }

    /// Jitter changes timing but respects the same invariants, and a
    /// fixed jitter seed keeps the run deterministic.
    #[test]
    fn jitter_determinism(isa in arb_isa(), seed in any::<u64>(), jitter_seed in any::<u64>()) {
        let pool = InstructionPool::default_for(isa);
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = pool.random_kernel(20, &mut rng);
        let (model, freq) = model_for(isa, true);
        let cpu = Cpu::new(model, freq);
        let cfg = SimConfig {
            interference_interval_s: 200e-9,
            jitter_seed,
            ..quick_cfg()
        };
        let a = cpu.simulate(&kernel, &cfg).unwrap();
        let b = cpu.simulate(&kernel, &cfg).unwrap();
        prop_assert_eq!(a.current.samples(), b.current.samples());
        prop_assert!(a.ipc > 0.0);
    }
}
