//! Property tests for the reusable-scratch evaluation path.
//!
//! A [`DomainRunner`] carries its transient scratch across evaluations, so
//! a run's output must depend only on the kernel and load — never on
//! whatever the scratch held from the previous run. These properties pit a
//! reused runner against a fresh one over arbitrary kernel pairs and
//! demand bit-identical waveforms.

use emvolt_cpu::CoreModel;
use emvolt_isa::kernels::{burst_kernel, padded_sweep_kernel, resonant_stress_kernel};
use emvolt_isa::{Isa, Kernel};
use emvolt_platform::{a72_pdn, DomainRun, DomainRunner, RunConfig, VoltageDomain};
use proptest::prelude::*;

fn a72_domain() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

/// A small family of real kernels with varying loop length and current
/// profile, so consecutive runs differ in step count and amplitude.
#[derive(Debug, Clone, Copy)]
enum KernelSpec {
    Padded { extra_adds: usize },
    Burst { bursts: usize },
    Stress { simd_ops: usize, pad: usize },
}

impl KernelSpec {
    fn build(self) -> Kernel {
        match self {
            KernelSpec::Padded { extra_adds } => padded_sweep_kernel(Isa::ArmV8, extra_adds),
            KernelSpec::Burst { bursts } => burst_kernel(Isa::ArmV8, bursts),
            KernelSpec::Stress { simd_ops, pad } => {
                resonant_stress_kernel(Isa::ArmV8, simd_ops, pad)
            }
        }
    }
}

fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    prop_oneof![
        (0usize..24).prop_map(|extra_adds| KernelSpec::Padded { extra_adds }),
        (1usize..5).prop_map(|bursts| KernelSpec::Burst { bursts }),
        ((1usize..12), (1usize..20))
            .prop_map(|(simd_ops, pad)| KernelSpec::Stress { simd_ops, pad }),
    ]
}

fn assert_runs_bit_identical(a: &DomainRun, b: &DomainRun) {
    assert_eq!(a.v_die.len(), b.v_die.len());
    assert_eq!(a.i_die.len(), b.i_die.len());
    for (x, y) in a.v_die.samples().iter().zip(b.v_die.samples()) {
        assert_eq!(x.to_bits(), y.to_bits(), "v_die diverged");
    }
    for (x, y) in a.i_die.samples().iter().zip(b.i_die.samples()) {
        assert_eq!(x.to_bits(), y.to_bits(), "i_die diverged");
    }
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
    assert_eq!(a.loop_frequency.to_bits(), b.loop_frequency.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Running kernel B after kernel A on a reused runner gives exactly
    /// the result a fresh runner gives for B: no state leaks through the
    /// transient scratch, the reused `DomainRun`, or the plan.
    #[test]
    fn reused_runner_matches_fresh_over_kernel_pairs(
        first in arb_kernel(),
        second in arb_kernel(),
    ) {
        let domain = a72_domain();
        let config = RunConfig::fast();
        let ka = first.build();
        let kb = second.build();

        // Reused path: one runner, one output buffer, A then B.
        let mut reused = DomainRunner::new(&domain, config.clone()).unwrap();
        let mut run = DomainRun::empty();
        reused.run_into(&ka, 1, &mut run).unwrap();
        reused.run_into(&kb, 1, &mut run).unwrap();

        // Fresh path: a brand-new runner sees only B.
        let mut fresh = DomainRunner::new(&domain, config).unwrap();
        let baseline = fresh.run(&kb, 1).unwrap();

        assert_runs_bit_identical(&run, &baseline);
    }

    /// Re-running the same kernel on the same runner is idempotent:
    /// evaluation N and evaluation N+1 are bit-identical.
    #[test]
    fn repeated_evaluation_is_idempotent(spec in arb_kernel()) {
        let domain = a72_domain();
        let kernel = spec.build();
        let mut runner = DomainRunner::new(&domain, RunConfig::fast()).unwrap();
        let mut first = DomainRun::empty();
        let mut second = DomainRun::empty();
        runner.run_into(&kernel, 1, &mut first).unwrap();
        runner.run_into(&kernel, 1, &mut second).unwrap();
        assert_runs_bit_identical(&first, &second);
    }
}
