//! A voltage domain: CPU cores sharing one PDN and one supply rail.

use crate::measure::{EmReading, MeasureScratch, SharedEmBench, SpectralChoice};
use emvolt_circuit::{
    BatchTransientScratch, KernelChoice, Stimulus, Trace, TransientConfig, TransientPlan,
    TransientScratch,
};
use emvolt_cpu::{CoreModel, Cpu, SimConfig, SimError};
use emvolt_isa::Kernel;
use emvolt_pdn::{Pdn, PdnParams};
use std::fmt;
use std::sync::Arc;

/// Error running a workload on a domain.
#[derive(Debug)]
pub enum DomainError {
    /// The CPU timing simulation failed.
    Sim(SimError),
    /// The PDN circuit analysis failed.
    Circuit(emvolt_circuit::CircuitError),
    /// More cores requested than are powered.
    TooManyLoadedCores {
        /// Requested loaded cores.
        requested: usize,
        /// Currently powered cores.
        active: usize,
    },
    /// DVFS request outside the domain's `(0, max]` frequency range.
    InvalidFrequency {
        /// Requested frequency, Hz.
        requested_hz: f64,
        /// Domain maximum, Hz.
        max_hz: f64,
    },
    /// Non-positive supply-voltage request.
    InvalidVoltage {
        /// Requested supply, volts.
        requested_v: f64,
    },
    /// Power-gating request outside `1..=core_count`.
    InvalidCoreCount {
        /// Requested active cores.
        requested: usize,
        /// Cores in the cluster.
        total: usize,
    },
    /// `run_sequence` called with no phases.
    EmptyPhaseList,
    /// A measurement backend failed outside the simulation itself (e.g.
    /// a missing recording during replay, or a trace-store I/O error).
    Backend(String),
    /// A campaign checkpoint could not be written, read, or applied
    /// (I/O failure, malformed snapshot, or a run-config fingerprint
    /// mismatch when resuming against a different chip/config).
    Checkpoint(String),
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Sim(e) => write!(f, "cpu simulation failed: {e}"),
            DomainError::Circuit(e) => write!(f, "pdn analysis failed: {e}"),
            DomainError::TooManyLoadedCores { requested, active } => {
                write!(f, "cannot load {requested} cores with {active} powered")
            }
            DomainError::InvalidFrequency {
                requested_hz,
                max_hz,
            } => {
                write!(f, "frequency {requested_hz} outside (0, {max_hz}]")
            }
            DomainError::InvalidVoltage { requested_v } => {
                write!(f, "voltage {requested_v} must be positive")
            }
            DomainError::InvalidCoreCount { requested, total } => {
                write!(f, "active cores {requested} outside 1..={total}")
            }
            DomainError::EmptyPhaseList => write!(f, "run_sequence needs at least one phase"),
            DomainError::Backend(msg) => write!(f, "measurement backend error: {msg}"),
            DomainError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for DomainError {}

impl From<SimError> for DomainError {
    fn from(e: SimError) -> Self {
        DomainError::Sim(e)
    }
}

impl From<emvolt_circuit::CircuitError> for DomainError {
    fn from(e: emvolt_circuit::CircuitError) -> Self {
        DomainError::Circuit(e)
    }
}

/// Controls the physics fidelity of a domain run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// CPU timing-simulation settings.
    pub sim: SimConfig,
    /// PDN integration step in seconds.
    pub pdn_dt: f64,
    /// Recorded PDN window in seconds (after warm-up).
    pub pdn_window: f64,
    /// PDN warm-up discarded before recording, in seconds.
    pub pdn_warmup: f64,
    /// Transient solver-kernel selection (LU back-substitution vs the
    /// precomputed state-space form). `Auto` picks the state-space kernel
    /// for small systems like the paper's PDNs.
    pub kernel: KernelChoice,
    /// How in-band measurements compute the received spectrum (full FFT
    /// vs band-limited Goertzel). Consumed by the backend/CLI layers when
    /// they build the measurement rig.
    pub spectral: SpectralChoice,
    /// Name of the runtime-dispatched SIMD level the hot kernels run on
    /// (`emvolt_simd::level().as_str()` at construction). Descriptive
    /// metadata only: results are bit-identical at every level, so this
    /// field is exempt from the record/replay fingerprint — replays
    /// recorded on a different host stay valid.
    pub simd: &'static str,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sim: SimConfig {
                interference_interval_s: 250e-9,
                ..SimConfig::default()
            },
            pdn_dt: 0.25e-9,
            pdn_window: 4e-6,
            pdn_warmup: 2e-6,
            kernel: KernelChoice::default(),
            spectral: SpectralChoice::default(),
            simd: emvolt_simd::level().as_str(),
        }
    }
}

impl RunConfig {
    /// A faster, lower-resolution configuration for GA inner loops.
    pub fn fast() -> Self {
        RunConfig {
            sim: SimConfig {
                warmup_iterations: 5,
                min_duration: 2e-6,
                interference_interval_s: 250e-9,
                ..SimConfig::default()
            },
            pdn_dt: 0.5e-9,
            pdn_window: 2e-6,
            pdn_warmup: 1e-6,
            kernel: KernelChoice::default(),
            spectral: SpectralChoice::default(),
            simd: emvolt_simd::level().as_str(),
        }
    }
}

/// Result of running a workload on a domain.
#[derive(Debug, Clone)]
pub struct DomainRun {
    /// Die-voltage waveform.
    pub v_die: Trace,
    /// Die-current waveform (through the package inductance).
    pub i_die: Trace,
    /// Per-core IPC of the workload.
    pub ipc: f64,
    /// Cycles per loop iteration.
    pub cycles_per_iteration: f64,
    /// Loop frequency in Hz.
    pub loop_frequency: f64,
    /// Nominal supply during the run.
    pub supply_v: f64,
}

impl DomainRun {
    /// A placeholder run for [`DomainRunner::run_into`] to fill; reusing
    /// one across evaluations keeps the trace buffers' capacity.
    pub fn empty() -> Self {
        DomainRun {
            v_die: Trace::from_samples(1.0, Vec::new()),
            i_die: Trace::from_samples(1.0, Vec::new()),
            ipc: 0.0,
            cycles_per_iteration: 0.0,
            loop_frequency: 0.0,
            supply_v: 0.0,
        }
    }

    /// Maximum droop below the supply, in volts.
    pub fn max_droop(&self) -> f64 {
        self.v_die.max_droop_below(self.supply_v)
    }

    /// Peak-to-peak voltage noise, in volts.
    pub fn peak_to_peak(&self) -> f64 {
        self.v_die.peak_to_peak()
    }
}

/// One voltage domain: `core_count` identical cores on a shared PDN,
/// with DVFS, undervolting and per-core power gating — the control
/// surface the paper drives through the Juno SCP / AMD Overdrive.
#[derive(Debug, Clone)]
pub struct VoltageDomain {
    name: String,
    core_model: CoreModel,
    pdn_params: PdnParams,
    freq_hz: f64,
    max_freq_hz: f64,
    supply_v: f64,
    active_cores: usize,
}

impl VoltageDomain {
    /// Creates a domain with every core powered, at maximum frequency and
    /// nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if `max_freq_hz` is not positive.
    pub fn new(
        name: impl Into<String>,
        core_model: CoreModel,
        pdn_params: PdnParams,
        max_freq_hz: f64,
    ) -> Self {
        assert!(max_freq_hz > 0.0, "frequency must be positive");
        let supply_v = pdn_params.v_nominal;
        let active_cores = pdn_params.die_capacitance.core_count;
        VoltageDomain {
            name: name.into(),
            core_model,
            pdn_params,
            freq_hz: max_freq_hz,
            max_freq_hz,
            supply_v,
            active_cores,
        }
    }

    /// Domain name (e.g. `"A72"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The core microarchitecture.
    pub fn core_model(&self) -> &CoreModel {
        &self.core_model
    }

    /// The PDN parameter set.
    pub fn pdn_params(&self) -> &PdnParams {
        &self.pdn_params
    }

    /// Current clock frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.freq_hz
    }

    /// Maximum clock frequency in Hz.
    pub fn max_frequency(&self) -> f64 {
        self.max_freq_hz
    }

    /// Sets the clock (DVFS).
    ///
    /// # Panics
    ///
    /// Panics for non-positive frequencies or above-maximum requests;
    /// [`VoltageDomain::try_set_frequency`] is the fallible form for
    /// requests that originate outside the program (CLI flags, traces).
    pub fn set_frequency(&mut self, hz: f64) {
        if let Err(e) = self.try_set_frequency(hz) {
            panic!("{e}");
        }
    }

    /// Fallible DVFS: rejects requests outside `(0, max]` instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::InvalidFrequency`] for out-of-range `hz`.
    pub fn try_set_frequency(&mut self, hz: f64) -> Result<(), DomainError> {
        if !(hz > 0.0 && hz <= self.max_freq_hz) {
            return Err(DomainError::InvalidFrequency {
                requested_hz: hz,
                max_hz: self.max_freq_hz,
            });
        }
        self.freq_hz = hz;
        Ok(())
    }

    /// Supply voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.supply_v
    }

    /// Sets the supply voltage (undervolting for V_MIN tests).
    ///
    /// # Panics
    ///
    /// Panics for non-positive voltages;
    /// [`VoltageDomain::try_set_voltage`] is the fallible form.
    pub fn set_voltage(&mut self, volts: f64) {
        if let Err(e) = self.try_set_voltage(volts) {
            panic!("{e}");
        }
    }

    /// Fallible undervolting: rejects non-positive supplies instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::InvalidVoltage`] for non-positive `volts`.
    pub fn try_set_voltage(&mut self, volts: f64) -> Result<(), DomainError> {
        // `<=` alone would accept NaN; an explicit NaN check keeps the
        // guard total.
        if volts.is_nan() || volts <= 0.0 {
            return Err(DomainError::InvalidVoltage { requested_v: volts });
        }
        self.supply_v = volts;
        Ok(())
    }

    /// Number of powered cores.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Total cores in the cluster.
    pub fn core_count(&self) -> usize {
        self.pdn_params.die_capacitance.core_count
    }

    /// Power-gates the cluster down to `active` cores (affects die
    /// capacitance and therefore the first-order resonance, §6).
    ///
    /// # Panics
    ///
    /// Panics when `active` is zero or exceeds the cluster size;
    /// [`VoltageDomain::try_power_gate`] is the fallible form for
    /// requests that originate outside the program (e.g. `--cores`).
    pub fn power_gate(&mut self, active: usize) {
        if let Err(e) = self.try_power_gate(active) {
            panic!("{e}");
        }
    }

    /// Fallible power gating: rejects counts outside `1..=core_count`
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::InvalidCoreCount`] for out-of-range
    /// `active`.
    pub fn try_power_gate(&mut self, active: usize) -> Result<(), DomainError> {
        if !(1..=self.core_count()).contains(&active) {
            return Err(DomainError::InvalidCoreCount {
                requested: active,
                total: self.core_count(),
            });
        }
        self.active_cores = active;
        Ok(())
    }

    /// Analytic first-order resonance at the current gating state.
    pub fn expected_resonance_hz(&self) -> f64 {
        self.pdn_params.first_order_resonance_hz(self.active_cores)
    }

    /// Builds the PDN for the current gating/voltage state.
    pub fn build_pdn(&self) -> Pdn {
        let mut params = self.pdn_params.clone();
        params.v_nominal = self.supply_v;
        Pdn::new(params, self.active_cores)
    }

    /// Runs `kernel` simultaneously on `loaded_cores` cores (the paper
    /// runs one instance per core); the remaining powered cores idle.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError`] for invalid core counts or failed
    /// simulations.
    pub fn run(
        &self,
        kernel: &Kernel,
        loaded_cores: usize,
        config: &RunConfig,
    ) -> Result<DomainRun, DomainError> {
        DomainRunner::new(self, config.clone())?.run(kernel, loaded_cores)
    }

    /// Runs the domain with all powered cores idle.
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures.
    pub fn run_idle(&self, config: &RunConfig) -> Result<DomainRun, DomainError> {
        DomainRunner::new(self, config.clone())?.run_idle()
    }

    /// Runs a sequence of phases — e.g. a workload alternating between a
    /// compute-bound and a memory-bound kernel — and returns one
    /// concatenated run. Each phase contributes `config.pdn_window`
    /// seconds of trace; phase boundaries are where time-resolved views
    /// (spectrograms, emergency rates) show the noise signature change.
    ///
    /// # Errors
    ///
    /// Propagates per-phase failures; fails on an empty phase list.
    pub fn run_sequence(
        &self,
        phases: &[(&Kernel, usize)],
        config: &RunConfig,
    ) -> Result<DomainRun, DomainError> {
        if phases.is_empty() {
            return Err(DomainError::EmptyPhaseList);
        }
        let mut v_all: Vec<f64> = Vec::new();
        let mut i_all: Vec<f64> = Vec::new();
        let mut ipc_acc = 0.0;
        let mut last = None;
        for &(kernel, loaded) in phases {
            let run = self.run(kernel, loaded, config)?;
            v_all.extend_from_slice(run.v_die.samples());
            i_all.extend_from_slice(run.i_die.samples());
            ipc_acc += run.ipc;
            last = Some(run);
        }
        let last = last.expect("non-empty phases");
        Ok(DomainRun {
            v_die: Trace::from_samples(config.pdn_dt, v_all),
            i_die: Trace::from_samples(config.pdn_dt, i_all),
            ipc: ipc_acc / phases.len() as f64,
            cycles_per_iteration: last.cycles_per_iteration,
            loop_frequency: last.loop_frequency,
            supply_v: self.supply_v,
        })
    }

    /// Drives the PDN with an arbitrary load waveform (used by the SCL
    /// block and by tests).
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures.
    pub fn run_pdn_with_load(
        &self,
        load: Stimulus,
        config: &RunConfig,
    ) -> Result<(Trace, Trace), DomainError> {
        DomainRunner::new(self, config.clone())?.run_pdn_with_load(load)
    }
}

/// Reusable execution context for repeated runs of one [`VoltageDomain`]
/// under one [`RunConfig`] — the hot path of a GA campaign, where the same
/// domain is evaluated thousands of times with different kernels.
///
/// [`VoltageDomain::run`] pays per call for a fresh [`Cpu`], a rebuilt PDN
/// netlist and an LU refactorization of the MNA system matrix. A runner
/// does that setup once at construction and reuses it, producing
/// bit-identical results (the cached plan holds the same factorization a
/// fresh run would compute).
///
/// The runner snapshots the domain's control state (frequency, voltage,
/// gating) at construction; build a new runner after changing any of
/// them. Each runner is independently usable from its own thread.
#[derive(Debug, Clone)]
pub struct DomainRunner {
    domain: VoltageDomain,
    config: RunConfig,
    cpu: Cpu,
    pdn: Pdn,
    plan: TransientPlan,
    transient_cfg: TransientConfig,
    scratch: TransientScratch,
    telemetry: emvolt_obs::Telemetry,
    /// Per-cycle issue-slot occupancy from the last traced core sim;
    /// only filled while the telemetry handle has a live wave sink.
    occupancy: Vec<u32>,
}

impl DomainRunner {
    /// Builds the runner: constructs the PDN once, LU-factors its MNA
    /// matrix once and instantiates the CPU timing model once.
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures (e.g. an invalid `pdn_dt`).
    pub fn new(domain: &VoltageDomain, config: RunConfig) -> Result<Self, DomainError> {
        DomainRunner::new_with(domain, config, emvolt_obs::Telemetry::noop())
    }

    /// Like [`DomainRunner::new`], charging setup and every subsequent
    /// run through this runner to `telemetry` (LU factorizations at
    /// construction, solver counters and spans per transient).
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures (e.g. an invalid `pdn_dt`).
    pub fn new_with(
        domain: &VoltageDomain,
        config: RunConfig,
        telemetry: emvolt_obs::Telemetry,
    ) -> Result<Self, DomainError> {
        let pdn = domain.build_pdn();
        let plan = pdn.plan_transient_kernel_with(config.pdn_dt, config.kernel, &telemetry)?;
        let transient_cfg =
            TransientConfig::new(config.pdn_dt, config.pdn_warmup + config.pdn_window)
                .with_warmup(config.pdn_warmup);
        let cpu = Cpu::new(domain.core_model.clone(), domain.freq_hz);
        let mut scratch = TransientScratch::new();
        scratch.set_telemetry(telemetry.clone());
        Ok(DomainRunner {
            domain: domain.clone(),
            config,
            cpu,
            pdn,
            plan,
            transient_cfg,
            scratch,
            telemetry,
            occupancy: Vec::new(),
        })
    }

    /// Swaps the telemetry handle charged by subsequent runs.
    pub fn set_telemetry(&mut self, telemetry: emvolt_obs::Telemetry) {
        self.scratch.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The domain state this runner was built from.
    pub fn domain(&self) -> &VoltageDomain {
        &self.domain
    }

    /// The run configuration this runner was built for.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Whether this runner's cached plan can serve the batched lane-major
    /// paths ([`DomainRunner::run_batch_into`] and
    /// [`DomainRunner::run_measure_batch_into`]): true when the plan
    /// embeds the state-space kernel (`RunConfig::kernel` of
    /// `StateSpace`, or `Auto` on a small enough MNA system).
    pub fn supports_batch(&self) -> bool {
        self.plan.uses_state_kernel()
    }

    /// Retunes the runner's clock (DVFS) without rebuilding the PDN or
    /// refactoring its matrices — frequency only enters through the CPU
    /// timing model, so results stay bit-identical to a runner freshly
    /// built at the new frequency.
    ///
    /// # Panics
    ///
    /// Panics for non-positive frequencies or above-maximum requests;
    /// [`DomainRunner::try_set_frequency`] is the fallible form.
    pub fn set_frequency(&mut self, hz: f64) {
        if let Err(e) = self.try_set_frequency(hz) {
            panic!("{e}");
        }
    }

    /// Fallible form of [`DomainRunner::set_frequency`].
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::InvalidFrequency`] for out-of-range `hz`;
    /// on error the runner is left unchanged.
    pub fn try_set_frequency(&mut self, hz: f64) -> Result<(), DomainError> {
        self.domain.try_set_frequency(hz)?;
        self.cpu = Cpu::new(self.domain.core_model.clone(), hz);
        Ok(())
    }

    /// Runs `kernel` on `loaded_cores` cores; see [`VoltageDomain::run`].
    ///
    /// # Errors
    ///
    /// Returns [`DomainError`] for invalid core counts or failed
    /// simulations.
    pub fn run(&mut self, kernel: &Kernel, loaded_cores: usize) -> Result<DomainRun, DomainError> {
        let mut out = DomainRun::empty();
        self.run_into(kernel, loaded_cores, &mut out)?;
        Ok(out)
    }

    /// Runs `kernel` into an existing [`DomainRun`], reusing its trace
    /// buffers and the runner's transient scratch — the allocation-lean
    /// GA hot path. Bit-identical to [`DomainRunner::run`].
    ///
    /// # Errors
    ///
    /// Returns [`DomainError`] for invalid core counts or failed
    /// simulations; on error `out` is left unchanged.
    pub fn run_into(
        &mut self,
        kernel: &Kernel,
        loaded_cores: usize,
        out: &mut DomainRun,
    ) -> Result<(), DomainError> {
        let (sim, load) = self.simulate_load(kernel, loaded_cores)?;
        if self.telemetry.wave_enabled() {
            // One epoch per run keeps the digital (per-cycle) and analog
            // (per-pdn_dt) signals on a shared, monotonically advancing
            // time axis; the transient below emits the pdn.* waves under
            // the same epoch.
            self.telemetry.wave_epoch();
            self.emit_cpu_waves(&sim);
        }
        self.pdn.set_load(load);
        let die = self
            .pdn
            .transient_scoped(&self.plan, &self.transient_cfg, &mut self.scratch)?;
        out.v_die.refill(die.dt(), die.start_time(), die.v_die());
        out.i_die.refill(die.dt(), die.start_time(), die.i_die());
        fill_sim_fields(out, &sim, self.domain.supply_v);
        Ok(())
    }

    /// Runs several `(kernel, loaded_cores)` candidates through one
    /// lock-step batched transient, filling one [`DomainRun`] per entry.
    /// Requires a state-space plan (`RunConfig::kernel` of `Auto` or
    /// `StateSpace`); each output is bit-identical to the corresponding
    /// [`DomainRunner::run_into`] call.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError`] for invalid core counts, failed
    /// simulations, an LU-only plan, an empty batch, or when `outs` is
    /// shorter than `entries`.
    pub fn run_batch_into(
        &mut self,
        entries: &[(&Kernel, usize)],
        outs: &mut [DomainRun],
        batch: &mut BatchTransientScratch,
    ) -> Result<(), DomainError> {
        if outs.len() < entries.len() {
            return Err(DomainError::Backend(format!(
                "run_batch_into: {} outputs for {} entries",
                outs.len(),
                entries.len()
            )));
        }
        let mut sims: Vec<emvolt_cpu::SimOutput> = Vec::with_capacity(entries.len());
        let mut loads = Vec::with_capacity(entries.len());
        for (i, &(kernel, loaded_cores)) in entries.iter().enumerate() {
            // Identical-kernel dedupe: the cycle-level core sim depends
            // only on the kernel, and GA populations repeat genomes
            // (elites, clones that mutation left untouched) — reuse the
            // first matching lane's output instead of re-simulating.
            // Bit-identical: `Cpu::simulate` is a pure function of the
            // kernel.
            let dup = entries[..i]
                .iter()
                .position(|&(k, _)| std::ptr::eq(k, kernel) || k == kernel);
            let (sim, load) = match dup {
                Some(j) => {
                    let sim = sims[j].clone();
                    let load = self.cluster_load(&sim, loaded_cores)?;
                    (sim, load)
                }
                None => self.simulate_load(kernel, loaded_cores)?,
            };
            sims.push(sim);
            loads.push(load);
        }
        self.pdn
            .transient_batch(&self.plan, &self.transient_cfg, &loads, batch)?;
        for (i, (out, sim)) in outs.iter_mut().zip(&sims).enumerate() {
            let die = self.pdn.die_lane(batch, i);
            out.v_die.refill(die.dt(), die.start_time(), die.v_die());
            out.i_die.refill(die.dt(), die.start_time(), die.i_die());
            fill_sim_fields(out, sim, self.domain.supply_v);
        }
        Ok(())
    }

    /// Runs several candidates through one batched transient and measures
    /// every lane in one batched in-band pass: the full lane-major
    /// evaluation chain (kernel -> current -> PDN -> radiation ->
    /// analyzer) behind a single call. Lane `l` draws its measurement
    /// noise from `seeds[l]`, so reading `l` is bit-identical to a serial
    /// [`DomainRunner::run_into`] followed by
    /// [`SharedEmBench::measure_in_band_seeded_with`] with that seed.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError`] for the same conditions as
    /// [`DomainRunner::run_batch_into`], plus a seed slice shorter than
    /// `entries`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_measure_batch_into(
        &mut self,
        entries: &[(&Kernel, usize)],
        lo: f64,
        hi: f64,
        sweeps: usize,
        seeds: &[u64],
        shared: &SharedEmBench,
        outs: &mut [DomainRun],
        batch: &mut BatchTransientScratch,
        measure: &mut MeasureScratch,
    ) -> Result<Vec<EmReading>, DomainError> {
        if seeds.len() < entries.len() {
            return Err(DomainError::Backend(format!(
                "run_measure_batch_into: {} seeds for {} entries",
                seeds.len(),
                entries.len()
            )));
        }
        self.run_batch_into(entries, outs, batch)?;
        let refs: Vec<&DomainRun> = outs[..entries.len()].iter().collect();
        Ok(shared.measure_in_band_batch_seeded_with(&refs, lo, hi, sweeps, seeds, measure))
    }

    /// Simulates `kernel` on `loaded_cores` cores and builds the total
    /// cluster load waveform (loaded cores plus idle remainder) — the
    /// shared front half of [`DomainRunner::run_into`] and
    /// [`DomainRunner::run_batch_into`].
    fn simulate_load(
        &mut self,
        kernel: &Kernel,
        loaded_cores: usize,
    ) -> Result<(emvolt_cpu::SimOutput, Stimulus), DomainError> {
        let active = self.domain.active_cores;
        if loaded_cores > active {
            return Err(DomainError::TooManyLoadedCores {
                requested: loaded_cores,
                active,
            });
        }
        let sim = if self.telemetry.wave_enabled() {
            self.cpu
                .simulate_traced(kernel, &self.config.sim, &mut self.occupancy)?
        } else {
            self.cpu.simulate(kernel, &self.config.sim)?
        };
        let load = self.cluster_load(&sim, loaded_cores)?;
        Ok((sim, load))
    }

    /// Emits the digital-side waveforms of the last traced core sim —
    /// per-cycle core current and issue-slot occupancy — decimated by the
    /// sink's stride. Only called when the wave sink is live.
    fn emit_cpu_waves(&self, sim: &emvolt_cpu::SimOutput) {
        let tel = &self.telemetry;
        let stride = tel.wave_stride();
        let i_id = tel.wave_register("cpu.i_core", emvolt_obs::WaveKind::Real);
        for (t, v) in sim.current.decimated(stride).iter() {
            tel.wave_real(i_id, t, v);
        }
        let s_id = tel.wave_register("cpu.issue_slots", emvolt_obs::WaveKind::Int);
        let dt = sim.current.dt();
        let t0 = sim.current.start_time();
        for (k, &slots) in self.occupancy.iter().step_by(stride).enumerate() {
            tel.wave_int(s_id, t0 + (k * stride) as f64 * dt, u64::from(slots));
        }
    }

    /// Scales one core's simulated draw to the whole cluster: loaded
    /// cores plus the idle remainder — the load-construction back half of
    /// [`DomainRunner::simulate_load`], reused when a batch lane shares
    /// another lane's core sim.
    fn cluster_load(
        &self,
        sim: &emvolt_cpu::SimOutput,
        loaded_cores: usize,
    ) -> Result<Stimulus, DomainError> {
        let active = self.domain.active_cores;
        if loaded_cores > active {
            return Err(DomainError::TooManyLoadedCores {
                requested: loaded_cores,
                active,
            });
        }
        let idle_extra = (active - loaded_cores) as f64 * self.domain.core_model.idle_current;
        let total: Vec<f64> = sim
            .current
            .samples()
            .iter()
            .map(|&i| i * loaded_cores as f64 + idle_extra)
            .collect();
        Ok(Stimulus::Samples {
            dt: sim.current.dt(),
            values: Arc::from(total),
            repeat: true,
        })
    }

    /// Runs with all powered cores idle; see [`VoltageDomain::run_idle`].
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures.
    pub fn run_idle(&mut self) -> Result<DomainRun, DomainError> {
        let idle = self.domain.active_cores as f64 * self.domain.core_model.idle_current;
        let (v_die, i_die) = self.run_pdn_with_load(Stimulus::Dc(idle))?;
        Ok(DomainRun {
            v_die,
            i_die,
            ipc: 0.0,
            cycles_per_iteration: f64::INFINITY,
            loop_frequency: 0.0,
            supply_v: self.domain.supply_v,
        })
    }

    /// Drives the cached PDN with an arbitrary load waveform, reusing the
    /// prebuilt transient plan and scratch.
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures.
    pub fn run_pdn_with_load(&mut self, load: Stimulus) -> Result<(Trace, Trace), DomainError> {
        self.pdn.set_load(load);
        let die = self
            .pdn
            .transient_scoped(&self.plan, &self.transient_cfg, &mut self.scratch)?;
        Ok((
            Trace::with_start(die.dt(), die.start_time(), die.v_die().to_vec()),
            Trace::with_start(die.dt(), die.start_time(), die.i_die().to_vec()),
        ))
    }
}

/// Copies the CPU-simulation half of a [`DomainRun`] from a finished
/// timing simulation.
fn fill_sim_fields(out: &mut DomainRun, sim: &emvolt_cpu::SimOutput, supply_v: f64) {
    out.ipc = sim.ipc;
    out.cycles_per_iteration = sim.cycles_per_iteration;
    out.loop_frequency = sim.loop_frequency();
    out.supply_v = supply_v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_isa::{kernels::sweep_kernel, Isa};
    use emvolt_pdn::PdnParams;

    fn domain() -> VoltageDomain {
        VoltageDomain::new(
            "test",
            CoreModel::cortex_a72(),
            PdnParams::generic_mobile(),
            1.2e9,
        )
    }

    #[test]
    fn run_produces_voltage_noise() {
        let d = domain();
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast())
            .unwrap();
        assert!(run.max_droop() > 0.0, "droop {}", run.max_droop());
        assert!(run.peak_to_peak() > 1e-4);
        assert!(run.ipc > 0.0);
    }

    #[test]
    fn traced_runner_emits_cpu_and_pdn_waves_without_perturbing_results() {
        use emvolt_obs::{validate_vcd_text, NoopRecorder, Telemetry, WaveDb};
        use std::sync::Arc;

        let d = domain();
        let k = sweep_kernel(Isa::ArmV8);
        let baseline = d.run(&k, 2, &RunConfig::fast()).unwrap();

        let db = Arc::new(WaveDb::new());
        let tel = Telemetry::with_waves(Arc::new(NoopRecorder), db.clone());
        let mut runner = DomainRunner::new_with(&d, RunConfig::fast(), tel).unwrap();
        let traced = runner.run(&k, 2).unwrap();

        // Tracing must not change the physics.
        for (a, b) in baseline.v_die.samples().iter().zip(traced.v_die.samples()) {
            assert_eq!(a.to_bits(), b.to_bits(), "tracing perturbed v_die");
        }
        assert_eq!(baseline.ipc, traced.ipc);

        let vcd = db.to_vcd_string();
        for signal in [
            " i_core $end",
            " issue_slots $end",
            " v_die $end",
            " i_pkg $end",
        ] {
            assert!(vcd.contains(signal), "missing {signal:?} in:\n{vcd}");
        }
        validate_vcd_text(&vcd).expect("runner VCD must validate");

        // A second run extends the same database monotonically.
        let before = db.samples_written();
        runner.run(&k, 1).unwrap();
        assert!(db.samples_written() > before);
        validate_vcd_text(&db.to_vcd_string()).expect("two-run VCD must validate");
    }

    #[test]
    fn more_loaded_cores_more_noise() {
        let d = domain();
        let k = sweep_kernel(Isa::ArmV8);
        let one = d.run(&k, 1, &RunConfig::fast()).unwrap();
        let two = d.run(&k, 2, &RunConfig::fast()).unwrap();
        assert!(
            two.peak_to_peak() > one.peak_to_peak(),
            "2-core p2p {} vs 1-core {}",
            two.peak_to_peak(),
            one.peak_to_peak()
        );
    }

    #[test]
    fn idle_is_quiet() {
        let d = domain();
        let idle = d.run_idle(&RunConfig::fast()).unwrap();
        let busy = d
            .run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast())
            .unwrap();
        assert!(idle.peak_to_peak() < busy.peak_to_peak() / 5.0);
    }

    #[test]
    fn power_gating_raises_expected_resonance() {
        let mut d = domain();
        let f2 = d.expected_resonance_hz();
        d.power_gate(1);
        let f1 = d.expected_resonance_hz();
        assert!(f1 > f2);
    }

    #[test]
    fn loading_more_than_active_fails() {
        let mut d = domain();
        d.power_gate(1);
        let err = d.run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast());
        assert!(matches!(err, Err(DomainError::TooManyLoadedCores { .. })));
    }

    #[test]
    fn undervolting_shifts_dc_level() {
        let mut d = domain();
        d.set_voltage(0.9);
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 1, &RunConfig::fast())
            .unwrap();
        assert!((run.v_die.mean() - 0.9).abs() < 0.02);
        assert_eq!(run.supply_v, 0.9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn dvfs_respects_maximum() {
        let mut d = domain();
        d.set_frequency(2.0e9);
    }

    #[test]
    fn fallible_control_setters_reject_bad_requests() {
        let mut d = domain();
        assert!(matches!(
            d.try_set_frequency(2.0e9),
            Err(DomainError::InvalidFrequency { .. })
        ));
        assert!(matches!(
            d.try_set_voltage(-0.1),
            Err(DomainError::InvalidVoltage { .. })
        ));
        assert!(matches!(
            d.try_power_gate(0),
            Err(DomainError::InvalidCoreCount { .. })
        ));
        assert!(matches!(
            d.try_power_gate(99),
            Err(DomainError::InvalidCoreCount { .. })
        ));
        // State is untouched by rejected requests and updated by valid
        // ones.
        assert_eq!(d.frequency(), 1.2e9);
        d.try_set_frequency(0.6e9).unwrap();
        d.try_set_voltage(0.9).unwrap();
        d.try_power_gate(1).unwrap();
        assert_eq!(d.frequency(), 0.6e9);
        assert_eq!(d.voltage(), 0.9);
        assert_eq!(d.active_cores(), 1);
    }

    #[test]
    fn runner_try_set_frequency_leaves_state_on_error() {
        let d = domain();
        let mut runner = DomainRunner::new(&d, RunConfig::fast()).unwrap();
        assert!(runner.try_set_frequency(9.9e9).is_err());
        assert_eq!(runner.domain().frequency(), 1.2e9);
        runner.try_set_frequency(0.8e9).unwrap();
        assert_eq!(runner.domain().frequency(), 0.8e9);
    }

    /// A reused runner must reproduce per-call `VoltageDomain::run`
    /// bit-for-bit across different kernels — this equality is what lets
    /// the GA batch path share one runner per thread.
    #[test]
    fn runner_reuse_is_bit_identical_to_fresh_runs() {
        use emvolt_isa::kernels::resonant_stress_kernel;
        let d = domain();
        let cfg = RunConfig::fast();
        let mut runner = DomainRunner::new(&d, cfg.clone()).unwrap();
        let kernels = [
            sweep_kernel(Isa::ArmV8),
            resonant_stress_kernel(Isa::ArmV8, 12, 17),
            sweep_kernel(Isa::ArmV8),
        ];
        for k in &kernels {
            let fresh = d.run(k, 2, &cfg).unwrap();
            let reused = runner.run(k, 2).unwrap();
            assert_eq!(fresh.v_die.samples(), reused.v_die.samples());
            assert_eq!(fresh.i_die.samples(), reused.i_die.samples());
            assert_eq!(fresh.ipc, reused.ipc);
        }
        let fresh_idle = d.run_idle(&cfg).unwrap();
        let reused_idle = runner.run_idle().unwrap();
        assert_eq!(fresh_idle.v_die.samples(), reused_idle.v_die.samples());
    }

    /// The batched path must agree bit-for-bit with serial `run_into` —
    /// the equality that lets GA evaluation step several candidates per
    /// lock-step transient without changing fitness values.
    #[test]
    fn batched_runs_match_serial_runs_bit_for_bit() {
        use emvolt_isa::kernels::{padded_sweep_kernel, resonant_stress_kernel};
        let d = domain();
        let cfg = RunConfig::fast();
        let mut runner = DomainRunner::new(&d, cfg).unwrap();
        let kernels = [
            sweep_kernel(Isa::ArmV8),
            resonant_stress_kernel(Isa::ArmV8, 12, 17),
            padded_sweep_kernel(Isa::ArmV8, 9),
        ];
        let entries: Vec<(&emvolt_isa::Kernel, usize)> =
            kernels.iter().zip([2usize, 1, 2]).collect();

        let mut batch = BatchTransientScratch::new();
        let mut outs = vec![DomainRun::empty(); entries.len()];
        runner
            .run_batch_into(&entries, &mut outs, &mut batch)
            .unwrap();

        for (&(k, loaded), batched) in entries.iter().zip(&outs) {
            let serial = runner.run(k, loaded).unwrap();
            assert_eq!(serial.v_die.samples(), batched.v_die.samples());
            assert_eq!(serial.i_die.samples(), batched.i_die.samples());
            assert_eq!(serial.ipc, batched.ipc);
            assert_eq!(serial.loop_frequency, batched.loop_frequency);
        }
    }

    #[test]
    fn batched_runs_validate_inputs() {
        let d = domain();
        let mut runner = DomainRunner::new(&d, RunConfig::fast()).unwrap();
        let k = sweep_kernel(Isa::ArmV8);
        let mut batch = BatchTransientScratch::new();
        let mut outs = vec![DomainRun::empty()];
        // More entries than outputs.
        assert!(matches!(
            runner.run_batch_into(&[(&k, 1), (&k, 2)], &mut outs, &mut batch),
            Err(DomainError::Backend(_))
        ));
        // An LU-only plan cannot batch.
        let mut lu_cfg = RunConfig::fast();
        lu_cfg.kernel = KernelChoice::Lu;
        let mut lu_runner = DomainRunner::new(&d, lu_cfg).unwrap();
        assert!(lu_runner
            .run_batch_into(&[(&k, 1)], &mut outs, &mut batch)
            .is_err());
    }

    #[test]
    fn runner_snapshots_domain_control_state() {
        let mut d = domain();
        let runner = DomainRunner::new(&d, RunConfig::fast()).unwrap();
        d.set_voltage(0.9);
        // The runner keeps the state it was built from.
        assert_eq!(runner.domain().voltage(), 1.0);
        assert_eq!(d.voltage(), 0.9);
    }
}

#[cfg(test)]
mod sequence_tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::kernels::{resonant_stress_kernel, sweep_kernel};
    use emvolt_isa::Isa;

    fn domain() -> VoltageDomain {
        VoltageDomain::new(
            "A72",
            CoreModel::cortex_a72(),
            crate::boards::a72_pdn(),
            1.2e9,
        )
    }

    #[test]
    fn sequence_concatenates_phases() {
        let d = domain();
        let cfg = RunConfig::fast();
        let quiet = sweep_kernel(Isa::ArmV8);
        let loud = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let run = d.run_sequence(&[(&quiet, 1), (&loud, 2)], &cfg).unwrap();
        let single = d.run(&quiet, 1, &cfg).unwrap();
        assert_eq!(run.v_die.len(), 2 * single.v_die.len());
        // The loud phase dominates the worst droop of the combined run.
        let loud_only = d.run(&loud, 2, &cfg).unwrap();
        assert!((run.max_droop() - loud_only.max_droop()).abs() < 5e-3);
    }

    #[test]
    fn phase_change_is_visible_in_the_spectrogram() {
        use emvolt_dsp::{Spectrogram, Window};
        let d = domain();
        let cfg = RunConfig::fast();
        let quiet = sweep_kernel(Isa::ArmV8);
        let loud = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let run = d.run_sequence(&[(&quiet, 1), (&loud, 2)], &cfg).unwrap();
        let n = run.i_die.len();
        let sg = Spectrogram::of_samples(
            run.i_die.samples(),
            run.i_die.sample_rate(),
            n / 8,
            n / 8,
            Window::Hann,
        );
        let f_res = d.expected_resonance_hz();
        let track = sg.track(f_res);
        let early: f64 = track[..track.len() / 2].iter().sum();
        let late: f64 = track[track.len() / 2..].iter().sum();
        assert!(
            late > 3.0 * early,
            "resonant phase must light up the track: early {early}, late {late}"
        );
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let d = domain();
        assert!(matches!(
            d.run_sequence(&[], &RunConfig::fast()),
            Err(DomainError::EmptyPhaseList)
        ));
    }
}
