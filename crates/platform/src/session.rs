//! Workstation ↔ target orchestration (§3.2 of the paper).
//!
//! The paper's GA framework runs on a separate workstation: it ships each
//! individual's source over SSH, the target compiles and runs it, the
//! workstation drives the spectrum analyzer, then kills the binary. This
//! module reproduces that session protocol in-process — the GA loop is
//! transport-agnostic, and the session accounts — in simulated time —
//! for what each step would cost physically (compilation, deployment,
//! measurement, teardown), which is how the paper's "~15 hours for 60
//! generations" figure arises.

use crate::clock::SimClock;
use crate::domain::{DomainError, DomainRun, RunConfig, VoltageDomain};
use crate::measure::{EmBench, EmReading};
use emvolt_isa::Kernel;

/// Cost model of one orchestration step, in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionCosts {
    /// Shipping source to the target (SSH/scp).
    pub upload_s: f64,
    /// Compiling the individual on the target.
    pub compile_s: f64,
    /// Launching the binary and letting it reach steady state.
    pub launch_s: f64,
    /// One spectrum-analyzer sample.
    pub sample_s: f64,
    /// Terminating the binary.
    pub teardown_s: f64,
}

impl Default for SessionCosts {
    fn default() -> Self {
        SessionCosts {
            upload_s: 0.3,
            compile_s: 1.0,
            launch_s: 0.5,
            sample_s: 0.6,
            teardown_s: 0.2,
        }
    }
}

/// A target machine executing kernels: the abstraction the workstation
/// drives over SSH in the paper.
pub trait Target {
    /// Deploys and starts `kernel` on `loaded_cores` cores; returns the
    /// (simulated) steady-state run.
    ///
    /// # Errors
    ///
    /// Returns an error when the run cannot be simulated.
    fn launch(&self, kernel: &Kernel, loaded_cores: usize) -> Result<DomainRun, DomainError>;

    /// Target's display name.
    fn name(&self) -> &str;
}

/// Any [`VoltageDomain`] is directly usable as a target.
impl Target for VoltageDomain {
    fn launch(&self, kernel: &Kernel, loaded_cores: usize) -> Result<DomainRun, DomainError> {
        self.run(kernel, loaded_cores, &RunConfig::fast())
    }

    fn name(&self) -> &str {
        VoltageDomain::name(self)
    }
}

/// A measurement session: a workstation connected to one target and one
/// EM bench, with simulated campaign-time accounting.
#[derive(Debug)]
pub struct MeasurementSession<'a, T: Target> {
    target: &'a T,
    bench: EmBench,
    costs: SessionCosts,
    clock: SimClock,
    individuals_measured: usize,
}

impl<'a, T: Target> MeasurementSession<'a, T> {
    /// Opens a session against `target` (the "SSH connection").
    pub fn open(target: &'a T, bench: EmBench) -> Self {
        MeasurementSession {
            target,
            bench,
            costs: SessionCosts::default(),
            clock: SimClock::new(),
            individuals_measured: 0,
        }
    }

    /// Overrides the cost model.
    #[must_use]
    pub fn with_costs(mut self, costs: SessionCosts) -> Self {
        self.costs = costs;
        self
    }

    /// The full per-individual protocol: upload → compile → launch →
    /// measure `samples` → kill, returning the EM reading.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the target.
    pub fn measure_individual(
        &mut self,
        kernel: &Kernel,
        loaded_cores: usize,
        band: (f64, f64),
        samples: usize,
    ) -> Result<EmReading, DomainError> {
        let c = self.costs;
        self.clock.advance(c.upload_s + c.compile_s + c.launch_s);
        let run = self.target.launch(kernel, loaded_cores)?;
        let reading = self.bench.measure_in_band(&run, band.0, band.1, samples);
        self.clock
            .advance(samples as f64 * c.sample_s + c.teardown_s);
        self.individuals_measured += 1;
        Ok(reading)
    }

    /// Number of individuals measured so far.
    pub fn individuals_measured(&self) -> usize {
        self.individuals_measured
    }

    /// Accumulated simulated campaign time.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Consumes the session, returning the bench for reuse.
    pub fn close(self) -> EmBench {
        self.bench
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boards::a72_pdn;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{kernels::padded_sweep_kernel, Isa};

    fn domain() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    #[test]
    fn per_individual_cost_matches_the_paper() {
        let d = domain();
        let mut session = MeasurementSession::open(&d, EmBench::new(1));
        let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
        let _ = session
            .measure_individual(&kernel, 2, (50e6, 200e6), 30)
            .unwrap();
        // ~18 s of sampling plus a couple of seconds of orchestration.
        let t = session.clock().seconds();
        assert!((19.0..22.0).contains(&t), "per-individual cost {t} s");
        assert_eq!(session.individuals_measured(), 1);
    }

    #[test]
    fn campaign_scale_accounting() {
        // 60 generations x 50 individuals lands in the paper's ~15 h
        // ballpark.
        let d = domain();
        let mut session = MeasurementSession::open(&d, EmBench::new(2));
        let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
        // Measure a handful and extrapolate the cost linearly.
        for _ in 0..3 {
            let _ = session
                .measure_individual(&kernel, 2, (50e6, 200e6), 30)
                .unwrap();
        }
        let per_individual = session.clock().seconds() / 3.0;
        let campaign_hours = per_individual * 50.0 * 60.0 / 3600.0;
        assert!(
            (14.0..20.0).contains(&campaign_hours),
            "campaign estimate {campaign_hours} h"
        );
    }

    #[test]
    fn measurement_is_live() {
        let d = domain();
        let mut session = MeasurementSession::open(&d, EmBench::new(3));
        let strong = padded_sweep_kernel(Isa::ArmV8, 17);
        let weak = padded_sweep_kernel(Isa::ArmV8, 0);
        let rs = session
            .measure_individual(&strong, 2, (50e6, 200e6), 5)
            .unwrap();
        let rw = session
            .measure_individual(&weak, 2, (50e6, 200e6), 5)
            .unwrap();
        assert!(
            rs.metric_dbm > rw.metric_dbm,
            "{} vs {}",
            rs.metric_dbm,
            rw.metric_dbm
        );
        let _ = session.close();
    }
}
