//! # emvolt-platform
//!
//! Platform assemblies for the paper's three CPUs (Table 1):
//!
//! * [`VoltageDomain`] — cores + PDN + DVFS + power gating + undervolting.
//! * [`JunoBoard`] — Cortex-A72 and Cortex-A53 clusters with OC-DSO and
//!   SCL on the A72 domain; [`AmdDesktop`] — Athlon II with Kelvin-pad
//!   bench scope. PDNs are calibrated to the paper's measured resonances.
//! * [`EmBench`] — the antenna + spectrum-analyzer rig and the full
//!   measurement chain (kernel → current → PDN → radiation → analyzer).
//! * [`workloads`] — SPEC2006-like, desktop and stability-test kernels.
//! * [`SimClock`] — simulated campaign-time accounting (the legacy
//!   [`SessionClock`] name remains as an alias). This clock models what
//!   the physical session *would* have cost; it never reads host time.
//!
//! # Examples
//!
//! ```
//! use emvolt_platform::{EmBench, JunoBoard, RunConfig};
//! use emvolt_isa::{kernels::sweep_kernel, Isa};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let board = JunoBoard::new();
//! let run = board.a72.run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast())?;
//! let mut bench = EmBench::new(42);
//! let reading = bench.measure(&run, 5);
//! assert!(reading.metric_dbm > -95.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod boards;
mod clock;
mod domain;
mod measure;
mod scl;
mod session;
pub mod workloads;

pub use boards::{a53_pdn, a72_pdn, amd_pdn, gpu_pdn, AmdDesktop, GpuCard, JunoBoard, JunoCluster};
pub use clock::{
    SessionClock, SimClock, INDIVIDUAL_MEASUREMENT_SECONDS, INDIVIDUAL_OVERHEAD_SECONDS,
};
pub use domain::{DomainError, DomainRun, DomainRunner, RunConfig, VoltageDomain};
pub use emvolt_circuit::{BatchTransientScratch, KernelChoice};
pub use measure::{
    EmBench, EmReading, MeasureScratch, SharedEmBench, SpectralChoice, RESONANCE_BAND,
};
pub use scl::{Scl, SclPoint};
pub use session::{MeasurementSession, SessionCosts, Target};
pub use workloads::{desktop_suite, lbm_kernel, mix_kernel, spec2006_suite, Suite, Workload};
