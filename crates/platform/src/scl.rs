//! The synthetic current load (SCL) block integrated next to the OC-DSO
//! on the Juno board (§4, Fig. 8): a programmable square-wave current
//! source used to find the PDN resonance by direct stimulation.

use crate::domain::{DomainError, RunConfig, VoltageDomain};
use emvolt_circuit::Stimulus;

/// The SCL block: injects a square-wave current into its domain's die
/// node and records the resulting peak-to-peak voltage via the OC-DSO.
#[derive(Debug, Clone, PartialEq)]
pub struct Scl {
    /// Square-wave amplitude in amps.
    pub amplitude_a: f64,
}

impl Default for Scl {
    fn default() -> Self {
        Scl { amplitude_a: 0.4 }
    }
}

/// One point of an SCL sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SclPoint {
    /// Stimulus frequency in Hz.
    pub freq_hz: f64,
    /// Peak-to-peak die-voltage response in volts.
    pub p2p_v: f64,
}

impl Scl {
    /// Loads the domain's PDN with a square wave at `freq` and returns the
    /// peak-to-peak die voltage.
    ///
    /// # Errors
    ///
    /// Propagates PDN analysis failures.
    pub fn excite(
        &self,
        domain: &VoltageDomain,
        freq: f64,
        config: &RunConfig,
    ) -> Result<SclPoint, DomainError> {
        let idle = domain.active_cores() as f64 * domain.core_model().idle_current;
        let load = Stimulus::Pulse {
            lo: idle,
            hi: idle + self.amplitude_a,
            period: 1.0 / freq,
            duty: 0.5,
            t0: 0.0,
        };
        let (v_die, _) = domain.run_pdn_with_load(load, config)?;
        Ok(SclPoint {
            freq_hz: freq,
            p2p_v: v_die.peak_to_peak(),
        })
    }

    /// Sweeps the stimulus frequency (the paper steps 1 MHz) and returns
    /// the response curve; the peak reveals the first-order resonance.
    ///
    /// # Errors
    ///
    /// Propagates per-point failures.
    pub fn sweep(
        &self,
        domain: &VoltageDomain,
        freqs: &[f64],
        config: &RunConfig,
    ) -> Result<Vec<SclPoint>, DomainError> {
        freqs
            .iter()
            .map(|&f| self.excite(domain, f, config))
            .collect()
    }

    /// The sweep point with the largest response.
    pub fn peak(points: &[SclPoint]) -> Option<SclPoint> {
        points
            .iter()
            .max_by(|a, b| a.p2p_v.total_cmp(&b.p2p_v))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_pdn::PdnParams;

    fn domain() -> VoltageDomain {
        VoltageDomain::new(
            "a72",
            CoreModel::cortex_a72(),
            PdnParams::generic_mobile(),
            1.2e9,
        )
    }

    #[test]
    fn sweep_peaks_at_first_order_resonance() {
        let d = domain();
        let scl = Scl::default();
        let f_expected = d.expected_resonance_hz();
        let freqs: Vec<f64> = (40..=120).step_by(2).map(|m| m as f64 * 1e6).collect();
        let points = scl.sweep(&d, &freqs, &RunConfig::fast()).unwrap();
        let peak = Scl::peak(&points).unwrap();
        assert!(
            (peak.freq_hz - f_expected).abs() / f_expected < 0.08,
            "peak {:.2e} vs expected {:.2e}",
            peak.freq_hz,
            f_expected
        );
    }

    #[test]
    fn gating_shifts_the_scl_peak_upward() {
        let mut d = domain();
        let scl = Scl::default();
        let freqs: Vec<f64> = (40..=130).step_by(3).map(|m| m as f64 * 1e6).collect();
        let cfg = RunConfig::fast();
        let peak2 = Scl::peak(&scl.sweep(&d, &freqs, &cfg).unwrap()).unwrap();
        d.power_gate(1);
        let peak1 = Scl::peak(&scl.sweep(&d, &freqs, &cfg).unwrap()).unwrap();
        assert!(
            peak1.freq_hz > peak2.freq_hz,
            "1-core peak {:.2e} must exceed 2-core {:.2e}",
            peak1.freq_hz,
            peak2.freq_hz
        );
    }

    #[test]
    fn larger_amplitude_gives_larger_response() {
        let d = domain();
        let f = d.expected_resonance_hz();
        let cfg = RunConfig::fast();
        let small = Scl { amplitude_a: 0.1 }.excite(&d, f, &cfg).unwrap();
        let large = Scl { amplitude_a: 0.4 }.excite(&d, f, &cfg).unwrap();
        assert!(large.p2p_v > 2.0 * small.p2p_v);
    }

    #[test]
    fn empty_sweep_has_no_peak() {
        assert!(Scl::peak(&[]).is_none());
    }
}
