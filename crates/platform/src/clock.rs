//! Simulated campaign-time accounting.
//!
//! The paper reports campaign durations (≈18 s per 30-sample EM
//! measurement, ≈15 h for a 60-generation GA run, ≈2 days of V_MIN
//! testing). The simulation completes in seconds, so a separate
//! simulated clock tracks what the *physical* campaign would have cost.
//!
//! [`SimClock`] is *not* a wall clock: it never reads host time, only
//! accumulates modeled costs, which is what keeps campaign durations
//! reproducible. (Real wall-clock stamping is the optional injected
//! closure on `emvolt-obs`'s `Telemetry`.)

/// Accumulates simulated campaign time for a measurement session.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    seconds: f64,
}

/// Former name of [`SimClock`], kept for downstream source compatibility.
///
/// The old name collided conceptually with wall-clock accounting; the
/// clock only ever tracked *simulated* campaign seconds.
pub type SessionClock = SimClock;

impl SimClock {
    /// A fresh clock at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advances the clock.
    pub fn advance(&mut self, seconds: f64) {
        self.seconds += seconds.max(0.0);
    }

    /// Elapsed seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Elapsed hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Human-readable duration.
    pub fn display(&self) -> String {
        let s = self.seconds;
        if s < 120.0 {
            format!("{s:.0} s")
        } else if s < 7200.0 {
            format!("{:.1} min", s / 60.0)
        } else {
            format!("{:.1} h", s / 3600.0)
        }
    }
}

/// Canonical cost model for one GA individual: compile + run + 30-sample
/// EM measurement + teardown over SSH (§3.2: ~18 s of measurement
/// dominates).
pub const INDIVIDUAL_MEASUREMENT_SECONDS: f64 = 18.0;
/// Compile/deploy/kill overhead per individual.
pub const INDIVIDUAL_OVERHEAD_SECONDS: f64 = 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_formats() {
        let mut c = SimClock::new();
        c.advance(30.0);
        c.advance(-5.0); // ignored
        assert_eq!(c.seconds(), 30.0);
        assert_eq!(c.display(), "30 s");
        c.advance(600.0);
        assert!(c.display().contains("min"));
        c.advance(4.0 * 3600.0);
        assert!(c.display().contains('h'));
    }

    #[test]
    fn ga_campaign_cost_matches_paper_scale() {
        // 60 generations x 50 individuals x ~20 s ≈ 16.7 h (~15 h in the
        // paper).
        let mut c = SimClock::new();
        for _ in 0..60 * 50 {
            c.advance(INDIVIDUAL_MEASUREMENT_SECONDS + INDIVIDUAL_OVERHEAD_SECONDS);
        }
        assert!(c.hours() > 14.0 && c.hours() < 18.0, "{}", c.hours());
    }

    #[test]
    fn session_clock_alias_still_names_the_sim_clock() {
        let mut c = SessionClock::new();
        c.advance(1.5);
        let as_sim: SimClock = c;
        assert_eq!(as_sim.seconds(), 1.5);
    }
}
