//! Concrete experimental platforms: the ARM Juno R2 board and the AMD
//! desktop (Table 1 of the paper), with PDNs calibrated so their
//! first-order resonances land where the paper measured them.

use crate::domain::VoltageDomain;
use crate::scl::Scl;
use emvolt_cpu::CoreModel;
use emvolt_inst::{Oscilloscope, ScopeConfig};
use emvolt_pdn::{calibrate_die_capacitance, DieCapacitance, PdnParams};

/// Identifies a CPU cluster on the Juno board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JunoCluster {
    /// The dual-core Cortex-A72 (big) cluster.
    A72,
    /// The quad-core Cortex-A53 (LITTLE) cluster.
    A53,
}

fn mobile_pdn_base() -> PdnParams {
    let mut p = PdnParams::generic_mobile();
    // First-order tank Q of ~8 (peak impedance ~240 mΩ): a pronounced
    // resonance as in the direct measurements the paper builds on, so
    // resonant excitation clearly dominates off-resonance harmonics.
    p.r_pkg = 2.8e-3;
    p.r_die = 1.0e-3;
    p
}

/// PDN for the Cortex-A72 cluster: resonance 69 MHz with both cores
/// powered, 83 MHz with one (Figs. 8 and 11: 66–72 MHz and 80–86 MHz).
pub fn a72_pdn() -> PdnParams {
    let mut p = mobile_pdn_base();
    let die = calibrate_die_capacitance(p.effective_tank_inductance(), 2, 69e6, 83e6)
        .expect("A72 targets are solvable");
    p.die_capacitance = die;
    p
}

/// PDN for the Cortex-A53 cluster: resonance 76.5 MHz with four cores
/// powered, 97 MHz with one (Fig. 13).
pub fn a53_pdn() -> PdnParams {
    let mut p = mobile_pdn_base();
    let die = calibrate_die_capacitance(p.effective_tank_inductance(), 4, 76.5e6, 97e6)
        .expect("A53 targets are solvable");
    p.die_capacitance = die;
    p
}

/// PDN for the AMD Athlon II desktop: resonance 78 MHz with four cores
/// powered (Fig. 16); the single-core point is not reported by the paper
/// and is set to a plausible 90 MHz.
pub fn amd_pdn() -> PdnParams {
    let mut p = PdnParams {
        v_nominal: 1.4,
        die_capacitance: DieCapacitance {
            cluster_farads: 1.0, // placeholder, replaced below
            per_core_farads: 1.0,
            core_count: 4,
        },
        r_die: 0.35e-3,
        l_pkg: 12e-12,
        r_pkg: 0.85e-3,
        c_pkg: 100e-6,
        esr_pkg: 1e-3,
        esl_pkg: 8e-12,
        l_pcb: 0.12e-9,
        r_pcb: 0.4e-3,
        c_pcb: 8e-3,
        esr_pcb: 2e-3,
        esl_pcb: 1e-9,
        r_vrm: 0.1e-3,
        l_vrm: 40e-9,
    };
    let die = calibrate_die_capacitance(p.effective_tank_inductance(), 4, 78e6, 90e6)
        .expect("AMD targets are solvable");
    p.die_capacitance = die;
    p
}

/// PDN for a GPU card (§10 future work): eight SM slices on one rail,
/// resonance placed at 110 MHz with all SMs powered (GPU PDN studies the
/// paper cites report first-order behaviour in the same 50–300 MHz
/// regime), rising to 140 MHz with a single SM.
pub fn gpu_pdn() -> PdnParams {
    let mut p = PdnParams {
        v_nominal: 1.05,
        die_capacitance: DieCapacitance {
            cluster_farads: 1.0, // placeholder, replaced below
            per_core_farads: 1.0,
            core_count: 8,
        },
        r_die: 0.8e-3,
        l_pkg: 20e-12,
        r_pkg: 1.8e-3,
        c_pkg: 47e-6,
        esr_pkg: 1.2e-3,
        esl_pkg: 12e-12,
        l_pcb: 0.2e-9,
        r_pcb: 0.6e-3,
        c_pcb: 4e-3,
        esr_pcb: 3e-3,
        esl_pcb: 1.5e-9,
        r_vrm: 0.2e-3,
        l_vrm: 60e-9,
    };
    let die = calibrate_die_capacitance(p.effective_tank_inductance(), 8, 110e6, 140e6)
        .expect("GPU targets are solvable");
    p.die_capacitance = die;
    p
}

/// A GPU card: eight SM-like cores on a shared rail (§10 future work).
#[derive(Debug, Clone)]
pub struct GpuCard {
    /// The GPU voltage domain (8 SMs, 1.3 GHz shader clock).
    pub domain: VoltageDomain,
}

impl GpuCard {
    /// Builds the card at its stock operating point.
    pub fn new() -> Self {
        GpuCard {
            domain: VoltageDomain::new("GPU", CoreModel::gpu_sm(), gpu_pdn(), 1.3e9),
        }
    }
}

impl Default for GpuCard {
    fn default() -> Self {
        GpuCard::new()
    }
}

/// The ARM Juno R2 development board: big.LITTLE clusters on separate
/// voltage domains, an OC-DSO + SCL on the A72 domain, and nothing on the
/// A53 domain (Table 1: "None").
#[derive(Debug, Clone)]
pub struct JunoBoard {
    /// The Cortex-A72 voltage domain (1.2 GHz, 1 V max point).
    pub a72: VoltageDomain,
    /// The Cortex-A53 voltage domain (950 MHz, 1 V max point).
    pub a53: VoltageDomain,
    /// On-chip DSO sampling the A72 rail (1.6 GS/s).
    pub ocdso: Oscilloscope,
    /// Synthetic current load on the A72 domain.
    pub scl: Scl,
}

impl JunoBoard {
    /// Builds the board at its highest operating point.
    pub fn new() -> Self {
        JunoBoard {
            a72: VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9),
            a53: VoltageDomain::new("A53", CoreModel::cortex_a53(), a53_pdn(), 950e6),
            ocdso: Oscilloscope::new(ScopeConfig::oc_dso()),
            scl: Scl::default(),
        }
    }

    /// Access a cluster by id.
    pub fn cluster(&self, id: JunoCluster) -> &VoltageDomain {
        match id {
            JunoCluster::A72 => &self.a72,
            JunoCluster::A53 => &self.a53,
        }
    }

    /// Mutable access to a cluster by id (the SCP control path).
    pub fn cluster_mut(&mut self, id: JunoCluster) -> &mut VoltageDomain {
        match id {
            JunoCluster::A72 => &mut self.a72,
            JunoCluster::A53 => &mut self.a53,
        }
    }
}

impl Default for JunoBoard {
    fn default() -> Self {
        JunoBoard::new()
    }
}

/// The AMD desktop: Athlon II X4 645 on an ASUS M5A78L LE with on-package
/// Kelvin pads probed by a bench scope.
#[derive(Debug, Clone)]
pub struct AmdDesktop {
    /// The CPU voltage domain (3.1 GHz, 1.4 V nominal).
    pub domain: VoltageDomain,
    /// Bench scope on the Kelvin measurement pads.
    pub scope: Oscilloscope,
}

impl AmdDesktop {
    /// Builds the desktop at its stock operating point.
    pub fn new() -> Self {
        AmdDesktop {
            domain: VoltageDomain::new("Athlon", CoreModel::athlon_ii(), amd_pdn(), 3.1e9),
            scope: Oscilloscope::new(ScopeConfig::bench_scope()),
        }
    }
}

impl Default for AmdDesktop {
    fn default() -> Self {
        AmdDesktop::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a72_resonances_match_paper_bands() {
        let p = a72_pdn();
        let f2 = p.first_order_resonance_hz(2);
        let f1 = p.first_order_resonance_hz(1);
        assert!((66e6..72e6).contains(&f2), "two-core {f2:.3e}");
        assert!((80e6..86e6).contains(&f1), "one-core {f1:.3e}");
    }

    #[test]
    fn a53_resonances_match_paper_values() {
        let p = a53_pdn();
        let f4 = p.first_order_resonance_hz(4);
        let f1 = p.first_order_resonance_hz(1);
        assert!((f4 - 76.5e6).abs() < 1e6, "{f4:.3e}");
        assert!((f1 - 97e6).abs() < 1.5e6, "{f1:.3e}");
        // Intermediate configurations fall in between (Fig. 13).
        let f2 = p.first_order_resonance_hz(2);
        let f3 = p.first_order_resonance_hz(3);
        assert!(f4 < f3 && f3 < f2 && f2 < f1);
    }

    #[test]
    fn amd_resonance_is_78mhz() {
        let p = amd_pdn();
        let f4 = p.first_order_resonance_hz(4);
        assert!((f4 - 78e6).abs() < 1e6, "{f4:.3e}");
    }

    #[test]
    fn juno_has_independent_domains() {
        let mut board = JunoBoard::new();
        board.cluster_mut(JunoCluster::A53).power_gate(1);
        assert_eq!(board.a53.active_cores(), 1);
        assert_eq!(board.a72.active_cores(), 2);
        assert_eq!(board.cluster(JunoCluster::A72).name(), "A72");
    }

    #[test]
    fn table1_operating_points() {
        let board = JunoBoard::new();
        assert_eq!(board.a72.max_frequency(), 1.2e9);
        assert_eq!(board.a53.max_frequency(), 950e6);
        assert_eq!(board.a72.voltage(), 1.0);
        let amd = AmdDesktop::new();
        assert_eq!(amd.domain.max_frequency(), 3.1e9);
        assert!((amd.domain.voltage() - 1.4).abs() < 1e-12);
        assert_eq!(amd.domain.core_count(), 4);
    }

    #[test]
    fn gpu_resonances_follow_the_calibration() {
        let p = gpu_pdn();
        let f8 = p.first_order_resonance_hz(8);
        let f1 = p.first_order_resonance_hz(1);
        assert!((f8 - 110e6).abs() < 1.5e6, "{f8:.3e}");
        assert!((f1 - 140e6).abs() < 2e6, "{f1:.3e}");
        let card = GpuCard::new();
        assert_eq!(card.domain.core_count(), 8);
        assert!(!card.domain.core_model().out_of_order);
    }

    #[test]
    fn mobile_peak_impedance_is_tens_of_milliohms() {
        use emvolt_pdn::{lin_freqs, strongest_peak_in_band, Pdn};
        let pdn = Pdn::new(a72_pdn(), 2);
        let sweep = pdn.impedance_sweep(&lin_freqs(40e6, 120e6, 1e6)).unwrap();
        let peak = strongest_peak_in_band(&sweep, 50e6, 200e6).unwrap();
        assert!(
            peak.impedance_ohms > 0.01 && peak.impedance_ohms < 0.2,
            "Z_peak {} ohm",
            peak.impedance_ohms
        );
    }
}
