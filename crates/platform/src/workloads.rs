//! Synthetic workload library.
//!
//! The paper baselines its viruses against SPEC CPU2006 (on the ARM
//! platforms) and common desktop workloads plus stability tests (on the
//! AMD platform). Those binaries are not redistributable, so each one is
//! modelled as a deterministic instruction-mix kernel whose class
//! weights follow the workload's published character (integer-heavy,
//! memory-streaming, SIMD-FFT, ...). What matters for the reproduction is
//! that they are realistic *non-resonant* mixes: long loop bodies with
//! near-uniform current, producing far less periodic dI/dt excitation
//! than the GA-evolved viruses.

use emvolt_isa::{InstructionPool, Isa, Kernel, OpClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which suite a workload belongs to (drives figure grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// The idle pseudo-workload.
    Idle,
    /// SPEC CPU2006-like kernels.
    Spec2006,
    /// Desktop/Windows workloads (Blender, Cinebench, ...).
    Desktop,
    /// Stability tests (Prime95, AMD system stability test).
    Stability,
    /// GA-generated dI/dt viruses.
    Virus,
}

/// A named workload: a kernel plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (e.g. `"lbm"`).
    pub name: String,
    /// Suite grouping.
    pub suite: Suite,
    /// The loop kernel executed on each loaded core.
    pub kernel: Kernel,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, suite: Suite, kernel: Kernel) -> Self {
        Workload {
            name: name.into(),
            suite,
            kernel,
        }
    }
}

/// Builds a kernel of `len` instructions sampling classes by `weights`,
/// deterministically from `seed`.
///
/// # Panics
///
/// Panics if every weighted class is missing from the pool.
pub fn mix_kernel(
    pool: &InstructionPool,
    len: usize,
    weights: &[(OpClass, f64)],
    seed: u64,
) -> Kernel {
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut body = Vec::with_capacity(len);
    while body.len() < len {
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = weights[0].0;
        for &(class, w) in weights {
            if pick < w {
                chosen = class;
                break;
            }
            pick -= w;
        }
        if let Some(instr) = pool.random_instr_of_class(chosen, &mut rng) {
            body.push(instr);
        } else if let Some(any) = weights
            .iter()
            .find_map(|&(c, _)| pool.random_instr_of_class(c, &mut rng))
        {
            body.push(any);
        } else {
            panic!("no weighted class resolvable in pool");
        }
    }
    Kernel::new(std::sync::Arc::clone(pool.arch()), body)
}

/// Builds the `lbm`-like streaming kernel: structured phases of
/// load/float/store bursts separated by long-latency stalls, giving it
/// the strongest periodic current modulation among the SPEC-like
/// baselines (lbm shows the highest droop of the SPEC suite in Fig. 10).
pub fn lbm_kernel(pool: &InstructionPool, seed: u64) -> Kernel {
    use emvolt_isa::{Instr, Reg};
    let mut rng = StdRng::seed_from_u64(seed);
    let arch = pool.arch();
    let fmul = arch.op_by_name("fmul").expect("fmul exists");
    let vmul = arch.op_by_name("fmul.4s").expect("simd mul exists");
    let fdiv = arch.op_by_name("fdiv").expect("fdiv exists");
    let mut body = Vec::new();
    // 40 stream phases: a dense, mutually independent burst of float and
    // SIMD multiplies bracketed by loads/stores, terminated by a divide
    // whose result the next phase consumes — the lattice-Boltzmann
    // collide/stream structure that makes lbm the most periodic (and
    // droop-heavy) member of the suite.
    let div_dst = Reg::fpr(11);
    for _ in 0..40 {
        for _ in 0..2 {
            body.push(
                pool.random_instr_of_class(OpClass::Load, &mut rng)
                    .expect("load"),
            );
        }
        for k in 0..5u8 {
            // First multiply consumes the previous phase's divide result,
            // serialising the phases; the rest are independent.
            let s0 = if k == 0 {
                div_dst
            } else {
                Reg::fpr(6 + (k % 4))
            };
            body.push(Instr {
                op: fmul,
                dst: Reg::fpr(k % 5),
                srcs: [s0, Reg::fpr(7 + (k % 4))],
                mem_slot: 0,
            });
        }
        for k in 0..4u8 {
            body.push(Instr {
                op: vmul,
                dst: Reg::fpr(5 + (k % 4)),
                srcs: [Reg::fpr(8 + (k % 3)), Reg::fpr(9 + (k % 3))],
                mem_slot: 0,
            });
        }
        for _ in 0..2 {
            body.push(
                pool.random_instr_of_class(OpClass::Store, &mut rng)
                    .expect("store"),
            );
        }
        body.push(Instr {
            op: fdiv,
            dst: div_dst,
            srcs: [Reg::fpr(10), Reg::fpr(9)],
            mem_slot: 0,
        });
    }
    Kernel::new(std::sync::Arc::clone(pool.arch()), body)
}

const BENCH_LEN: usize = 1024;

/// The SPEC CPU2006-like suite for ARM platforms (Figs. 4, 10, 14).
pub fn spec2006_suite(isa: Isa) -> Vec<Workload> {
    use OpClass::*;
    let pool = InstructionPool::default_for(isa);
    let mk = |name: &str, weights: &[(OpClass, f64)], seed: u64| {
        Workload::new(
            name,
            Suite::Spec2006,
            mix_kernel(&pool, BENCH_LEN, weights, seed),
        )
    };
    vec![
        mk(
            "perlbench",
            &[
                (IntShort, 0.45),
                (IntLong, 0.10),
                (Load, 0.20),
                (Store, 0.10),
                (Branch, 0.05),
                (FloatShort, 0.05),
                (Simd, 0.05),
            ],
            101,
        ),
        mk(
            "bzip2",
            &[
                (IntShort, 0.40),
                (Load, 0.25),
                (Store, 0.15),
                (IntLong, 0.10),
                (Branch, 0.10),
            ],
            102,
        ),
        mk(
            "gcc",
            &[
                (IntShort, 0.45),
                (Load, 0.20),
                (Store, 0.10),
                (IntLong, 0.10),
                (Branch, 0.15),
            ],
            103,
        ),
        mk(
            "mcf",
            &[
                (Load, 0.35),
                (IntShort, 0.35),
                (Store, 0.10),
                (IntLong, 0.05),
                (Branch, 0.15),
            ],
            104,
        ),
        mk(
            "milc",
            &[
                (FloatShort, 0.40),
                (Simd, 0.20),
                (Load, 0.20),
                (IntShort, 0.15),
                (Store, 0.05),
            ],
            105,
        ),
        mk(
            "namd",
            &[
                (FloatShort, 0.50),
                (Simd, 0.25),
                (IntShort, 0.15),
                (Load, 0.10),
            ],
            106,
        ),
        mk(
            "gobmk",
            &[
                (IntShort, 0.50),
                (Branch, 0.20),
                (Load, 0.20),
                (Store, 0.10),
            ],
            107,
        ),
        mk(
            "soplex",
            &[
                (FloatShort, 0.35),
                (Load, 0.25),
                (IntShort, 0.25),
                (IntLong, 0.05),
                (Store, 0.10),
            ],
            108,
        ),
        mk(
            "hmmer",
            &[
                (IntShort, 0.50),
                (Load, 0.25),
                (Simd, 0.10),
                (Store, 0.10),
                (IntLong, 0.05),
            ],
            109,
        ),
        mk(
            "sjeng",
            &[
                (IntShort, 0.45),
                (Branch, 0.25),
                (Load, 0.20),
                (Store, 0.10),
            ],
            110,
        ),
        mk(
            "libquantum",
            &[(IntShort, 0.30), (Simd, 0.30), (Load, 0.25), (Store, 0.15)],
            111,
        ),
        mk(
            "h264ref",
            &[(Simd, 0.35), (IntShort, 0.30), (Load, 0.25), (Store, 0.10)],
            112,
        ),
        mk(
            "astar",
            &[
                (Load, 0.30),
                (IntShort, 0.40),
                (Branch, 0.20),
                (Store, 0.10),
            ],
            113,
        ),
        Workload::new("lbm", Suite::Spec2006, lbm_kernel(&pool, 114)),
    ]
}

/// The desktop workload suite for the AMD platform (Fig. 18).
pub fn desktop_suite() -> Vec<Workload> {
    use OpClass::*;
    let pool = InstructionPool::default_for(Isa::X86_64);
    let mk = |name: &str, suite: Suite, weights: &[(OpClass, f64)], seed: u64| {
        Workload::new(name, suite, mix_kernel(&pool, BENCH_LEN, weights, seed))
    };
    vec![
        mk(
            "blender",
            Suite::Desktop,
            &[
                (Simd, 0.35),
                (FloatShort, 0.25),
                (IntShortMem, 0.20),
                (IntShort, 0.20),
            ],
            201,
        ),
        mk(
            "cinebench",
            Suite::Desktop,
            &[
                (Simd, 0.40),
                (FloatShort, 0.20),
                (IntShortMem, 0.20),
                (IntShort, 0.15),
                (IntLong, 0.05),
            ],
            202,
        ),
        mk(
            "euler3d",
            Suite::Desktop,
            &[
                (FloatShort, 0.45),
                (Simd, 0.20),
                (IntShortMem, 0.25),
                (IntShort, 0.10),
            ],
            203,
        ),
        mk(
            "webxprt",
            Suite::Desktop,
            &[
                (IntShort, 0.50),
                (IntShortMem, 0.30),
                (IntLong, 0.10),
                (Simd, 0.10),
            ],
            204,
        ),
        mk(
            "geekbench",
            Suite::Desktop,
            &[
                (IntShort, 0.30),
                (IntShortMem, 0.20),
                (FloatShort, 0.20),
                (Simd, 0.20),
                (IntLong, 0.10),
            ],
            205,
        ),
        mk(
            "prime95",
            Suite::Stability,
            &[
                (Simd, 0.55),
                (FloatShort, 0.20),
                (IntShortMem, 0.15),
                (IntShort, 0.10),
            ],
            206,
        ),
        mk(
            "amd_stability",
            Suite::Stability,
            &[
                (Simd, 0.40),
                (FloatShort, 0.30),
                (IntShort, 0.20),
                (IntShortMem, 0.10),
            ],
            207,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_suite_has_fourteen_named_workloads() {
        let suite = spec2006_suite(Isa::ArmV8);
        assert_eq!(suite.len(), 14);
        assert!(suite.iter().any(|w| w.name == "lbm"));
        let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "duplicate workload names");
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = spec2006_suite(Isa::ArmV8);
        let b = spec2006_suite(Isa::ArmV8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kernel.body(), y.kernel.body(), "{}", x.name);
        }
    }

    #[test]
    fn mix_weights_are_respected_approximately() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let k = mix_kernel(
            &pool,
            2000,
            &[(OpClass::IntShort, 0.7), (OpClass::FloatShort, 0.3)],
            42,
        );
        let int_frac = k.class_fraction(OpClass::IntShort);
        assert!((int_frac - 0.7).abs() < 0.05, "int fraction {int_frac}");
    }

    #[test]
    fn lbm_kernel_is_structured_and_long() {
        let pool = InstructionPool::default_for(Isa::ArmV8);
        let k = lbm_kernel(&pool, 1);
        assert_eq!(k.len(), 40 * 14);
        assert!(k.class_fraction(OpClass::FloatShort) > 0.25);
        assert!(k.class_fraction(OpClass::Load) > 0.1);
    }

    #[test]
    fn desktop_suite_uses_x86() {
        for w in desktop_suite() {
            assert_eq!(w.kernel.arch().isa(), Isa::X86_64);
            assert!(!w.kernel.is_empty());
        }
    }

    #[test]
    fn benchmarks_execute_on_their_cores() {
        use emvolt_cpu::{CoreModel, Cpu, SimConfig};
        let cfg = SimConfig {
            min_duration: 1e-6,
            ..SimConfig::default()
        };
        let cpu = Cpu::new(CoreModel::cortex_a53(), 950e6);
        for w in spec2006_suite(Isa::ArmV8) {
            let out = cpu.simulate(&w.kernel, &cfg).unwrap();
            assert!(out.ipc > 0.1, "{} ipc {}", w.name, out.ipc);
        }
        let amd = Cpu::new(CoreModel::athlon_ii(), 3.1e9);
        for w in desktop_suite() {
            let out = amd.simulate(&w.kernel, &cfg).unwrap();
            assert!(out.ipc > 0.1, "{} ipc {}", w.name, out.ipc);
        }
    }
}
