//! The EM measurement rig: antenna + spectrum analyzer aimed at a
//! platform, plus helpers that run the full physics chain
//! (kernel -> current -> PDN -> radiation -> analyzer).

use crate::domain::DomainRun;
use emvolt_dsp::{
    of_samples_band_multi_into, of_trace_band_into, BandSpectrum, GoertzelScratch, Spectrum,
    SpectrumScratch, Window,
};
use emvolt_em::EmChannel;
use emvolt_inst::{AnalyzerConfig, SpectrumAnalyzer, SweepReading};
use emvolt_obs::{CounterId, HistId, Layer, Telemetry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's first-order search band: 50–200 MHz.
pub const RESONANCE_BAND: (f64, f64) = (50e6, 200e6);

/// How an in-band measurement turns the die-current trace into analyzer
/// input: the full one-sided FFT spectrum, or Goertzel evaluation of only
/// the bins the analyzer scan can reach.
///
/// The band path applies the identical window, per-bin recurrence scaling
/// and channel transfer, so in-band readings agree with the full-FFT path
/// to rounding (~1e-9 relative on bin amplitudes); displayed sweeps and
/// spectrogram consumers always keep the full FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpectralChoice {
    /// Use the band path when the requested band (plus the analyzer's RBW
    /// skirt) covers at most half of the spectrum's bins.
    #[default]
    Auto,
    /// Always compute the full one-sided spectrum via FFT.
    FullFft,
    /// Always evaluate only the requested band via Goertzel.
    BandGoertzel,
}

impl SpectralChoice {
    /// Parses a CLI-style selector: `auto`, `fft` or `goertzel`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(SpectralChoice::Auto),
            "fft" => Some(SpectralChoice::FullFft),
            "goertzel" => Some(SpectralChoice::BandGoertzel),
            _ => None,
        }
    }

    /// The canonical selector string accepted by [`SpectralChoice::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            SpectralChoice::Auto => "auto",
            SpectralChoice::FullFft => "fft",
            SpectralChoice::BandGoertzel => "goertzel",
        }
    }

    /// Whether a measurement of `run` over the margin-widened band
    /// `[lo_hz, hi_hz]` should take the Goertzel path.
    fn picks_band(self, run: &DomainRun, lo_hz: f64, hi_hz: f64) -> bool {
        match self {
            SpectralChoice::FullFft => false,
            SpectralChoice::BandGoertzel => true,
            SpectralChoice::Auto => {
                let n = run.i_die.samples().len();
                if n == 0 {
                    return false;
                }
                // Mirror the Goertzel bin selection: widened outward so
                // every analyzer scan window is covered.
                let total = n / 2 + 1;
                let step = run.i_die.sample_rate() / n as f64;
                let k0 = if lo_hz <= 0.0 {
                    0
                } else {
                    ((lo_hz / step).floor() as usize).min(total)
                };
                let k1 = if hi_hz < lo_hz || hi_hz < 0.0 {
                    0
                } else {
                    (((hi_hz / step).ceil() as usize) + 1).min(total)
                };
                let covered = k1.saturating_sub(k0);
                covered > 0 && 2 * covered <= total
            }
        }
    }
}

/// Widens `[lo, hi]` by the analyzer's Gaussian RBW skirt (the scan
/// evaluates each display point over `f ± 4σ`, `σ = RBW / 2.355`), so the
/// band path feeds every bin the sweep can touch.
fn band_with_margin(config: &AnalyzerConfig, lo: f64, hi: f64) -> (f64, f64) {
    let margin = 4.0 * (config.rbw_hz / 2.355);
    (lo - margin, hi + margin)
}

/// Reusable buffers for the spectrum half of a measurement: the FFT
/// scratch plus the die-current and received spectra. Checking one out
/// per evaluation slot makes repeated measurements allocation-free at
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct MeasureScratch {
    spec: SpectrumScratch,
    i_spec: Spectrum,
    rx: Spectrum,
    goertzel: GoertzelScratch,
    i_band: BandSpectrum,
    rx_band: BandSpectrum,
    /// Per-lane die-current bands for batched measurements, lane order.
    i_bands: Vec<BandSpectrum>,
    /// Per-lane received bands for batched measurements, lane order.
    rx_bands: Vec<BandSpectrum>,
    /// Shared per-bin channel-transfer values for batched propagation.
    transfer: Vec<f64>,
    telemetry: Telemetry,
}

impl MeasureScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle, propagating it to the spectrum
    /// scratch so FFT and channel-propagation work is charged too. The
    /// default handle is inert.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.spec.set_telemetry(telemetry.clone());
        self.goertzel.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Fills `self.rx` with the received spectrum of `run` through
    /// `channel`, reusing every buffer.
    fn refresh_rx(&mut self, channel: &EmChannel, run: &DomainRun) {
        Spectrum::of_trace_into(&run.i_die, Window::Hann, &mut self.spec, &mut self.i_spec);
        channel.received_spectrum_into_with(&self.i_spec, &mut self.rx, &self.telemetry);
    }

    /// Fills `self.rx_band` with the received band `[lo, hi]` Hz of `run`
    /// through `channel`, evaluating only the covered bins via Goertzel.
    fn refresh_rx_band(&mut self, channel: &EmChannel, run: &DomainRun, lo: f64, hi: f64) {
        of_trace_band_into(
            &run.i_die,
            Window::Hann,
            lo,
            hi,
            &mut self.goertzel,
            &mut self.i_band,
        );
        channel.received_band_into_with(&self.i_band, &mut self.rx_band, &self.telemetry);
    }
}

/// One EM reading of a running workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmReading {
    /// The GA metric: mean-root-square of the per-sweep band peaks, dBm.
    pub metric_dbm: f64,
    /// The frequency at which the peak most often occurred.
    pub dominant_hz: f64,
}

/// An antenna + spectrum-analyzer rig pointed at one or more domains.
#[derive(Debug)]
pub struct EmBench {
    /// The radiation channel (antenna, distance, coupling).
    pub channel: EmChannel,
    /// The spectrum analyzer at the end of the coax.
    pub analyzer: SpectrumAnalyzer,
    rng: StdRng,
    scratch: MeasureScratch,
    spectral: SpectralChoice,
}

impl EmBench {
    /// Creates a rig with default channel/analyzer and a measurement-noise
    /// seed.
    pub fn new(seed: u64) -> Self {
        EmBench {
            channel: EmChannel::default(),
            analyzer: SpectrumAnalyzer::new(AnalyzerConfig::default()),
            rng: StdRng::seed_from_u64(seed),
            scratch: MeasureScratch::new(),
            spectral: SpectralChoice::default(),
        }
    }

    /// Selects how in-band measurements compute the received spectrum;
    /// [`EmBench::share`] copies the choice into the shared half.
    pub fn set_spectral(&mut self, spectral: SpectralChoice) {
        self.spectral = spectral;
    }

    /// The active spectral-path selection.
    pub fn spectral(&self) -> SpectralChoice {
        self.spectral
    }

    /// Received voltage spectrum at the analyzer input for a domain run.
    pub fn received_spectrum(&self, run: &DomainRun) -> Spectrum {
        let i_spec = Spectrum::of_trace(&run.i_die, Window::Hann);
        self.channel.received_spectrum(&i_spec)
    }

    /// Received spectrum with several domains radiating at once (§6.1).
    pub fn received_spectrum_multi(&self, runs: &[&DomainRun]) -> Spectrum {
        let specs: Vec<Spectrum> = runs
            .iter()
            .map(|r| Spectrum::of_trace(&r.i_die, Window::Hann))
            .collect();
        self.channel.received_multi(&specs)
    }

    /// Attaches a telemetry handle: measurements through this rig then
    /// charge analyzer counters, the band-amplitude histogram and (for
    /// emitting handles) `measure` spans.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.scratch.set_telemetry(telemetry);
    }

    /// One displayed analyzer sweep of a run.
    pub fn sweep(&mut self, run: &DomainRun) -> SweepReading {
        self.scratch.refresh_rx(&self.channel, run);
        self.scratch.telemetry.count(CounterId::AnalyzerSweeps, 1);
        self.analyzer.sweep(&self.scratch.rx, &mut self.rng)
    }

    /// The paper's GA fitness measurement: `n` sweeps (30 in the paper),
    /// metric = mean root square of the band-peak amplitudes.
    pub fn measure(&mut self, run: &DomainRun, n: usize) -> EmReading {
        self.measure_in_band(run, RESONANCE_BAND.0, RESONANCE_BAND.1, n)
    }

    /// Like [`EmBench::measure`] but over an explicit band — used when the
    /// resonance has already been located and the analyzer span is
    /// narrowed to speed up the GA (§5.3 motivation (b)).
    pub fn measure_in_band(&mut self, run: &DomainRun, lo: f64, hi: f64, n: usize) -> EmReading {
        let (blo, bhi) = band_with_margin(self.analyzer.config(), lo, hi);
        let (metric_dbm, dominant_hz) = if self.spectral.picks_band(run, blo, bhi) {
            self.scratch.refresh_rx_band(&self.channel, run, blo, bhi);
            self.analyzer
                .peak_metric(&self.scratch.rx_band, lo, hi, n, &mut self.rng)
        } else {
            self.scratch.refresh_rx(&self.channel, run);
            self.analyzer
                .peak_metric(&self.scratch.rx, lo, hi, n, &mut self.rng)
        };
        record_measurement(&self.scratch.telemetry, lo, hi, n, metric_dbm, dominant_hz);
        EmReading {
            metric_dbm,
            dominant_hz,
        }
    }

    /// Total analyzer wall-clock consumed so far (for the paper's
    /// measurement-latency accounting).
    pub fn elapsed(&self) -> f64 {
        self.analyzer.elapsed()
    }

    /// Splits off the immutable measurement chain for concurrent use; see
    /// [`SharedEmBench`]. Accumulated sweep time is folded back with
    /// [`EmBench::absorb_elapsed`].
    pub fn share(&self) -> SharedEmBench {
        SharedEmBench {
            channel: self.channel.clone(),
            analyzer_config: self.analyzer.config().clone(),
            spectral: self.spectral,
            elapsed_s: Mutex::new(0.0),
        }
    }

    /// Folds the sweep time accumulated by a [`SharedEmBench`] batch back
    /// into this rig's analyzer, keeping [`EmBench::elapsed`] equal to
    /// what a serial measurement sequence would have reported.
    pub fn absorb_elapsed(&mut self, shared: &SharedEmBench) {
        self.analyzer.advance_elapsed(shared.take_elapsed());
    }

    /// Raw words of the rig's measurement-noise RNG, for campaign
    /// checkpoints: un-seeded serial measurements advance this stream, so
    /// resuming a campaign mid-way must restore it exactly.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the measurement-noise RNG from words captured by
    /// [`EmBench::rng_state`].
    pub fn set_rng_state(&mut self, s: [u64; 4]) {
        self.rng = StdRng::from_state(s);
    }

    /// Rewinds or advances the analyzer's occupancy clock to an absolute
    /// total, for checkpoint restore (the underlying analyzer only counts
    /// forward, so this adds the delta to the current total).
    pub fn restore_elapsed(&mut self, total_s: f64) {
        self.analyzer
            .advance_elapsed(total_s - self.analyzer.elapsed());
    }
}

/// The thread-shareable half of an [`EmBench`]: the radiation channel and
/// the analyzer configuration, both immutable, plus a locked running total
/// of sweep time.
///
/// The mutable per-measurement state (analyzer noise RNG, elapsed-time
/// counter) is what stops `EmBench::measure_in_band` being called from
/// several threads. Here each measurement instead builds a throwaway
/// analyzer from the shared config and draws its noise from a caller-
/// provided seed, so results depend only on `(run, band, n, seed)` — not
/// on which thread or in which order the measurement executed. That is
/// the property the parallel GA path relies on for thread-count-invariant
/// fitness.
#[derive(Debug)]
pub struct SharedEmBench {
    channel: EmChannel,
    analyzer_config: AnalyzerConfig,
    spectral: SpectralChoice,
    elapsed_s: Mutex<f64>,
}

impl SharedEmBench {
    /// Received voltage spectrum at the analyzer input for a domain run.
    pub fn received_spectrum(&self, run: &DomainRun) -> Spectrum {
        let i_spec = Spectrum::of_trace(&run.i_die, Window::Hann);
        self.channel.received_spectrum(&i_spec)
    }

    /// Seeded counterpart of [`EmBench::measure_in_band`]: `n` sweeps over
    /// `[lo, hi]` Hz with measurement noise drawn from `seed`.
    pub fn measure_in_band_seeded(
        &self,
        run: &DomainRun,
        lo: f64,
        hi: f64,
        n: usize,
        seed: u64,
    ) -> EmReading {
        let mut scratch = MeasureScratch::new();
        self.measure_in_band_seeded_with(run, lo, hi, n, seed, &mut scratch)
    }

    /// Like [`SharedEmBench::measure_in_band_seeded`], but reusing a
    /// caller-owned [`MeasureScratch`] so repeated measurements allocate
    /// nothing at steady state. Bit-identical results.
    pub fn measure_in_band_seeded_with(
        &self,
        run: &DomainRun,
        lo: f64,
        hi: f64,
        n: usize,
        seed: u64,
        scratch: &mut MeasureScratch,
    ) -> EmReading {
        let mut analyzer = SpectrumAnalyzer::new(self.analyzer_config.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let (blo, bhi) = band_with_margin(&self.analyzer_config, lo, hi);
        let (metric_dbm, dominant_hz) = if self.spectral.picks_band(run, blo, bhi) {
            scratch.refresh_rx_band(&self.channel, run, blo, bhi);
            analyzer.peak_metric(&scratch.rx_band, lo, hi, n, &mut rng)
        } else {
            scratch.refresh_rx(&self.channel, run);
            analyzer.peak_metric(&scratch.rx, lo, hi, n, &mut rng)
        };
        *self.elapsed_s.lock() += analyzer.elapsed();
        record_measurement(&scratch.telemetry, lo, hi, n, metric_dbm, dominant_hz);
        EmReading {
            metric_dbm,
            dominant_hz,
        }
    }

    /// Batched counterpart of
    /// [`SharedEmBench::measure_in_band_seeded_with`]: one call measures
    /// every lane of `runs` over `[lo, hi]` Hz, lane `l` drawing its
    /// measurement noise from `seeds[l]`.
    ///
    /// When every lane shares one record length and sample rate and the
    /// spectral choice resolves to the band path, the die-current bands
    /// are evaluated by the multi-lane Goertzel in one pass and propagated
    /// through the channel with per-bin transfer values computed once.
    /// Each lane's analyzer stage still runs on a throwaway analyzer
    /// seeded from its own lane seed, so reading `l` is bit-identical to
    /// the serial `measure_in_band_seeded_with(runs[l], .., seeds[l], ..)`
    /// call it replaces. Mixed record shapes, or a spectral choice that
    /// resolves to the full FFT, fall back to the per-lane serial path —
    /// same results, no amortization.
    ///
    /// Counter totals are lane-count-invariant: the batched stages charge
    /// one Goertzel invocation and one received spectrum per lane, and
    /// per-lane measurement accounting is recorded in lane order.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is shorter than `runs`.
    pub fn measure_in_band_batch_seeded_with(
        &self,
        runs: &[&DomainRun],
        lo: f64,
        hi: f64,
        n: usize,
        seeds: &[u64],
        scratch: &mut MeasureScratch,
    ) -> Vec<EmReading> {
        assert!(seeds.len() >= runs.len(), "one noise seed per lane");
        let Some(first) = runs.first() else {
            return Vec::new();
        };
        let (blo, bhi) = band_with_margin(&self.analyzer_config, lo, hi);
        let uniform = runs.iter().all(|r| {
            r.i_die.samples().len() == first.i_die.samples().len()
                && r.i_die.sample_rate() == first.i_die.sample_rate()
        });
        if !(uniform && self.spectral.picks_band(first, blo, bhi)) {
            return runs
                .iter()
                .zip(seeds)
                .map(|(run, &seed)| self.measure_in_band_seeded_with(run, lo, hi, n, seed, scratch))
                .collect();
        }

        let n_lanes = runs.len();
        let samples: Vec<&[f64]> = runs.iter().map(|r| r.i_die.samples()).collect();
        scratch.i_bands.resize_with(n_lanes, BandSpectrum::default);
        scratch.rx_bands.resize_with(n_lanes, BandSpectrum::default);
        of_samples_band_multi_into(
            &samples,
            first.i_die.sample_rate(),
            Window::Hann,
            blo,
            bhi,
            &mut scratch.goertzel,
            &mut scratch.i_bands,
        );
        let i_refs: Vec<&BandSpectrum> = scratch.i_bands.iter().collect();
        self.channel.received_spectrum_batch_into(
            &i_refs,
            &mut scratch.rx_bands,
            &mut scratch.transfer,
            &scratch.telemetry,
        );

        let mut readings = Vec::with_capacity(n_lanes);
        for (rx_band, &seed) in scratch.rx_bands.iter().zip(seeds) {
            let mut analyzer = SpectrumAnalyzer::new(self.analyzer_config.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let (metric_dbm, dominant_hz) = analyzer.peak_metric(rx_band, lo, hi, n, &mut rng);
            *self.elapsed_s.lock() += analyzer.elapsed();
            record_measurement(&scratch.telemetry, lo, hi, n, metric_dbm, dominant_hz);
            readings.push(EmReading {
                metric_dbm,
                dominant_hz,
            });
        }
        readings
    }

    /// Sweep time accumulated since creation (or the last
    /// [`SharedEmBench::take_elapsed`]).
    pub fn elapsed(&self) -> f64 {
        *self.elapsed_s.lock()
    }

    /// Returns the accumulated sweep time and resets the total.
    pub fn take_elapsed(&self) -> f64 {
        std::mem::take(&mut *self.elapsed_s.lock())
    }
}

/// Shared accounting for one in-band measurement: counters, the
/// band-amplitude histogram and (for emitting handles) a `measure` span.
fn record_measurement(
    telemetry: &Telemetry,
    lo: f64,
    hi: f64,
    n: usize,
    metric_dbm: f64,
    dominant_hz: f64,
) {
    telemetry.count(CounterId::Measurements, 1);
    telemetry.count(CounterId::AnalyzerSweeps, n as u64);
    telemetry.record_value(HistId::BandAmplitudeDbm, metric_dbm);
    telemetry.span(
        "measure",
        Layer::Platform,
        &[
            ("lo_mhz", lo / 1e6),
            ("hi_mhz", hi / 1e6),
            ("sweeps", n as f64),
            ("metric_dbm", metric_dbm),
            ("dominant_mhz", dominant_hz / 1e6),
        ],
    );
    if telemetry.wave_enabled() {
        // Point readings: each measurement appends one sample past the
        // trace high-water mark, so a campaign's swept-band history reads
        // as a step waveform alongside the analog traces.
        let band_id = telemetry.wave_register("inst.band_dbm", emvolt_obs::WaveKind::Real);
        telemetry.wave_append(band_id, metric_dbm);
        let dom_id = telemetry.wave_register("inst.dominant_mhz", emvolt_obs::WaveKind::Real);
        telemetry.wave_append(dom_id, dominant_hz / 1e6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{RunConfig, VoltageDomain};
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{
        kernels::{padded_sweep_kernel, sweep_kernel},
        Isa,
    };
    use emvolt_pdn::PdnParams;

    fn domain() -> VoltageDomain {
        VoltageDomain::new(
            "a72",
            CoreModel::cortex_a72(),
            PdnParams::generic_mobile(),
            1.2e9,
        )
    }

    #[test]
    fn busy_core_reads_above_idle() {
        let d = domain();
        let mut bench = EmBench::new(1);
        let cfg = RunConfig::fast();
        // A kernel whose loop frequency sits on the PDN resonance: the
        // busy cluster radiates well above the idle noise floor.
        let busy = d
            .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
            .unwrap();
        let idle = d.run_idle(&cfg).unwrap();
        let busy_reading = bench.measure(&busy, 5);
        let idle_reading = bench.measure(&idle, 5);
        assert!(
            busy_reading.metric_dbm > idle_reading.metric_dbm + 10.0,
            "busy {} vs idle {}",
            busy_reading.metric_dbm,
            idle_reading.metric_dbm
        );
    }

    #[test]
    fn dominant_frequency_is_in_band() {
        let d = domain();
        let mut bench = EmBench::new(2);
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast())
            .unwrap();
        let r = bench.measure(&run, 10);
        assert!(
            (RESONANCE_BAND.0..=RESONANCE_BAND.1).contains(&r.dominant_hz),
            "dominant {:.2e}",
            r.dominant_hz
        );
    }

    /// Seeded shared measurements must not depend on call order — the
    /// property the parallel GA evaluation path rests on.
    #[test]
    fn shared_measurements_are_order_invariant() {
        let d = domain();
        let bench = EmBench::new(7);
        let shared = bench.share();
        let cfg = RunConfig::fast();
        let run_a = d.run(&sweep_kernel(Isa::ArmV8), 2, &cfg).unwrap();
        let run_b = d
            .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
            .unwrap();

        let a_first = shared.measure_in_band_seeded(&run_a, 50e6, 200e6, 5, 11);
        let b_second = shared.measure_in_band_seeded(&run_b, 50e6, 200e6, 5, 12);
        // Reversed order, fresh shared bench: identical readings.
        let shared2 = bench.share();
        let b_first = shared2.measure_in_band_seeded(&run_b, 50e6, 200e6, 5, 12);
        let a_second = shared2.measure_in_band_seeded(&run_a, 50e6, 200e6, 5, 11);
        assert_eq!(a_first, a_second);
        assert_eq!(b_first, b_second);
    }

    #[test]
    fn shared_elapsed_folds_back_into_the_bench() {
        let d = domain();
        let mut bench = EmBench::new(9);
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 1, &RunConfig::fast())
            .unwrap();
        let shared = bench.share();
        let _ = shared.measure_in_band_seeded(&run, 50e6, 200e6, 30, 1);
        assert!(
            (shared.elapsed() - 18.0).abs() < 1.0,
            "{}",
            shared.elapsed()
        );
        let before = bench.elapsed();
        bench.absorb_elapsed(&shared);
        assert!((bench.elapsed() - before - 18.0).abs() < 1.0);
        // The total was taken: absorbing twice adds nothing.
        bench.absorb_elapsed(&shared);
        assert!((bench.elapsed() - before - 18.0).abs() < 1.0);
    }

    #[test]
    fn spectral_choice_parsing_round_trips() {
        for c in [
            SpectralChoice::Auto,
            SpectralChoice::FullFft,
            SpectralChoice::BandGoertzel,
        ] {
            assert_eq!(SpectralChoice::parse(c.as_str()), Some(c));
        }
        assert_eq!(SpectralChoice::parse("bluestein"), None);
        assert_eq!(SpectralChoice::default(), SpectralChoice::Auto);
    }

    /// Forcing the Goertzel band path must reproduce the full-FFT reading
    /// to rounding: same seed, same band, same sweep count. The default
    /// `Auto` choice resolves to the band path for the paper's 50–200 MHz
    /// band, so it is pinned to the forced-band reading too.
    #[test]
    fn band_path_matches_full_fft_within_tolerance() {
        let d = domain();
        let bench = EmBench::new(4);
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast())
            .unwrap();

        let mut full_bench = EmBench::new(4);
        full_bench.set_spectral(SpectralChoice::FullFft);
        let shared_full = full_bench.share();
        let full = shared_full.measure_in_band_seeded(&run, 50e6, 200e6, 5, 21);

        let mut band_bench = EmBench::new(4);
        band_bench.set_spectral(SpectralChoice::BandGoertzel);
        let shared_band = band_bench.share();
        let band = shared_band.measure_in_band_seeded(&run, 50e6, 200e6, 5, 21);

        assert!(
            (full.metric_dbm - band.metric_dbm).abs() < 1e-6,
            "full {} vs band {}",
            full.metric_dbm,
            band.metric_dbm
        );
        assert_eq!(full.dominant_hz, band.dominant_hz);

        let shared_auto = bench.share();
        let auto = shared_auto.measure_in_band_seeded(&run, 50e6, 200e6, 5, 21);
        assert_eq!(auto, band, "Auto must resolve to the band path here");
    }

    /// When the requested band spans (nearly) the whole spectrum, `Auto`
    /// falls back to the full FFT and the readings are bit-identical to
    /// the forced-FFT path.
    #[test]
    fn auto_takes_full_fft_for_wide_bands() {
        let d = domain();
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 2, &RunConfig::fast())
            .unwrap();
        let nyquist = 0.5 * run.i_die.sample_rate();

        let auto_bench = EmBench::new(6);
        let auto = auto_bench
            .share()
            .measure_in_band_seeded(&run, 1e6, nyquist, 5, 33);

        let mut fft_bench = EmBench::new(6);
        fft_bench.set_spectral(SpectralChoice::FullFft);
        let full = fft_bench
            .share()
            .measure_in_band_seeded(&run, 1e6, nyquist, 5, 33);

        assert_eq!(auto, full);
    }

    /// One batched call over L lanes must reproduce the L serial seeded
    /// measurements bit-for-bit — on the amortized band path and on the
    /// forced-FFT fallback alike — and accumulate the same sweep time.
    #[test]
    fn batched_measurements_match_serial_seeded_calls() {
        let d = domain();
        let cfg = RunConfig::fast();
        let runs = [
            d.run(&sweep_kernel(Isa::ArmV8), 1, &cfg).unwrap(),
            d.run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
                .unwrap(),
            d.run(&sweep_kernel(Isa::ArmV8), 2, &cfg).unwrap(),
        ];
        let refs: Vec<&DomainRun> = runs.iter().collect();
        let seeds = [101u64, 202, 303];

        for spectral in [SpectralChoice::Auto, SpectralChoice::FullFft] {
            let mut bench = EmBench::new(5);
            bench.set_spectral(spectral);
            let shared = bench.share();
            let mut scratch = MeasureScratch::new();
            let batched = shared.measure_in_band_batch_seeded_with(
                &refs,
                50e6,
                200e6,
                4,
                &seeds,
                &mut scratch,
            );
            let batched_elapsed = shared.take_elapsed();

            let serial_shared = bench.share();
            let mut serial_scratch = MeasureScratch::new();
            assert_eq!(batched.len(), refs.len());
            for ((run, &seed), got) in refs.iter().zip(&seeds).zip(&batched) {
                let want = serial_shared.measure_in_band_seeded_with(
                    run,
                    50e6,
                    200e6,
                    4,
                    seed,
                    &mut serial_scratch,
                );
                assert_eq!(want.metric_dbm.to_bits(), got.metric_dbm.to_bits());
                assert_eq!(want.dominant_hz.to_bits(), got.dominant_hz.to_bits());
            }
            assert_eq!(
                batched_elapsed.to_bits(),
                serial_shared.take_elapsed().to_bits(),
                "sweep-time accounting must not depend on batching"
            );
        }
    }

    #[test]
    fn measurement_time_accumulates_like_the_paper() {
        let d = domain();
        let mut bench = EmBench::new(3);
        let run = d
            .run(&sweep_kernel(Isa::ArmV8), 1, &RunConfig::fast())
            .unwrap();
        let _ = bench.measure(&run, 30);
        assert!((bench.elapsed() - 18.0).abs() < 1.0, "{}", bench.elapsed());
    }
}
