//! Property-based tests for the PDN crate.

use emvolt_pdn::{
    calibrate_die_capacitance, capacitance_for_resonance, find_resonance_peaks, lin_freqs,
    DieCapacitance, Pdn, PdnParams,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = PdnParams> {
    (
        25e-12..120e-12f64, // l_pkg (comparable to or above the decap ESL,
        // where the analytic L_eff estimate is valid)
        0.5e-3..20e-3f64, // r_pkg
        10e-9..80e-9f64,  // per-core C
        10e-9..120e-9f64, // cluster C
    )
        .prop_map(|(l_pkg, r_pkg, per_core, cluster)| {
            let mut p = PdnParams::generic_mobile();
            p.l_pkg = l_pkg;
            p.r_pkg = r_pkg;
            p.die_capacitance = DieCapacitance {
                cluster_farads: cluster,
                per_core_farads: per_core,
                core_count: 4,
            };
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Resonance falls monotonically as cores power up (more C).
    #[test]
    fn resonance_monotone_in_active_cores(p in arb_params()) {
        let freqs: Vec<f64> = (1..=4).map(|n| p.first_order_resonance_hz(n)).collect();
        for w in freqs.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
    }

    /// The analytic formula inverts `capacitance_for_resonance`.
    #[test]
    fn capacitance_resonance_inverse(l in 5e-12..200e-12f64, f in 30e6..150e6f64) {
        let c = capacitance_for_resonance(l, f);
        let back = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        prop_assert!((back - f).abs() / f < 1e-9);
    }

    /// Calibration round-trips arbitrary physical targets.
    #[test]
    fn calibration_round_trip(
        l in 10e-12..150e-12f64,
        f_all in 50e6..90e6f64,
        ratio in 1.05..1.35f64,
        cores in 2usize..6,
    ) {
        let f_one = f_all * ratio;
        // Skip unsolvable targets (ratio beyond sqrt(n)).
        prop_assume!(ratio * ratio < cores as f64 * 0.95);
        let die = calibrate_die_capacitance(l, cores, f_all, f_one).unwrap();
        let f = |c: f64| 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        prop_assert!((f(die.effective(cores)) - f_all).abs() / f_all < 1e-9);
        prop_assert!((f(die.effective(1)) - f_one).abs() / f_one < 1e-9);
        prop_assert!(die.cluster_farads > 0.0 && die.per_core_farads > 0.0);
    }

    /// Passivity: the network's driving-point impedance has non-negative
    /// real part at any frequency.
    #[test]
    fn impedance_is_passive(p in arb_params(), f in 1e4..1e9f64) {
        let pdn = Pdn::new(p, 2);
        let z = pdn.impedance_sweep(&[f]).unwrap();
        prop_assert!(z[0].1.re >= -1e-9, "negative resistance {:?}", z[0].1);
        prop_assert!(z[0].1.norm().is_finite());
    }

    /// The strongest peak of a band-limited sweep around the analytic
    /// resonance is near the analytic value.
    #[test]
    fn sweep_peak_matches_analytic(p in arb_params()) {
        let f_expected = p.first_order_resonance_hz(2);
        prop_assume!((20e6..400e6).contains(&f_expected));
        // The undamped analytic estimate only applies to underdamped
        // tanks (every platform in the paper); skip overdamped corners.
        let q = p.characteristic_impedance(2) / (p.r_pkg + p.r_die);
        prop_assume!(q >= 2.0);
        let pdn = Pdn::new(p, 2);
        let freqs = lin_freqs(f_expected * 0.5, f_expected * 1.5, f_expected / 100.0);
        let sweep = pdn.impedance_sweep(&freqs).unwrap();
        let peaks = find_resonance_peaks(&sweep);
        prop_assert!(!peaks.is_empty());
        let top = peaks[0];
        prop_assert!(
            (top.frequency_hz - f_expected).abs() / f_expected < 0.20,
            "peak {:.3e} vs analytic {:.3e}",
            top.frequency_hz,
            f_expected
        );
    }

    /// Effective tank inductance is bounded by its components.
    #[test]
    fn effective_inductance_bounds(p in arb_params()) {
        let l_eff = p.effective_tank_inductance();
        prop_assert!(l_eff >= p.l_pkg);
        prop_assert!(l_eff <= p.l_pkg + p.esl_pkg + 1e-18);
    }
}
