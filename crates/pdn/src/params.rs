//! Power-delivery-network parameters (the element values of Fig. 1(a)).

use serde::{Deserialize, Serialize};

/// Die-capacitance model with power-gating support.
///
/// The die capacitance is the sum of a *shared cluster* component (uncore
/// logic, shared caches and explicit decap that stays powered) and one
/// *per-core* slice for each powered-up core. Power-gating a core removes
/// its slice, which lowers C_DIE and therefore **raises** the first-order
/// resonance frequency — the effect measured in Fig. 13 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieCapacitance {
    /// Always-on shared capacitance in farads.
    pub cluster_farads: f64,
    /// Capacitance contributed by each powered core, in farads.
    pub per_core_farads: f64,
    /// Total cores physically present in the cluster.
    pub core_count: usize,
}

impl DieCapacitance {
    /// Effective die capacitance with `active_cores` powered up.
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` exceeds the cluster's core count or is 0.
    pub fn effective(&self, active_cores: usize) -> f64 {
        assert!(
            active_cores >= 1 && active_cores <= self.core_count,
            "active core count {active_cores} outside 1..={}",
            self.core_count
        );
        self.cluster_farads + active_cores as f64 * self.per_core_farads
    }
}

/// Lumped-element values of the die–package–PCB power-delivery network
/// (the paper's Fig. 1(a)).
///
/// All values in SI units (ohms, farads, henries, volts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnParams {
    /// Nominal regulator output voltage.
    pub v_nominal: f64,
    /// Die capacitance model (supports power gating).
    pub die_capacitance: DieCapacitance,
    /// Series resistance of the on-die power grid (in series with C_DIE).
    pub r_die: f64,
    /// Package power-trace inductance (forms the 1st-order tank with
    /// C_DIE).
    pub l_pkg: f64,
    /// Package power-trace resistance.
    pub r_pkg: f64,
    /// Package decoupling capacitance.
    pub c_pkg: f64,
    /// Effective series resistance of the package decap.
    pub esr_pkg: f64,
    /// Effective series inductance of the package decap.
    pub esl_pkg: f64,
    /// PCB power-plane inductance.
    pub l_pcb: f64,
    /// PCB power-plane resistance.
    pub r_pcb: f64,
    /// Bulk PCB decoupling capacitance.
    pub c_pcb: f64,
    /// Effective series resistance of the bulk decap.
    pub esr_pcb: f64,
    /// Effective series inductance of the bulk decap.
    pub esl_pcb: f64,
    /// Voltage-regulator output resistance.
    pub r_vrm: f64,
    /// Voltage-regulator output inductance.
    pub l_vrm: f64,
}

impl PdnParams {
    /// Effective inductance of the first-order tank as seen by the die
    /// capacitance.
    ///
    /// At the 1st-order resonance (tens of MHz) every downstream capacitor
    /// is far above its own self-resonance and behaves as its ESL, so the
    /// loop inductance is `L_PKG` in series with the parallel combination
    /// of the decap ESLs and plane inductances:
    ///
    /// ```text
    /// L_eff = L_PKG + ESL_PKG || (L_PCB + ESL_PCB || L_VRM)
    /// ```
    pub fn effective_tank_inductance(&self) -> f64 {
        let par = |a: f64, b: f64| a * b / (a + b);
        let upstream = self.l_pcb + par(self.esl_pcb, self.l_vrm);
        self.l_pkg + par(self.esl_pkg, upstream)
    }

    /// Analytic estimate of the first-order resonance frequency
    /// `1 / (2*pi*sqrt(L_eff * C_DIE))` with `active_cores` powered, where
    /// `L_eff` is [`PdnParams::effective_tank_inductance`].
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` is out of range for the die model.
    pub fn first_order_resonance_hz(&self, active_cores: usize) -> f64 {
        let c = self.die_capacitance.effective(active_cores);
        1.0 / (2.0 * std::f64::consts::PI * (self.effective_tank_inductance() * c).sqrt())
    }

    /// Characteristic impedance of the first-order tank,
    /// `sqrt(L_eff / C_DIE)`.
    pub fn characteristic_impedance(&self, active_cores: usize) -> f64 {
        (self.effective_tank_inductance() / self.die_capacitance.effective(active_cores)).sqrt()
    }

    /// A generic mobile-class PDN used in documentation examples and Fig. 1
    /// reproductions: first-order resonance near 75 MHz with all cores
    /// powered, second-order near 2 MHz, third-order near 10 kHz.
    pub fn generic_mobile() -> Self {
        PdnParams {
            v_nominal: 1.0,
            die_capacitance: DieCapacitance {
                cluster_farads: 20e-9,
                per_core_farads: 20e-9,
                core_count: 2,
            },
            r_die: 3e-3,
            l_pkg: 45e-12,
            r_pkg: 7e-3,
            c_pkg: 22e-6,
            esr_pkg: 2e-3,
            esl_pkg: 25e-12,
            l_pcb: 0.3e-9,
            r_pcb: 1e-3,
            c_pcb: 2.2e-3,
            esr_pcb: 5e-3,
            esl_pcb: 2e-9,
            r_vrm: 0.4e-3,
            l_vrm: 120e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_capacitance_scales_with_active_cores() {
        let d = DieCapacitance {
            cluster_farads: 40e-9,
            per_core_farads: 30e-9,
            core_count: 4,
        };
        assert!((d.effective(1) - 70e-9).abs() < 1e-15);
        assert!((d.effective(4) - 160e-9).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "active core count")]
    fn zero_active_cores_panics() {
        let d = DieCapacitance {
            cluster_farads: 1e-9,
            per_core_farads: 1e-9,
            core_count: 2,
        };
        let _ = d.effective(0);
    }

    #[test]
    fn resonance_rises_when_cores_gate_off() {
        let p = PdnParams::generic_mobile();
        let f2 = p.first_order_resonance_hz(2);
        let f1 = p.first_order_resonance_hz(1);
        assert!(f1 > f2, "one-core {f1} should exceed two-core {f2}");
        // Ratio follows sqrt of capacitance ratio (60 nF vs 40 nF).
        let expected = (60.0f64 / 40.0).sqrt();
        assert!((f1 / f2 - expected).abs() < 1e-9);
    }

    #[test]
    fn generic_mobile_resonance_is_in_paper_band() {
        let p = PdnParams::generic_mobile();
        let f = p.first_order_resonance_hz(2);
        assert!(
            (50e6..200e6).contains(&f),
            "resonance {f:.3e} outside the paper's 50-200 MHz band"
        );
    }

    #[test]
    fn serde_round_trip() {
        let p = PdnParams::generic_mobile();
        let json = serde_json::to_string(&p).unwrap();
        let back: PdnParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
