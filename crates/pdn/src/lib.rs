//! # emvolt-pdn
//!
//! The paper's die–package–PCB power-delivery-network model (Fig. 1(a))
//! built on the [`emvolt_circuit`] substrate:
//!
//! * [`PdnParams`] / [`DieCapacitance`] — lumped element values, with a
//!   power-gating-aware die-capacitance model.
//! * [`Pdn`] — the concrete netlist; impedance sweeps (Fig. 1(b)) and
//!   transient responses (Fig. 1(c), Fig. 2) with a programmable load.
//! * [`analysis`] — resonance-peak extraction from impedance sweeps.
//! * [`calibrate`] — solving capacitance models from measured resonance
//!   frequencies (how the per-platform models match the paper's numbers).
//!
//! # Examples
//!
//! ```
//! use emvolt_pdn::{Pdn, PdnParams};
//! use emvolt_pdn::analysis::{log_freqs, strongest_peak_in_band};
//!
//! # fn main() -> Result<(), emvolt_circuit::CircuitError> {
//! let params = PdnParams::generic_mobile();
//! let pdn = Pdn::new(params.clone(), 2);
//! let sweep = pdn.impedance_sweep(&log_freqs(1e6, 500e6, 400))?;
//! let peak = strongest_peak_in_band(&sweep, 50e6, 200e6).unwrap();
//! let analytic = params.first_order_resonance_hz(2);
//! assert!((peak.frequency_hz - analytic).abs() / analytic < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod calibrate;
mod network;
mod params;

pub use analysis::{
    find_resonance_peaks, lin_freqs, log_freqs, strongest_peak_in_band, ResonancePeak,
};
pub use calibrate::{calibrate_die_capacitance, capacitance_for_resonance, CalibrationError};
pub use network::{DieTransient, Pdn};
pub use params::{DieCapacitance, PdnParams};
