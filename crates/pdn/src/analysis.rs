//! Resonance extraction from impedance sweeps.

use emvolt_circuit::Complex;

/// A resonance peak found in an impedance sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResonancePeak {
    /// Frequency of the local impedance maximum, in Hz.
    pub frequency_hz: f64,
    /// Impedance magnitude at the peak, in ohms.
    pub impedance_ohms: f64,
}

/// Finds local maxima of `|Z(f)|` in an impedance sweep, strongest first.
///
/// Endpoints qualify as peaks when they exceed their single neighbour, so
/// resonances at the edge of the sweep are still reported.
pub fn find_resonance_peaks(sweep: &[(f64, Complex)]) -> Vec<ResonancePeak> {
    let n = sweep.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![ResonancePeak {
            frequency_hz: sweep[0].0,
            impedance_ohms: sweep[0].1.norm(),
        }];
    }
    let mags: Vec<f64> = sweep.iter().map(|(_, z)| z.norm()).collect();
    let mut peaks = Vec::new();
    for (i, (&(freq, _), &mag)) in sweep.iter().zip(&mags).enumerate() {
        let left_ok = i == 0 || mag > mags[i - 1];
        let right_ok = i == n - 1 || mag >= mags[i + 1];
        if left_ok && right_ok {
            peaks.push(ResonancePeak {
                frequency_hz: freq,
                impedance_ohms: mag,
            });
        }
    }
    peaks.sort_by(|a, b| b.impedance_ohms.total_cmp(&a.impedance_ohms));
    peaks
}

/// The strongest peak within `[lo, hi]` Hz, if any — used to isolate the
/// first-order resonance in the 50–200 MHz band the paper searches.
pub fn strongest_peak_in_band(sweep: &[(f64, Complex)], lo: f64, hi: f64) -> Option<ResonancePeak> {
    find_resonance_peaks(sweep)
        .into_iter()
        .find(|p| p.frequency_hz >= lo && p.frequency_hz <= hi)
}

/// Generates `n` logarithmically spaced frequencies in `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo` or `hi` is non-positive, `hi <= lo`, or `n < 2`.
pub fn log_freqs(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "invalid log sweep spec");
    let (l0, l1) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| 10f64.powf(l0 + (l1 - l0) * i as f64 / (n - 1) as f64))
        .collect()
}

/// Generates linearly spaced frequencies in `[lo, hi]` with step `step`.
///
/// # Panics
///
/// Panics if `step` is non-positive or `hi < lo`.
pub fn lin_freqs(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0 && hi >= lo, "invalid linear sweep spec");
    let n = ((hi - lo) / step).floor() as usize + 1;
    (0..n).map(|i| lo + i as f64 * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Pdn;
    use crate::params::PdnParams;

    #[test]
    fn finds_three_resonances_of_generic_pdn() {
        let params = PdnParams::generic_mobile();
        let pdn = Pdn::new(params.clone(), 2);
        let freqs = log_freqs(1e3, 1e9, 1200);
        let sweep = pdn.impedance_sweep(&freqs).unwrap();
        let peaks = find_resonance_peaks(&sweep);
        assert!(
            peaks.len() >= 3,
            "expected at least 3 resonances, found {}",
            peaks.len()
        );
        // First-order peak is the strongest and sits near the analytic value.
        let f1 = params.first_order_resonance_hz(2);
        assert!(
            (peaks[0].frequency_hz - f1).abs() / f1 < 0.1,
            "strongest peak {:.3e} vs {f1:.3e}",
            peaks[0].frequency_hz
        );
        // A 2nd-order peak exists in the ~0.5-10 MHz region.
        assert!(peaks
            .iter()
            .any(|p| (0.3e6..12e6).contains(&p.frequency_hz)));
        // A 3rd-order peak exists below 100 kHz.
        assert!(peaks.iter().any(|p| p.frequency_hz < 100e3));
    }

    #[test]
    fn band_filtering() {
        let params = PdnParams::generic_mobile();
        let pdn = Pdn::new(params, 2);
        let freqs = log_freqs(1e3, 1e9, 600);
        let sweep = pdn.impedance_sweep(&freqs).unwrap();
        let p = strongest_peak_in_band(&sweep, 50e6, 200e6).unwrap();
        assert!((50e6..=200e6).contains(&p.frequency_hz));
    }

    #[test]
    fn log_and_lin_grids() {
        let lg = log_freqs(1.0, 1000.0, 4);
        assert!((lg[1] - 10.0).abs() < 1e-9);
        let ln = lin_freqs(10.0, 20.0, 5.0);
        assert_eq!(ln, vec![10.0, 15.0, 20.0]);
    }

    #[test]
    fn empty_sweep_has_no_peaks() {
        assert!(find_resonance_peaks(&[]).is_empty());
    }

    #[test]
    fn monotone_sweep_reports_endpoint() {
        let sweep: Vec<(f64, Complex)> = (1..=5)
            .map(|i| (i as f64, Complex::from_real(i as f64)))
            .collect();
        let peaks = find_resonance_peaks(&sweep);
        assert_eq!(peaks[0].frequency_hz, 5.0);
    }
}
