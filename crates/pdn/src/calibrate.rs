//! Calibration of die-capacitance models against measured resonance
//! frequencies.
//!
//! The paper reports first-order resonance frequencies at different
//! power-gating configurations (e.g. Cortex-A53: 76.5 MHz with 4 cores,
//! 97 MHz with 1 core). Given the effective tank inductance
//! (`PdnParams::effective_tank_inductance`), those two
//! points pin down the shared-cluster and per-core capacitance slices:
//!
//! ```text
//! f(n) = 1 / (2*pi*sqrt(L_eff * (C_cluster + n * C_core)))
//! =>  C_total(n) = 1 / (L_eff * (2*pi*f(n))^2)       (linear in n)
//! ```

use crate::params::DieCapacitance;
use std::fmt;

/// Error returned when a calibration target is unsolvable.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    reason: String,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration failed: {}", self.reason)
    }
}

impl std::error::Error for CalibrationError {}

/// Solves the total die capacitance that puts the first-order resonance at
/// `f_target` for a given effective tank inductance.
pub fn capacitance_for_resonance(l_eff: f64, f_target: f64) -> f64 {
    let w = 2.0 * std::f64::consts::PI * f_target;
    1.0 / (l_eff * w * w)
}

/// Calibrates a [`DieCapacitance`] model so the resonance lands at
/// `f_all_cores` with every core powered and at `f_one_core` with a single
/// core powered.
///
/// # Errors
///
/// Returns an error when the inputs are non-physical: non-positive values,
/// a single-core frequency that is not above the all-cores frequency (the
/// capacitance removed by gating must be positive), or an implied negative
/// cluster capacitance (the frequency ratio exceeding `sqrt(n)` would
/// require one).
pub fn calibrate_die_capacitance(
    l_eff: f64,
    core_count: usize,
    f_all_cores: f64,
    f_one_core: f64,
) -> Result<DieCapacitance, CalibrationError> {
    if l_eff <= 0.0 || f_all_cores <= 0.0 || f_one_core <= 0.0 {
        return Err(CalibrationError {
            reason: format!(
                "non-positive input (l={l_eff}, f_all={f_all_cores}, f_one={f_one_core})"
            ),
        });
    }
    if core_count < 2 {
        return Err(CalibrationError {
            reason: "need at least 2 cores to calibrate per-core capacitance".into(),
        });
    }
    if f_one_core <= f_all_cores {
        return Err(CalibrationError {
            reason: format!(
                "single-core resonance {f_one_core} must exceed all-cores {f_all_cores}"
            ),
        });
    }
    let c_all = capacitance_for_resonance(l_eff, f_all_cores);
    let c_one = capacitance_for_resonance(l_eff, f_one_core);
    let n = core_count as f64;
    let per_core = (c_all - c_one) / (n - 1.0);
    let cluster = c_one - per_core;
    if cluster <= 0.0 {
        return Err(CalibrationError {
            reason: format!(
                "implied cluster capacitance {cluster:.3e} F is non-positive; \
                 frequency ratio too large for {core_count} cores"
            ),
        });
    }
    Ok(DieCapacitance {
        cluster_farads: cluster,
        per_core_farads: per_core,
        core_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resonance(l: f64, c: f64) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt())
    }

    #[test]
    fn round_trips_a53_targets() {
        // The paper's Cortex-A53 numbers: 76.5 MHz (4 cores), 97 MHz (1).
        let l = 45e-12;
        let d = calibrate_die_capacitance(l, 4, 76.5e6, 97e6).unwrap();
        let f4 = resonance(l, d.effective(4));
        let f1 = resonance(l, d.effective(1));
        assert!((f4 - 76.5e6).abs() / 76.5e6 < 1e-9, "f4 {f4:.4e}");
        assert!((f1 - 97e6).abs() / 97e6 < 1e-9, "f1 {f1:.4e}");
        assert!(d.cluster_farads > 0.0 && d.per_core_farads > 0.0);
    }

    #[test]
    fn round_trips_a72_targets() {
        // Cortex-A72: ~69 MHz (2 cores), ~83 MHz (1 core).
        let l = 45e-12;
        let d = calibrate_die_capacitance(l, 2, 69e6, 83e6).unwrap();
        let f2 = resonance(l, d.effective(2));
        let f1 = resonance(l, d.effective(1));
        assert!((f2 - 69e6).abs() / 69e6 < 1e-9);
        assert!((f1 - 83e6).abs() / 83e6 < 1e-9);
    }

    #[test]
    fn intermediate_core_counts_interpolate_monotonically() {
        let l = 45e-12;
        let d = calibrate_die_capacitance(l, 4, 76.5e6, 97e6).unwrap();
        let freqs: Vec<f64> = (1..=4).map(|n| resonance(l, d.effective(n))).collect();
        for w in freqs.windows(2) {
            assert!(w[0] > w[1], "resonance must fall as cores power up");
        }
    }

    #[test]
    fn rejects_inverted_frequencies() {
        assert!(calibrate_die_capacitance(45e-12, 4, 97e6, 76.5e6).is_err());
    }

    #[test]
    fn rejects_excessive_ratio() {
        // ratio > sqrt(2) for a 2-core cluster implies negative cluster C.
        assert!(calibrate_die_capacitance(45e-12, 2, 50e6, 90e6).is_err());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(calibrate_die_capacitance(0.0, 4, 1.0, 2.0).is_err());
        assert!(calibrate_die_capacitance(1e-12, 1, 1.0, 2.0).is_err());
    }

    #[test]
    fn capacitance_formula_inverts_resonance() {
        let l = 50e-12;
        let c = capacitance_for_resonance(l, 80e6);
        assert!((resonance(l, c) - 80e6).abs() < 1.0);
    }
}
