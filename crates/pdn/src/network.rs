//! Builds the Fig. 1(a) netlist and runs its analyses.

use crate::params::PdnParams;
use emvolt_circuit::{
    BatchTransientScratch, Circuit, Complex, ISourceId, InductorId, KernelChoice, NodeId, Result,
    Stimulus, Trace, TransientConfig, TransientPlan, TransientProbes, TransientScratch, VSourceId,
};

/// Borrowed view of one probe-scoped PDN transient: the die-node voltage
/// and package-inductor current samples, alive until the owning
/// [`TransientScratch`] is reused.
#[derive(Debug)]
pub struct DieTransient<'a> {
    view: emvolt_circuit::TransientView<'a>,
    die_node: NodeId,
    l_pkg_id: InductorId,
}

impl DieTransient<'_> {
    /// Sample spacing in seconds.
    pub fn dt(&self) -> f64 {
        self.view.dt()
    }

    /// Time of the first recorded sample.
    pub fn start_time(&self) -> f64 {
        self.view.start_time()
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Die-node voltage samples (V_DIE).
    pub fn v_die(&self) -> &[f64] {
        self.view.voltage_samples(self.die_node)
    }

    /// Package-inductor current samples (I_DIE, Fig. 2).
    pub fn i_die(&self) -> &[f64] {
        self.view.inductor_current_samples(self.l_pkg_id)
    }
}

/// A concrete power-delivery network instance: the Fig. 1(a) netlist plus
/// handles to the die node, the load source and the package inductor
/// (whose current is the paper's I_DIE).
#[derive(Debug, Clone)]
pub struct Pdn {
    params: PdnParams,
    active_cores: usize,
    circuit: Circuit,
    die_node: NodeId,
    load: ISourceId,
    /// Optional second current source for external stimuli (the SCL block
    /// injects here so workload and SCL excitations can coexist).
    aux: ISourceId,
    vrm_source: VSourceId,
    l_pkg_id: InductorId,
    /// Cached die-scoped probe selection so the hot path never rebuilds it.
    die_probes: TransientProbes,
}

impl Pdn {
    /// Builds the network with `active_cores` powered up.
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` is outside the die model's range (the
    /// netlist construction itself cannot fail for valid parameters).
    pub fn new(params: PdnParams, active_cores: usize) -> Self {
        let c_die = params.die_capacitance.effective(active_cores);
        let mut c = Circuit::new();
        let n_pcb = c.node("pcb");
        let n_pkg = c.node("pkg");
        let n_die = c.node("die");
        let n_vrm = c.node("vrm");

        // Regulator: ideal source behind its output impedance.
        let vrm_source = c
            .voltage_source(n_vrm, NodeId::GROUND, Stimulus::Dc(params.v_nominal))
            .expect("valid nodes");
        let vrm_mid = c.node("vrm_mid");
        c.resistor(n_vrm, vrm_mid, params.r_vrm)
            .expect("valid r_vrm");
        c.inductor(vrm_mid, n_pcb, params.l_vrm)
            .expect("valid l_vrm");

        // Bulk PCB decap with parasitics.
        let pcb_c1 = c.node("pcb_c1");
        let pcb_c2 = c.node("pcb_c2");
        c.capacitor(n_pcb, pcb_c1, params.c_pcb)
            .expect("valid c_pcb");
        c.resistor(pcb_c1, pcb_c2, params.esr_pcb)
            .expect("valid esr_pcb");
        c.inductor(pcb_c2, NodeId::GROUND, params.esl_pcb)
            .expect("valid esl_pcb");

        // PCB plane to package.
        let pcb_mid = c.node("pcb_mid");
        c.resistor(n_pcb, pcb_mid, params.r_pcb)
            .expect("valid r_pcb");
        c.inductor(pcb_mid, n_pkg, params.l_pcb)
            .expect("valid l_pcb");

        // Package decap with parasitics.
        let pkg_c1 = c.node("pkg_c1");
        let pkg_c2 = c.node("pkg_c2");
        c.capacitor(n_pkg, pkg_c1, params.c_pkg)
            .expect("valid c_pkg");
        c.resistor(pkg_c1, pkg_c2, params.esr_pkg)
            .expect("valid esr_pkg");
        c.inductor(pkg_c2, NodeId::GROUND, params.esl_pkg)
            .expect("valid esl_pkg");

        // Package to die: the first-order tank inductance.
        let pkg_mid = c.node("pkg_mid");
        c.resistor(n_pkg, pkg_mid, params.r_pkg)
            .expect("valid r_pkg");
        let l_pkg_id = c
            .inductor(pkg_mid, n_die, params.l_pkg)
            .expect("valid l_pkg");

        // Die capacitance with grid resistance.
        let die_c = c.node("die_c");
        c.resistor(n_die, die_c, params.r_die).expect("valid r_die");
        c.capacitor(die_c, NodeId::GROUND, c_die)
            .expect("valid c_die");

        // Load and auxiliary stimulus ports.
        let load = c
            .current_source(n_die, NodeId::GROUND, Stimulus::Dc(0.0))
            .expect("valid load port");
        let aux = c
            .current_source(n_die, NodeId::GROUND, Stimulus::Dc(0.0))
            .expect("valid aux port");

        Pdn {
            params,
            active_cores,
            circuit: c,
            die_node: n_die,
            load,
            aux,
            vrm_source,
            l_pkg_id,
            die_probes: TransientProbes::none()
                .with_node_labeled(n_die, "pdn.v_die")
                .with_inductor_labeled(l_pkg_id, "pdn.i_pkg"),
        }
    }

    /// The parameter set this network was built from.
    pub fn params(&self) -> &PdnParams {
        &self.params
    }

    /// Number of powered cores the die capacitance reflects.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// Nominal supply voltage.
    pub fn v_nominal(&self) -> f64 {
        self.params.v_nominal
    }

    /// Sets the CPU load-current waveform (I_LOAD in the paper).
    pub fn set_load(&mut self, stimulus: Stimulus) {
        self.circuit.set_current_stimulus(self.load, stimulus);
    }

    /// Sets the auxiliary stimulus waveform (used by the SCL block).
    pub fn set_aux(&mut self, stimulus: Stimulus) {
        self.circuit.set_current_stimulus(self.aux, stimulus);
    }

    /// Sets the regulator voltage (undervolting for V_MIN tests).
    pub fn set_supply_voltage(&mut self, volts: f64) {
        self.params.v_nominal = volts;
        self.circuit
            .set_voltage_stimulus(self.vrm_source, Stimulus::Dc(volts));
    }

    /// Impedance seen by the die across `freqs` (Fig. 1(b)).
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn impedance_sweep(&self, freqs: &[f64]) -> Result<Vec<(f64, Complex)>> {
        self.circuit.driving_point_impedance(self.load, freqs)
    }

    /// Transient response; returns `(v_die, i_die)` traces, where I_DIE is
    /// the current through the package inductance as in Fig. 2.
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn transient(&self, config: &TransientConfig) -> Result<(Trace, Trace)> {
        let res = self.circuit.transient(config)?;
        Ok((
            res.voltage(self.die_node),
            res.inductor_current(self.l_pkg_id),
        ))
    }

    /// Builds a reusable [`TransientPlan`] for this network at step `dt`.
    ///
    /// The plan stays valid across [`Pdn::set_load`], [`Pdn::set_aux`] and
    /// [`Pdn::set_supply_voltage`] — those only change stimulus waveforms,
    /// which enter through the right-hand side, not the system matrix.
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn plan_transient(&self, dt: f64) -> Result<TransientPlan> {
        self.circuit.plan_transient(dt)
    }

    /// Like [`Pdn::plan_transient`], additionally charging the LU
    /// factorizations to `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn plan_transient_with(
        &self,
        dt: f64,
        telemetry: &emvolt_obs::Telemetry,
    ) -> Result<TransientPlan> {
        self.circuit.plan_transient_with(dt, telemetry)
    }

    /// Like [`Pdn::plan_transient`] with an explicit solver-kernel
    /// selection (LU back-substitution vs the precomputed state-space
    /// form).
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn plan_transient_kernel(&self, dt: f64, kernel: KernelChoice) -> Result<TransientPlan> {
        self.circuit.plan_transient_kernel(dt, kernel)
    }

    /// Like [`Pdn::plan_transient_kernel`], additionally charging the LU
    /// factorizations to `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn plan_transient_kernel_with(
        &self,
        dt: f64,
        kernel: KernelChoice,
        telemetry: &emvolt_obs::Telemetry,
    ) -> Result<TransientPlan> {
        self.circuit
            .plan_transient_kernel_with(dt, kernel, telemetry)
    }

    /// Transient response reusing a prebuilt plan (skips netlist stamping
    /// and LU refactorization); returns `(v_die, i_die)` like
    /// [`Pdn::transient`].
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn transient_with_plan(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
    ) -> Result<(Trace, Trace)> {
        let res = self.circuit.transient_with_plan(plan, config)?;
        Ok((
            res.voltage(self.die_node),
            res.inductor_current(self.l_pkg_id),
        ))
    }

    /// Probe selection covering exactly the die node and the package
    /// inductor — the two waveforms the measurement chain consumes.
    pub fn die_probes(&self) -> &TransientProbes {
        &self.die_probes
    }

    /// Allocation-free transient: reuses a prebuilt plan and a
    /// caller-owned scratch, recording only V_DIE and I_DIE. Samples are
    /// bit-identical to [`Pdn::transient_with_plan`].
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors.
    pub fn transient_scoped<'s>(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
        scratch: &'s mut TransientScratch,
    ) -> Result<DieTransient<'s>> {
        let view = self
            .circuit
            .transient_scoped(plan, config, &self.die_probes, scratch)?;
        Ok(DieTransient {
            view,
            die_node: self.die_node,
            l_pkg_id: self.l_pkg_id,
        })
    }

    /// Steps several independent load waveforms through the PDN in one
    /// lock-step batch, overriding the load port per lane. Requires a plan
    /// built with the state-space kernel; each lane is bit-identical to a
    /// single [`Pdn::transient_scoped`] run under [`Pdn::set_load`] of the
    /// same stimulus. Read lanes back with [`Pdn::die_lane`].
    ///
    /// # Errors
    ///
    /// Propagates circuit-analysis errors (LU-only plan, empty batch).
    pub fn transient_batch(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
        loads: &[Stimulus],
        batch: &mut BatchTransientScratch,
    ) -> Result<()> {
        self.circuit
            .transient_batch_scoped(plan, config, &self.die_probes, self.load, loads, batch)
    }

    /// Die-scoped view of lane `i` of the most recent
    /// [`Pdn::transient_batch`] through `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the most recent batch.
    pub fn die_lane<'s>(&self, batch: &'s BatchTransientScratch, i: usize) -> DieTransient<'s> {
        DieTransient {
            view: batch.lane(i),
            die_node: self.die_node,
            l_pkg_id: self.l_pkg_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PdnParams;

    #[test]
    fn dc_level_is_near_nominal() {
        let pdn = Pdn::new(PdnParams::generic_mobile(), 2);
        let cfg = TransientConfig::new(1e-9, 200e-9);
        let (v, _) = pdn.transient(&cfg).unwrap();
        assert!((v.mean() - 1.0).abs() < 1e-3, "mean {}", v.mean());
    }

    #[test]
    fn impedance_peaks_near_analytic_resonance() {
        let params = PdnParams::generic_mobile();
        let f_expected = params.first_order_resonance_hz(2);
        let pdn = Pdn::new(params, 2);
        let freqs: Vec<f64> = (10..300).map(|i| i as f64 * 1e6).collect();
        let z = pdn.impedance_sweep(&freqs).unwrap();
        let (f_peak, _) = z
            .iter()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .copied()
            .unwrap();
        assert!(
            (f_peak - f_expected).abs() / f_expected < 0.10,
            "peak {f_peak:.3e} vs analytic {f_expected:.3e}"
        );
    }

    #[test]
    fn resonant_square_wave_droops_more_than_off_resonance() {
        let params = PdnParams::generic_mobile();
        let f_res = params.first_order_resonance_hz(2);
        let mut pdn = Pdn::new(params, 2);
        let cfg = TransientConfig::new(0.2e-9, 4e-6).with_warmup(2e-6);

        pdn.set_load(Stimulus::square(0.0, 1.0, f_res));
        let (v_res, _) = pdn.transient(&cfg).unwrap();

        pdn.set_load(Stimulus::square(0.0, 1.0, f_res / 3.5));
        let (v_off, _) = pdn.transient(&cfg).unwrap();

        assert!(
            v_res.peak_to_peak() > 1.5 * v_off.peak_to_peak(),
            "resonant p2p {} vs off-resonance {}",
            v_res.peak_to_peak(),
            v_off.peak_to_peak()
        );
    }

    #[test]
    fn supply_voltage_change_shifts_dc_level() {
        let mut pdn = Pdn::new(PdnParams::generic_mobile(), 2);
        pdn.set_supply_voltage(0.9);
        let cfg = TransientConfig::new(1e-9, 200e-9);
        let (v, _) = pdn.transient(&cfg).unwrap();
        assert!((v.mean() - 0.9).abs() < 1e-3);
    }

    #[test]
    fn planned_transient_matches_fresh_transient() {
        let params = PdnParams::generic_mobile();
        let f_res = params.first_order_resonance_hz(2);
        let mut pdn = Pdn::new(params, 2);
        let cfg = TransientConfig::new(0.5e-9, 2e-6).with_warmup(1e-6);
        let plan = pdn.plan_transient(cfg.dt).unwrap();
        for scale in [0.25, 1.0] {
            pdn.set_load(Stimulus::square(0.0, scale, f_res));
            let (v_fresh, i_fresh) = pdn.transient(&cfg).unwrap();
            let (v_plan, i_plan) = pdn.transient_with_plan(&plan, &cfg).unwrap();
            assert_eq!(v_fresh.samples(), v_plan.samples());
            assert_eq!(i_fresh.samples(), i_plan.samples());
        }
    }

    #[test]
    fn scoped_transient_matches_planned_bit_for_bit() {
        let params = PdnParams::generic_mobile();
        let f_res = params.first_order_resonance_hz(2);
        let mut pdn = Pdn::new(params, 2);
        let cfg = TransientConfig::new(0.5e-9, 2e-6).with_warmup(1e-6);
        let plan = pdn.plan_transient(cfg.dt).unwrap();
        let mut scratch = TransientScratch::new();
        for scale in [0.25, 1.0] {
            pdn.set_load(Stimulus::square(0.0, scale, f_res));
            let (v_full, i_full) = pdn.transient_with_plan(&plan, &cfg).unwrap();
            let die = pdn.transient_scoped(&plan, &cfg, &mut scratch).unwrap();
            assert_eq!(v_full.samples(), die.v_die());
            assert_eq!(i_full.samples(), die.i_die());
            assert_eq!(v_full.dt(), die.dt());
            assert_eq!(v_full.start_time(), die.start_time());
        }
    }

    /// Batched lanes through the PDN wrapper must reproduce serial
    /// `set_load` + `transient_scoped` runs bit-for-bit — what lets the
    /// platform layer batch GA candidates without changing results.
    #[test]
    fn batched_lanes_match_serial_scoped_runs() {
        let params = PdnParams::generic_mobile();
        let f_res = params.first_order_resonance_hz(2);
        let mut pdn = Pdn::new(params, 2);
        let cfg = TransientConfig::new(0.5e-9, 2e-6).with_warmup(1e-6);
        let plan = pdn.plan_transient(cfg.dt).unwrap();
        assert!(plan.uses_state_kernel(), "PDN is small: Auto picks it");

        let loads = [
            Stimulus::square(0.0, 0.5, f_res),
            Stimulus::Dc(0.2),
            Stimulus::square(0.1, 0.9, f_res / 2.0),
        ];
        let mut batch = emvolt_circuit::BatchTransientScratch::new();
        pdn.transient_batch(&plan, &cfg, &loads, &mut batch)
            .unwrap();

        let mut scratch = TransientScratch::new();
        for (i, load) in loads.iter().enumerate() {
            pdn.set_load(load.clone());
            let single = pdn.transient_scoped(&plan, &cfg, &mut scratch).unwrap();
            let lane = pdn.die_lane(&batch, i);
            assert_eq!(single.v_die(), lane.v_die(), "lane {i} voltage");
            assert_eq!(single.i_die(), lane.i_die(), "lane {i} current");
            assert_eq!(single.dt(), lane.dt());
            assert_eq!(single.start_time(), lane.start_time());
        }
    }

    #[test]
    fn i_die_oscillates_under_resonant_load() {
        let params = PdnParams::generic_mobile();
        let f_res = params.first_order_resonance_hz(2);
        let mut pdn = Pdn::new(params, 2);
        pdn.set_load(Stimulus::square(0.0, 0.5, f_res));
        let cfg = TransientConfig::new(0.2e-9, 3e-6).with_warmup(1.5e-6);
        let (_, i) = pdn.transient(&cfg).unwrap();
        // Resonant amplification: the inductor current swing exceeds the
        // 0.5 A load swing.
        assert!(i.peak_to_peak() > 0.5, "i_die p2p {}", i.peak_to_peak());
    }
}
