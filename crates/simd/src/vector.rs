//! The minimal f64 vector abstraction the shared kernels are generic
//! over.
//!
//! One implementation per dispatch level: plain `f64` (the scalar
//! reference, width 1), `__m128d`/`__m256d` on x86-64 and `float64x2_t`
//! on AArch64. Every arithmetic method is a *single* IEEE 754 operation
//! — in particular [`Vf64::fmadd`]/[`Vf64::fmsub`] are the fused,
//! correctly-rounded multiply-adds — so a kernel instantiated at any
//! width performs the identical per-element operation sequence and the
//! bit-equality contract holds by construction.

/// A vector of `W` lanes of `f64`.
///
/// # Safety
///
/// Implementations for target-specific vector types must only be *used*
/// (through the kernels in [`crate::kernels`]) from functions compiled
/// with the matching target features; the dispatch layer guarantees
/// those functions are only reached when the features are present at
/// runtime. `load`/`store` require `W` readable/writable `f64`s at the
/// pointer.
pub(crate) unsafe trait Vf64: Copy {
    /// Lane count.
    const W: usize;

    /// Loads `W` contiguous (unaligned) `f64`s.
    ///
    /// # Safety
    ///
    /// `p` must point to at least `W` readable `f64`s.
    unsafe fn load(p: *const f64) -> Self;

    /// Stores `W` contiguous (unaligned) `f64`s.
    ///
    /// # Safety
    ///
    /// `p` must point to at least `W` writable `f64`s.
    unsafe fn store(self, p: *mut f64);

    /// Broadcasts one value to every lane.
    fn splat(x: f64) -> Self;

    /// Lanewise `self - o`.
    fn sub(self, o: Self) -> Self;

    /// Lanewise `self * o` (single rounding).
    fn mul(self, o: Self) -> Self;

    /// Lanewise fused `self * b + c` (single rounding).
    fn fmadd(self, b: Self, c: Self) -> Self;

    /// Lanewise fused `self * b - c` (single rounding).
    fn fmsub(self, b: Self, c: Self) -> Self;
}

/// The scalar reference "vector": width 1, fused ops via
/// [`f64::mul_add`].
// SAFETY: width-1 loads/stores touch exactly the one element the
// caller's pointer contract provides; no target features involved.
unsafe impl Vf64 for f64 {
    const W: usize = 1;

    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller provides one readable f64.
        unsafe { *p }
    }

    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller provides one writable f64.
        unsafe { *p = self }
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        x
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        self - o
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        self * o
    }

    #[inline(always)]
    fn fmadd(self, b: Self, c: Self) -> Self {
        self.mul_add(b, c)
    }

    #[inline(always)]
    fn fmsub(self, b: Self, c: Self) -> Self {
        self.mul_add(b, -c)
    }
}
