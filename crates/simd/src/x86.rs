//! x86-64 dispatch targets: the shared kernels instantiated at 128-bit
//! (`__m128d`) and 256-bit (`__m256d`) widths, compiled with the
//! matching target features. Both tiers use FMA3 fused arithmetic —
//! that is what keeps them bit-identical to the scalar `mul_add`
//! reference — so both require the `fma` CPU feature at runtime (the
//! dispatch layer guarantees it).

use core::arch::x86_64::{
    __m128d, __m256d, _mm256_broadcast_sd, _mm256_fmadd_pd, _mm256_fmsub_pd, _mm256_loadu_pd,
    _mm256_mul_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm_fmadd_pd, _mm_fmsub_pd, _mm_loadu_pd,
    _mm_mul_pd, _mm_set1_pd, _mm_storeu_pd, _mm_sub_pd,
};

use crate::vector::Vf64;

// SAFETY: used only from `#[target_feature(enable = "sse2,fma")]`
// functions reached through runtime detection; loads/stores follow the
// trait's pointer contract.
unsafe impl Vf64 for __m128d {
    const W: usize = 2;

    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller provides two readable f64s.
        unsafe { _mm_loadu_pd(p) }
    }

    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller provides two writable f64s.
        unsafe { _mm_storeu_pd(p, self) }
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm_set1_pd(x) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm_sub_pd(self, o) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm_mul_pd(self, o) }
    }

    #[inline(always)]
    fn fmadd(self, b: Self, c: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm_fmadd_pd(self, b, c) }
    }

    #[inline(always)]
    fn fmsub(self, b: Self, c: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm_fmsub_pd(self, b, c) }
    }
}

// SAFETY: used only from `#[target_feature(enable = "avx2,fma")]`
// functions reached through runtime detection; loads/stores follow the
// trait's pointer contract.
unsafe impl Vf64 for __m256d {
    const W: usize = 4;

    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller provides four readable f64s.
        unsafe { _mm256_loadu_pd(p) }
    }

    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller provides four writable f64s.
        unsafe { _mm256_storeu_pd(p, self) }
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: operates on the value only; `broadcast_sd` takes a
        // reference to it.
        unsafe { _mm256_broadcast_sd(&x) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm256_sub_pd(self, o) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm256_mul_pd(self, o) }
    }

    #[inline(always)]
    fn fmadd(self, b: Self, c: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm256_fmadd_pd(self, b, c) }
    }

    #[inline(always)]
    fn fmsub(self, b: Self, c: Self) -> Self {
        // SAFETY: value-only intrinsic; the dispatch layer only
        // reaches this tier when its features are present.
        unsafe { _mm256_fmsub_pd(self, b, c) }
    }
}

/// The 128-bit tier.
pub(crate) mod sse2 {
    crate::kernels::target_kernels!("sse2,fma", core::arch::x86_64::__m128d);
}

/// The 256-bit tier.
pub(crate) mod avx2 {
    crate::kernels::target_kernels!("avx2,fma", core::arch::x86_64::__m256d);
}
