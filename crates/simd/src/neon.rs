//! AArch64 dispatch target: the shared kernels instantiated at the
//! 128-bit NEON width. `vfmaq_f64` is the fused, correctly-rounded
//! multiply-add, so this tier is bit-identical to the scalar `mul_add`
//! reference like the x86-64 tiers.

use core::arch::aarch64::{
    float64x2_t, vdupq_n_f64, vfmaq_f64, vld1q_f64, vmulq_f64, vnegq_f64, vst1q_f64, vsubq_f64,
};

use crate::vector::Vf64;

// SAFETY: used only from `#[target_feature(enable = "neon")]` functions
// reached through runtime detection; loads/stores follow the trait's
// pointer contract.
unsafe impl Vf64 for float64x2_t {
    const W: usize = 2;

    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller provides two readable f64s; NEON availability
        // is guaranteed by the dispatch layer.
        unsafe { vld1q_f64(p) }
    }

    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller provides two writable f64s.
        unsafe { vst1q_f64(p, self) }
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        // SAFETY: value-only intrinsic; NEON availability is guaranteed
        // by the dispatch layer.
        unsafe { vdupq_n_f64(x) }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: as in `splat`.
        unsafe { vsubq_f64(self, o) }
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: as in `splat`.
        unsafe { vmulq_f64(self, o) }
    }

    #[inline(always)]
    fn fmadd(self, b: Self, c: Self) -> Self {
        // `vfmaq_f64(acc, a, b)` computes `acc + a*b` fused.
        // SAFETY: as in `splat`.
        unsafe { vfmaq_f64(c, self, b) }
    }

    #[inline(always)]
    fn fmsub(self, b: Self, c: Self) -> Self {
        // `self*b - c` as `(-c) + self*b`, still one fused rounding.
        // SAFETY: as in `splat`.
        unsafe { vfmaq_f64(vnegq_f64(c), self, b) }
    }
}

crate::kernels::target_kernels!("neon", core::arch::aarch64::float64x2_t);
