//! The shared kernel bodies, generic over a [`Vf64`] width.
//!
//! Each kernel vectorizes only across *independent* elements (nodes,
//! lanes, bins): a block of `V::W` elements is advanced with one vector
//! op per scalar op of the reference sequence, and the sub-`W` tail
//! falls back to the literal scalar `mul_add` forms. Instantiated at
//! `f64` (width 1) the block loop *is* the reference sequence, so the
//! scalar dispatch level and the vector levels share one definition and
//! cannot drift apart.
//!
//! All functions are `unsafe` only because [`Vf64::load`]/[`Vf64::store`]
//! take raw pointers; every pointer passed stays inside the bounds of
//! the slice it came from. Callers must ensure the instantiated vector
//! type's target features are available (see [`crate::vector::Vf64`]).

use crate::vector::Vf64;

/// Emits one `#[target_feature]` entry point per kernel, instantiated
/// at a vector type — invoked once per dispatch tier by the per-arch
/// modules.
macro_rules! target_kernels {
    ($feat:literal, $vec:ty) => {
        /// [`crate::SimdLevel::fold_cols`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn fold_cols(
            cols: &[f64],
            n_nodes: usize,
            inputs: &[f64],
            xn: &mut [f64],
        ) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::fold_cols::<$vec>(cols, n_nodes, inputs, xn) }
        }

        /// [`crate::SimdLevel::fold_cols_lanes`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn fold_cols_lanes(
            cols: &[f64],
            n_nodes: usize,
            inputs: &[f64],
            lanes: usize,
            xn: &mut [f64],
        ) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::fold_cols_lanes::<$vec>(cols, n_nodes, inputs, lanes, xn) }
        }

        /// [`crate::SimdLevel::gather_hist`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn gather_hist(
            g: &[f64],
            v: &[f64],
            i: &[f64],
            lanes: usize,
            out: &mut [f64],
        ) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::gather_hist::<$vec>(g, v, i, lanes, out) }
        }

        /// [`crate::SimdLevel::cap_updates`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn cap_updates(
            g: &[f64],
            rows: &[[u32; 2]],
            state: &[f64],
            lanes: usize,
            v: &mut [f64],
            i: &mut [f64],
        ) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::cap_updates::<$vec>(g, rows, state, lanes, v, i) }
        }

        /// [`crate::SimdLevel::ind_updates`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn ind_updates(
            g: &[f64],
            rows: &[[u32; 2]],
            state: &[f64],
            lanes: usize,
            v: &mut [f64],
            i: &mut [f64],
        ) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::ind_updates::<$vec>(g, rows, state, lanes, v, i) }
        }

        /// [`crate::SimdLevel::goertzel`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn goertzel(
            samples: &[f64],
            coeff: &[f64],
            s1: &mut [f64],
            s2: &mut [f64],
        ) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::goertzel::<$vec>(samples, coeff, s1, s2) }
        }

        /// [`crate::SimdLevel::mul`] at this tier's width.
        ///
        /// # Safety
        ///
        /// The tier's target features must be present at runtime.
        #[target_feature(enable = $feat)]
        pub(crate) unsafe fn mul(x: &[f64], y: &[f64], out: &mut [f64]) {
            // SAFETY: forwarded contract.
            unsafe { crate::kernels::mul::<$vec>(x, y, out) }
        }
    };
}

pub(crate) use target_kernels;

/// Serial response-column fold; see [`crate::SimdLevel::fold_cols`].
#[inline(always)]
pub(crate) unsafe fn fold_cols<V: Vf64>(
    cols: &[f64],
    n_nodes: usize,
    inputs: &[f64],
    xn: &mut [f64],
) {
    debug_assert_eq!(xn.len(), n_nodes);
    debug_assert_eq!(cols.len(), n_nodes * inputs.len());
    xn.fill(0.0);
    for (col, &w) in cols.chunks_exact(n_nodes.max(1)).zip(inputs) {
        let wv = V::splat(w);
        let mut ci = col.chunks_exact(V::W);
        let mut xi = xn.chunks_exact_mut(V::W);
        for (c, x) in ci.by_ref().zip(xi.by_ref()) {
            // SAFETY: both chunks hold exactly V::W elements.
            unsafe {
                wv.fmadd(V::load(c.as_ptr()), V::load(x.as_ptr()))
                    .store(x.as_mut_ptr())
            };
        }
        for (x, &c) in xi.into_remainder().iter_mut().zip(ci.remainder()) {
            *x = w.mul_add(c, *x);
        }
    }
}

/// Lane-major batched fold; see [`crate::SimdLevel::fold_cols_lanes`].
#[inline(always)]
pub(crate) unsafe fn fold_cols_lanes<V: Vf64>(
    cols: &[f64],
    n_nodes: usize,
    inputs: &[f64],
    lanes: usize,
    xn: &mut [f64],
) {
    debug_assert!(lanes > 0);
    debug_assert_eq!(xn.len(), n_nodes * lanes);
    debug_assert_eq!(inputs.len() * n_nodes, cols.len() * lanes);
    xn.fill(0.0);
    for (col, w) in cols
        .chunks_exact(n_nodes.max(1))
        .zip(inputs.chunks_exact(lanes))
    {
        for (&ci, acc) in col.iter().zip(xn.chunks_exact_mut(lanes)) {
            let cv = V::splat(ci);
            let mut wl = w.chunks_exact(V::W);
            let mut al = acc.chunks_exact_mut(V::W);
            for (wc, ac) in wl.by_ref().zip(al.by_ref()) {
                // SAFETY: both chunks hold exactly V::W elements.
                unsafe {
                    V::load(wc.as_ptr())
                        .fmadd(cv, V::load(ac.as_ptr()))
                        .store(ac.as_mut_ptr())
                };
            }
            for (a, &wv) in al.into_remainder().iter_mut().zip(wl.remainder()) {
                *a = wv.mul_add(ci, *a);
            }
        }
    }
}

/// Trapezoidal history gather; see [`crate::SimdLevel::gather_hist`].
#[inline(always)]
pub(crate) unsafe fn gather_hist<V: Vf64>(
    g: &[f64],
    v: &[f64],
    i: &[f64],
    lanes: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), g.len() * lanes);
    debug_assert_eq!(v.len(), out.len());
    debug_assert_eq!(i.len(), out.len());
    if lanes == 1 {
        // Serial gather: vectorize across the element dimension.
        let mut gc = g.chunks_exact(V::W);
        let mut vc = v.chunks_exact(V::W);
        let mut ic = i.chunks_exact(V::W);
        let mut oc = out.chunks_exact_mut(V::W);
        for (((gk, vk), ik), ok) in gc
            .by_ref()
            .zip(vc.by_ref())
            .zip(ic.by_ref())
            .zip(oc.by_ref())
        {
            // SAFETY: all chunks hold exactly V::W elements.
            unsafe {
                V::load(gk.as_ptr())
                    .fmadd(V::load(vk.as_ptr()), V::load(ik.as_ptr()))
                    .store(ok.as_mut_ptr())
            };
        }
        for (((&gk, &vk), &ik), ok) in gc
            .remainder()
            .iter()
            .zip(vc.remainder())
            .zip(ic.remainder())
            .zip(oc.into_remainder())
        {
            *ok = gk.mul_add(vk, ik);
        }
        return;
    }
    // Batched gather: vectorize across the lane dimension per element.
    for (k, &gk) in g.iter().enumerate() {
        let row = k * lanes;
        let gv = V::splat(gk);
        let mut vc = v[row..row + lanes].chunks_exact(V::W);
        let mut ic = i[row..row + lanes].chunks_exact(V::W);
        let mut oc = out[row..row + lanes].chunks_exact_mut(V::W);
        for ((vk, ik), ok) in vc.by_ref().zip(ic.by_ref()).zip(oc.by_ref()) {
            // SAFETY: all chunks hold exactly V::W elements.
            unsafe {
                gv.fmadd(V::load(vk.as_ptr()), V::load(ik.as_ptr()))
                    .store(ok.as_mut_ptr())
            };
        }
        for ((&vk, &ik), ok) in vc
            .remainder()
            .iter()
            .zip(ic.remainder())
            .zip(oc.into_remainder())
        {
            *ok = gk.mul_add(vk, ik);
        }
    }
}

/// Companion update shared by capacitors (`CAP = true`, history enters
/// with a minus) and inductors (`CAP = false`, plus); see
/// [`crate::SimdLevel::cap_updates`] / [`crate::SimdLevel::ind_updates`].
#[inline(always)]
unsafe fn elem_updates<V: Vf64, const CAP: bool>(
    g: &[f64],
    rows: &[[u32; 2]],
    state: &[f64],
    lanes: usize,
    v: &mut [f64],
    i: &mut [f64],
) {
    debug_assert!(lanes > 0);
    debug_assert_eq!(rows.len(), g.len());
    debug_assert_eq!(v.len(), g.len() * lanes);
    debug_assert_eq!(i.len(), v.len());
    for (k, (&gk, row)) in g.iter().zip(rows).enumerate() {
        let a = row[0] as usize * lanes;
        let b = row[1] as usize * lanes;
        let base = k * lanes;
        let gv = V::splat(gk);
        let sa = &state[a..a + lanes];
        let sb = &state[b..b + lanes];
        let mut l = 0;
        while l + V::W <= lanes {
            // SAFETY: `l + V::W <= lanes` keeps every pointer within its
            // slice's row.
            unsafe {
                let vn = V::load(sa.as_ptr().add(l)).sub(V::load(sb.as_ptr().add(l)));
                let hist = gv.fmadd(
                    V::load(v.as_ptr().add(base + l)),
                    V::load(i.as_ptr().add(base + l)),
                );
                let next = if CAP {
                    gv.fmsub(vn, hist)
                } else {
                    gv.fmadd(vn, hist)
                };
                next.store(i.as_mut_ptr().add(base + l));
                vn.store(v.as_mut_ptr().add(base + l));
            }
            l += V::W;
        }
        while l < lanes {
            let vn = sa[l] - sb[l];
            let hist = gk.mul_add(v[base + l], i[base + l]);
            i[base + l] = if CAP {
                gk.mul_add(vn, -hist)
            } else {
                gk.mul_add(vn, hist)
            };
            v[base + l] = vn;
            l += 1;
        }
    }
}

/// Capacitor companion update; see [`crate::SimdLevel::cap_updates`].
#[inline(always)]
pub(crate) unsafe fn cap_updates<V: Vf64>(
    g: &[f64],
    rows: &[[u32; 2]],
    state: &[f64],
    lanes: usize,
    v: &mut [f64],
    i: &mut [f64],
) {
    // SAFETY: forwarded contract.
    unsafe { elem_updates::<V, true>(g, rows, state, lanes, v, i) }
}

/// Inductor companion update; see [`crate::SimdLevel::ind_updates`].
#[inline(always)]
pub(crate) unsafe fn ind_updates<V: Vf64>(
    g: &[f64],
    rows: &[[u32; 2]],
    state: &[f64],
    lanes: usize,
    v: &mut [f64],
    i: &mut [f64],
) {
    // SAFETY: forwarded contract.
    unsafe { elem_updates::<V, false>(g, rows, state, lanes, v, i) }
}

/// Goertzel recurrence; see [`crate::SimdLevel::goertzel`]. Quad-sample
/// outer loop over bin-vector blocks, exactly the shape of the historic
/// scalar loop — four samples advance per state load/store so the pass
/// stays memory-lean, and per bin the chain is the single-sample
/// recurrence unrolled.
#[inline(always)]
pub(crate) unsafe fn goertzel<V: Vf64>(
    samples: &[f64],
    coeff: &[f64],
    s1: &mut [f64],
    s2: &mut [f64],
) {
    let nb = coeff.len();
    debug_assert_eq!(s1.len(), nb);
    debug_assert_eq!(s2.len(), nb);
    let mut quads = samples.chunks_exact(4);
    for quad in quads.by_ref() {
        let (x0, x1, x2, x3) = (quad[0], quad[1], quad[2], quad[3]);
        let (v0, v1, v2, v3) = (V::splat(x0), V::splat(x1), V::splat(x2), V::splat(x3));
        let mut j = 0;
        while j + V::W <= nb {
            // SAFETY: `j + V::W <= nb` bounds every pointer.
            unsafe {
                let c = V::load(coeff.as_ptr().add(j));
                let a = V::load(s1.as_ptr().add(j));
                let b = V::load(s2.as_ptr().add(j));
                let t0 = c.fmadd(a, v0.sub(b));
                let t1 = c.fmadd(t0, v1.sub(a));
                let t2 = c.fmadd(t1, v2.sub(t0));
                let t3 = c.fmadd(t2, v3.sub(t1));
                t3.store(s1.as_mut_ptr().add(j));
                t2.store(s2.as_mut_ptr().add(j));
            }
            j += V::W;
        }
        while j < nb {
            let c = coeff[j];
            let (a, b) = (s1[j], s2[j]);
            let t0 = c.mul_add(a, x0 - b);
            let t1 = c.mul_add(t0, x1 - a);
            let t2 = c.mul_add(t1, x2 - t0);
            let t3 = c.mul_add(t2, x3 - t1);
            s1[j] = t3;
            s2[j] = t2;
            j += 1;
        }
    }
    for &xv in quads.remainder() {
        for ((c, a), b) in coeff.iter().zip(s1.iter_mut()).zip(s2.iter_mut()) {
            let s0 = c.mul_add(*a, xv - *b);
            *b = *a;
            *a = s0;
        }
    }
}

/// Elementwise product; see [`crate::SimdLevel::mul`].
#[inline(always)]
pub(crate) unsafe fn mul<V: Vf64>(x: &[f64], y: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(y.len(), out.len());
    let mut xc = x.chunks_exact(V::W);
    let mut yc = y.chunks_exact(V::W);
    let mut oc = out.chunks_exact_mut(V::W);
    for ((xk, yk), ok) in xc.by_ref().zip(yc.by_ref()).zip(oc.by_ref()) {
        // SAFETY: all chunks hold exactly V::W elements.
        unsafe {
            V::load(xk.as_ptr())
                .mul(V::load(yk.as_ptr()))
                .store(ok.as_mut_ptr())
        };
    }
    for ((&xk, &yk), ok) in xc
        .remainder()
        .iter()
        .zip(yc.remainder())
        .zip(oc.into_remainder())
    {
        *ok = xk * yk;
    }
}
