//! # emvolt-simd
//!
//! Runtime-dispatched SIMD kernels for the measurement chain's hot
//! loops: the state-space response-column folds, the SoA history
//! gather / companion-update loops, the Goertzel recurrence and the
//! elementwise products of the band pipeline.
//!
//! ## Dispatch contract
//!
//! A [`SimdLevel`] is resolved once per call site from, in priority
//! order: the in-process [`force_level`] test hook, the `EMVOLT_SIMD`
//! environment variable (`scalar`, `sse2`, `avx2`, `neon` or `auto`),
//! and CPU feature detection. Requests above the host's capability are
//! clamped to the best supported level, so every resolved level is safe
//! to execute.
//!
//! ## Bit-equality contract
//!
//! Every operation is defined by its scalar reference sequence, written
//! in terms of [`f64::mul_add`] — the IEEE 754 correctly-rounded fused
//! multiply-add. The vector paths execute the *identical* per-element
//! operation sequence with hardware FMA instructions (which implement
//! the same correctly-rounded fused operation), and vectorize only
//! across independent elements (nodes, lanes, bins) — never across a
//! sequential accumulation or recurrence dimension. Each element
//! therefore sees the same operations on the same values in the same
//! order at every dispatch level, and results are `to_bits`-identical
//! across `scalar`, `sse2`, `avx2` and `neon`. The property tests in
//! `tests/bit_identity.rs` pin this for every supported level.
//!
//! ```
//! use emvolt_simd::SimdLevel;
//!
//! let x = [1.0, 2.0, 3.0];
//! let y = [4.0, 5.0, 6.0];
//! let mut a = [0.0; 3];
//! let mut b = [0.0; 3];
//! emvolt_simd::level().mul(&x, &y, &mut a);
//! SimdLevel::Scalar.mul(&x, &y, &mut b);
//! assert_eq!(a, b);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

mod kernels;
mod vector;

#[cfg(target_arch = "x86_64")]
mod x86;

#[cfg(target_arch = "aarch64")]
mod neon;

/// A dispatchable instruction-set level. Ordered by capability within
/// each architecture; levels from foreign architectures are clamped to
/// the local capability ladder when requested (see [`level`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable reference path: scalar `f64::mul_add` sequences.
    Scalar,
    /// x86-64 128-bit path (SSE2 registers, FMA3 arithmetic).
    Sse2,
    /// x86-64 256-bit path (AVX2 registers, FMA3 arithmetic).
    Avx2,
    /// AArch64 128-bit path (NEON registers, fused `vfmaq_f64`).
    Neon,
}

/// The capability ladder of the compiled architecture, weakest first.
#[cfg(target_arch = "x86_64")]
const LADDER: &[SimdLevel] = &[SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];
/// The capability ladder of the compiled architecture, weakest first.
#[cfg(target_arch = "aarch64")]
const LADDER: &[SimdLevel] = &[SimdLevel::Scalar, SimdLevel::Neon];
/// The capability ladder of the compiled architecture, weakest first.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const LADDER: &[SimdLevel] = &[SimdLevel::Scalar];

impl SimdLevel {
    /// Parses a level name as accepted by `EMVOLT_SIMD`.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }

    /// The canonical name [`SimdLevel::parse`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Architecture-independent capability rank used for clamping:
    /// scalar < (sse2 ~ neon) < avx2.
    fn rank(self) -> usize {
        match self {
            SimdLevel::Scalar => 0,
            SimdLevel::Sse2 | SimdLevel::Neon => 1,
            SimdLevel::Avx2 => 2,
        }
    }

    /// Stable small-integer code (1-based), distinct per level — the
    /// value surfaced through the observability counter.
    pub fn code(self) -> u8 {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 2,
            SimdLevel::Avx2 => 3,
            SimdLevel::Neon => 4,
        }
    }

    fn from_code(code: u8) -> Option<SimdLevel> {
        match code {
            1 => Some(SimdLevel::Scalar),
            2 => Some(SimdLevel::Sse2),
            3 => Some(SimdLevel::Avx2),
            4 => Some(SimdLevel::Neon),
            _ => None,
        }
    }

    /// How many `f64`s one vector register of this level holds.
    pub fn vector_f64s(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 | SimdLevel::Neon => 2,
            SimdLevel::Avx2 => 4,
        }
    }

    /// Whether this level can execute on the current host.
    pub fn is_supported(self) -> bool {
        LADDER.contains(&self) && self.rank() <= detected_level().rank()
    }

    #[inline]
    fn assert_supported(self) {
        assert!(
            self.is_supported(),
            "SIMD level `{}` is not supported on this host (detected `{}`)",
            self.as_str(),
            detected_level().as_str()
        );
    }
}

/// CPU-feature detection, evaluated once per process.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    // Both vector tiers run FMA3 arithmetic (the fused ops are what keep
    // them bit-identical to the scalar `mul_add` reference), so each
    // requires the `fma` feature on top of its register width.
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        SimdLevel::Avx2
    } else if is_x86_feature_detected!("fma") {
        SimdLevel::Sse2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(target_arch = "aarch64")]
fn detect() -> SimdLevel {
    if std::arch::is_aarch64_feature_detected!("neon") {
        SimdLevel::Neon
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

/// The `EMVOLT_SIMD` request, read once per process. `auto` and an
/// unset/empty variable mean "no request".
///
/// # Panics
///
/// Panics on an unrecognized value — a misspelled override silently
/// running a different path would defeat its testing purpose.
fn env_request() -> Option<SimdLevel> {
    static ENV: OnceLock<Option<SimdLevel>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("EMVOLT_SIMD") {
        Err(_) => None,
        Ok(v) if v.is_empty() || v == "auto" => None,
        Ok(v) => Some(SimdLevel::parse(&v).unwrap_or_else(|| {
            panic!("EMVOLT_SIMD=`{v}` is not one of scalar|sse2|avx2|neon|auto")
        })),
    })
}

/// In-process override installed by [`force_level`]: 0 = none, else a
/// [`SimdLevel::code`]. Takes priority over `EMVOLT_SIMD` so tests can
/// sweep levels within one process regardless of the environment.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces the dispatched level for this process (test hook), or clears
/// the override with `None`. Like the environment request, a forced
/// level is clamped to the host's capability, so forcing is always safe
/// — and, by the bit-equality contract, invisible in results.
pub fn force_level(level: Option<SimdLevel>) {
    FORCED.store(level.map_or(0, SimdLevel::code), Ordering::Relaxed);
}

/// Clamps a requested level to the host ladder: the requested
/// *capability rank* is limited to the detected rank and mapped onto
/// this architecture's ladder (so e.g. requesting `avx2` on an AArch64
/// host resolves to `neon`, and requesting `neon` on an SSE2-only
/// x86-64 host resolves to `sse2`).
fn clamp(requested: SimdLevel) -> SimdLevel {
    let rank = requested
        .rank()
        .min(detected_level().rank())
        .min(LADDER.len() - 1);
    LADDER[rank]
}

/// The level the process dispatches to right now: the [`force_level`]
/// override if set, else the `EMVOLT_SIMD` request, else detection —
/// always clamped to what the host supports.
pub fn level() -> SimdLevel {
    if let Some(forced) = SimdLevel::from_code(FORCED.load(Ordering::Relaxed)) {
        return clamp(forced);
    }
    match env_request() {
        Some(requested) => clamp(requested),
        None => detected_level(),
    }
}

/// Every level the host can execute, weakest first. Test sweeps iterate
/// this instead of hardcoding an architecture's ladder.
pub fn supported_levels() -> &'static [SimdLevel] {
    &LADDER[..=detected_level().rank().min(LADDER.len() - 1)]
}

/// Default evaluation lane width derived from the dispatched vector
/// width: two vector registers per SoA row (`2 x 4` lanes on AVX2 —
/// wide enough to amortize response-column loads across lanes, narrow
/// enough that per-lane state still fits L1), floored at 4 so scalar
/// and 128-bit hosts keep amortizing the batched chain's shared setup.
pub fn preferred_lanes() -> usize {
    (level().vector_f64s() * 2).max(4)
}

macro_rules! dispatch_ops {
    ($($(#[$doc:meta])* fn $name:ident($($arg:ident : $ty:ty),* $(,)?);)+) => {
        impl SimdLevel {
            $(
            $(#[$doc])*
            ///
            /// # Panics
            ///
            /// Panics if this level is not supported on the host (levels
            /// resolved through [`level`] always are).
            #[inline]
            pub fn $name(self, $($arg: $ty),*) {
                self.assert_supported();
                match self {
                    // SAFETY: the scalar kernel instantiation performs no
                    // target-specific operations; `unsafe` only satisfies
                    // the shared kernel signature.
                    SimdLevel::Scalar => unsafe { kernels::$name::<f64>($($arg),*) },
                    // SAFETY: `assert_supported` guarantees the required
                    // CPU features are present at runtime.
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Sse2 => unsafe { x86::sse2::$name($($arg),*) },
                    // SAFETY: as above.
                    #[cfg(target_arch = "x86_64")]
                    SimdLevel::Avx2 => unsafe { x86::avx2::$name($($arg),*) },
                    // SAFETY: as above.
                    #[cfg(target_arch = "aarch64")]
                    SimdLevel::Neon => unsafe { neon::$name($($arg),*) },
                    // Foreign-architecture variants never pass
                    // `assert_supported`, but the match must stay
                    // exhaustive on every target.
                    #[allow(unreachable_patterns)]
                    _ => unreachable!("unsupported level passed assert_supported"),
                }
            }
            )+
        }
    };
}

dispatch_ops! {
    /// Serial response-column fold: zeroes `xn` (length `n_nodes`), then
    /// accumulates `xn[i] = inputs[j].mul_add(cols[j*n_nodes + i], xn[i])`
    /// in ascending `j` — the state-space kernel's per-step solve.
    /// Vectorized across the node dimension; the `j` accumulation order
    /// is preserved exactly.
    fn fold_cols(cols: &[f64], n_nodes: usize, inputs: &[f64], xn: &mut [f64]);

    /// Lane-major batched fold: `inputs` is `[n_inputs x lanes]`, `xn`
    /// `[n_nodes x lanes]`; per lane the operation sequence is exactly
    /// [`SimdLevel::fold_cols`]'s. Vectorized across the lane dimension,
    /// so each response-column entry is loaded once for all lanes.
    fn fold_cols_lanes(cols: &[f64], n_nodes: usize, inputs: &[f64], lanes: usize, xn: &mut [f64]);

    /// Trapezoidal history gather, `out[k*lanes + l] =
    /// g[k].mul_add(v[k*lanes + l], i[k*lanes + l])` — the per-step
    /// input for one reactive-element class. With `lanes == 1` this is
    /// the serial gather, vectorized across elements; with wider lanes
    /// it vectorizes across the lane dimension per element.
    fn gather_hist(g: &[f64], v: &[f64], i: &[f64], lanes: usize, out: &mut [f64]);

    /// Capacitor companion update over lane-major SoA state: per element
    /// `k` (node rows `rows[k]`) and lane `l`, with `vn = state[a+l] -
    /// state[b+l]`: `hist = g[k].mul_add(v, i); i = g[k].mul_add(vn,
    /// -hist); v = vn` — the fused form of the trapezoidal capacitor
    /// step. `state` is node-major `[rows x lanes]` (`lanes == 1` is a
    /// serial scratch's `v`).
    fn cap_updates(
        g: &[f64],
        rows: &[[u32; 2]],
        state: &[f64],
        lanes: usize,
        v: &mut [f64],
        i: &mut [f64],
    );

    /// Inductor companion update, the `+hist` counterpart of
    /// [`SimdLevel::cap_updates`]: `hist = g[k].mul_add(v, i); i =
    /// g[k].mul_add(vn, hist); v = vn`.
    fn ind_updates(
        g: &[f64],
        rows: &[[u32; 2]],
        state: &[f64],
        lanes: usize,
        v: &mut [f64],
        i: &mut [f64],
    );

    /// Goertzel recurrence over one sample record for all bins: per bin
    /// `j` and sample `x`, `t = coeff[j].mul_add(s1[j], x - s2[j]);
    /// s2[j] = s1[j]; s1[j] = t`, advanced four samples per state pass
    /// (the quad form is the unrolled single-sample form — identical
    /// arithmetic). Vectorized across bins; each bin's chain runs in
    /// sample order.
    fn goertzel(samples: &[f64], coeff: &[f64], s1: &mut [f64], s2: &mut [f64]);

    /// Elementwise product `out[i] = x[i] * y[i]` — window application
    /// and band transfer scaling. A single rounding per element, so
    /// trivially identical at every level.
    fn mul(x: &[f64], y: &[f64], out: &mut [f64]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random doubles in (-1, 1).
    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn parse_round_trips() {
        for l in [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Neon,
        ] {
            assert_eq!(SimdLevel::parse(l.as_str()), Some(l));
            assert_eq!(SimdLevel::from_code(l.code()), Some(l));
        }
        assert_eq!(SimdLevel::parse("bogus"), None);
    }

    #[test]
    fn ladder_is_ranked_and_scalar_rooted() {
        assert_eq!(LADDER[0], SimdLevel::Scalar);
        for (rank, l) in LADDER.iter().enumerate() {
            assert_eq!(l.rank(), rank);
        }
        assert!(SimdLevel::Scalar.is_supported());
        assert!(detected_level().is_supported());
    }

    #[test]
    fn force_level_overrides_and_clears() {
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(level(), SimdLevel::Scalar);
        // A request above the host capability clamps instead of failing.
        force_level(Some(SimdLevel::Avx2));
        assert!(level().rank() <= detected_level().rank());
        force_level(None);
        assert_eq!(level().rank(), level().rank().min(detected_level().rank()));
    }

    #[test]
    fn supported_levels_end_at_detection() {
        let levels = supported_levels();
        assert_eq!(levels.first(), Some(&SimdLevel::Scalar));
        assert_eq!(levels.last(), Some(&detected_level()));
    }

    #[test]
    fn preferred_lanes_track_vector_width() {
        let lanes = preferred_lanes();
        assert!(lanes >= 4);
        assert!(lanes >= level().vector_f64s());
        assert_eq!(SimdLevel::Avx2.vector_f64s() * 2, 8);
    }

    /// Every op, every supported level, odd sizes (full blocks plus
    /// remainders) — `to_bits`-identical to the scalar reference. The
    /// broader randomized sweep lives in `tests/bit_identity.rs`.
    #[test]
    fn all_ops_match_scalar_reference() {
        let (n_nodes, n_inputs) = (7, 5);
        let cols = lcg(0xC0, n_inputs * n_nodes);
        for &lv in supported_levels() {
            for lanes in [1usize, 3, 4, 8] {
                let inputs = lcg(0xF0 + lanes as u64, n_inputs * lanes);
                let mut want = vec![0.0; n_nodes * lanes];
                let mut got = want.clone();
                SimdLevel::Scalar.fold_cols_lanes(&cols, n_nodes, &inputs, lanes, &mut want);
                lv.fold_cols_lanes(&cols, n_nodes, &inputs, lanes, &mut got);
                assert_eq!(bits(&want), bits(&got), "fold_cols_lanes {lanes} @ {lv:?}");

                let n_elems = 5;
                let g = lcg(1, n_elems);
                let v = lcg(2, n_elems * lanes);
                let i = lcg(3, n_elems * lanes);
                let mut want = vec![0.0; n_elems * lanes];
                let mut got = want.clone();
                SimdLevel::Scalar.gather_hist(&g, &v, &i, lanes, &mut want);
                lv.gather_hist(&g, &v, &i, lanes, &mut got);
                assert_eq!(bits(&want), bits(&got), "gather_hist {lanes} @ {lv:?}");

                let rows: Vec<[u32; 2]> = (0..n_elems as u32).map(|k| [k + 1, k % 2]).collect();
                let state = lcg(4, (n_elems + 1) * lanes);
                for cap in [true, false] {
                    let (mut v1, mut i1) = (v.clone(), i.clone());
                    let (mut v2, mut i2) = (v.clone(), i.clone());
                    if cap {
                        SimdLevel::Scalar.cap_updates(&g, &rows, &state, lanes, &mut v1, &mut i1);
                        lv.cap_updates(&g, &rows, &state, lanes, &mut v2, &mut i2);
                    } else {
                        SimdLevel::Scalar.ind_updates(&g, &rows, &state, lanes, &mut v1, &mut i1);
                        lv.ind_updates(&g, &rows, &state, lanes, &mut v2, &mut i2);
                    }
                    assert_eq!(bits(&v1), bits(&v2), "updates v cap={cap} @ {lv:?}");
                    assert_eq!(bits(&i1), bits(&i2), "updates i cap={cap} @ {lv:?}");
                }
            }

            let serial = lcg(5, n_inputs);
            let mut want = vec![0.0; n_nodes];
            let mut got = want.clone();
            SimdLevel::Scalar.fold_cols(&cols, n_nodes, &serial, &mut want);
            lv.fold_cols(&cols, n_nodes, &serial, &mut got);
            assert_eq!(bits(&want), bits(&got), "fold_cols @ {lv:?}");

            for (n, nb) in [(13usize, 6usize), (16, 1), (4, 5), (3, 9)] {
                let samples = lcg(6, n);
                let coeff = lcg(7, nb);
                let (mut a1, mut b1) = (lcg(8, nb), lcg(9, nb));
                let (mut a2, mut b2) = (a1.clone(), b1.clone());
                SimdLevel::Scalar.goertzel(&samples, &coeff, &mut a1, &mut b1);
                lv.goertzel(&samples, &coeff, &mut a2, &mut b2);
                assert_eq!(bits(&a1), bits(&a2), "goertzel s1 n={n} nb={nb} @ {lv:?}");
                assert_eq!(bits(&b1), bits(&b2), "goertzel s2 n={n} nb={nb} @ {lv:?}");
            }

            let (x, y) = (lcg(10, 11), lcg(11, 11));
            let mut want = vec![0.0; 11];
            let mut got = want.clone();
            SimdLevel::Scalar.mul(&x, &y, &mut want);
            lv.mul(&x, &y, &mut got);
            assert_eq!(bits(&want), bits(&got), "mul @ {lv:?}");
        }
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}
