//! Property tests pinning the crate's bit-equality contract: every
//! dispatch level supported on the host must produce byte-for-byte the
//! same results as the scalar `mul_add` reference, for every op, across
//! randomized shapes, lane counts, and data.

use emvolt_simd::{supported_levels, SimdLevel};
use proptest::prelude::*;

/// Finite, well-scaled sample values.
fn vals(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3f64..1.0e3, len)
}

fn bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Runs `op` once per supported level and asserts the output bits match
/// the scalar run exactly.
fn assert_levels_match(mut op: impl FnMut(SimdLevel) -> Vec<Vec<u64>>) {
    let reference = op(SimdLevel::Scalar);
    for &lv in supported_levels() {
        let got = op(lv);
        assert_eq!(
            got,
            reference,
            "level {} diverged from scalar reference",
            lv.as_str()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fold_cols_matches_scalar(
        n_nodes in 1usize..12,
        n_inputs in 1usize..10,
        seed in vals(12 * 10 + 10),
    ) {
        let cols = &seed[..n_nodes * n_inputs];
        let inputs = &seed[n_nodes * n_inputs..n_nodes * n_inputs + n_inputs];
        assert_levels_match(|lv| {
            let mut xn = vec![0.0; n_nodes];
            lv.fold_cols(cols, n_nodes, inputs, &mut xn);
            vec![bits(&xn)]
        });
    }

    #[test]
    fn fold_cols_lanes_matches_scalar(
        n_nodes in 1usize..8,
        n_inputs in 1usize..6,
        lanes in 1usize..9,
        seed in vals(8 * 6 + 6 * 8),
    ) {
        let cols = &seed[..n_nodes * n_inputs];
        let inputs = &seed[n_nodes * n_inputs..n_nodes * n_inputs + n_inputs * lanes];
        assert_levels_match(|lv| {
            let mut xn = vec![0.0; n_nodes * lanes];
            lv.fold_cols_lanes(cols, n_nodes, inputs, lanes, &mut xn);
            vec![bits(&xn)]
        });
    }

    #[test]
    fn gather_hist_matches_scalar(
        n in 1usize..24,
        lanes in 1usize..9,
        seed in vals(24 + 2 * 24 * 8),
    ) {
        let g = &seed[..n];
        let v = &seed[n..n + n * lanes];
        let i = &seed[n + n * lanes..n + 2 * n * lanes];
        assert_levels_match(|lv| {
            let mut out = vec![0.0; n * lanes];
            lv.gather_hist(g, v, i, lanes, &mut out);
            vec![bits(&out)]
        });
    }

    #[test]
    fn elem_updates_match_scalar(
        n in 1usize..16,
        n_rows in 2usize..8,
        lanes in 1usize..9,
        row_seed in prop::collection::vec(0u32..8, 2 * 16),
        seed in vals(16 + 8 * 8 + 2 * 16 * 8),
        cap in any::<bool>(),
    ) {
        let rows: Vec<[u32; 2]> = (0..n)
            .map(|k| [row_seed[2 * k] % n_rows as u32, row_seed[2 * k + 1] % n_rows as u32])
            .collect();
        let g = &seed[..n];
        let state = &seed[n..n + n_rows * lanes];
        let v0 = &seed[n + n_rows * lanes..n + n_rows * lanes + n * lanes];
        let i0 = &seed[n + n_rows * lanes + n * lanes..n + n_rows * lanes + 2 * n * lanes];
        assert_levels_match(|lv| {
            let mut v = v0.to_vec();
            let mut i = i0.to_vec();
            if cap {
                lv.cap_updates(g, &rows, state, lanes, &mut v, &mut i);
            } else {
                lv.ind_updates(g, &rows, state, lanes, &mut v, &mut i);
            }
            vec![bits(&v), bits(&i)]
        });
    }

    #[test]
    fn goertzel_matches_scalar(
        n_samples in 1usize..64,
        n_bins in 1usize..24,
        samples in vals(64),
        coeff in prop::collection::vec(-2.0f64..2.0, 24),
        state in vals(2 * 24),
    ) {
        let samples = &samples[..n_samples];
        let coeff = &coeff[..n_bins];
        assert_levels_match(|lv| {
            let mut s1 = state[..n_bins].to_vec();
            let mut s2 = state[24..24 + n_bins].to_vec();
            lv.goertzel(samples, coeff, &mut s1, &mut s2);
            vec![bits(&s1), bits(&s2)]
        });
    }

    #[test]
    fn mul_matches_scalar(n in 1usize..64, seed in vals(2 * 64)) {
        let x = &seed[..n];
        let y = &seed[64..64 + n];
        assert_levels_match(|lv| {
            let mut out = vec![0.0; n];
            lv.mul(x, y, &mut out);
            vec![bits(&out)]
        });
    }
}
