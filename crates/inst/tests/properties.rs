//! Property-based tests for the instrument models.

use emvolt_circuit::Trace;
use emvolt_dsp::{Spectrum, Window};
use emvolt_inst::{AnalyzerConfig, Oscilloscope, ScopeConfig, SpectrumAnalyzer};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn tone_spectrum(f0: f64, amp_v: f64) -> Spectrum {
    let fs = 1e9;
    let n = 4096;
    let s: Vec<f64> = (0..n)
        .map(|i| amp_v * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
        .collect();
    Spectrum::of_samples(&s, fs, Window::Hann)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Analyzer monotonicity: a stronger tone never reads lower (with
    /// noise disabled).
    #[test]
    fn analyzer_is_monotone(f0 in 20e6..240e6f64, a in 1e-5..1e-2f64, k in 1.5..10.0f64) {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig {
            noise_sigma_db: 0.0,
            ..AnalyzerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let (weak, _) = sa.peak_metric(&tone_spectrum(f0, a), 10e6, 250e6, 1, &mut rng);
        let (strong, _) = sa.peak_metric(&tone_spectrum(f0, a * k), 10e6, 250e6, 1, &mut rng);
        prop_assert!(strong >= weak, "strong {strong} < weak {weak}");
    }

    /// A noiseless tone reads within 2 dB of its theoretical dBm level
    /// whenever it is comfortably above the floor.
    #[test]
    fn analyzer_levels_match_theory(f0 in 20e6..240e6f64, a in 3e-4..1e-2f64) {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig {
            noise_sigma_db: 0.0,
            ..AnalyzerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let (dbm, f) = sa.peak_metric(&tone_spectrum(f0, a), 10e6, 250e6, 1, &mut rng);
        let expected = 10.0 * ((a * a / 100.0) / 1e-3).log10();
        prop_assert!((dbm - expected).abs() < 2.0, "{dbm} vs {expected}");
        prop_assert!((f - f0).abs() < 2e6, "marker at {f}, tone {f0}");
    }

    /// Scope output always lies on the quantization grid and inside the
    /// vertical range, for any input.
    #[test]
    fn scope_output_is_on_grid(
        amp in 0.0..3.0f64,
        offset in -1.0..3.0f64,
        f0 in 1e6..200e6f64,
    ) {
        let cfg = ScopeConfig {
            noise_v: 0.0,
            ..ScopeConfig::oc_dso()
        };
        let scope = Oscilloscope::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let analog = Trace::from_samples(
            0.25e-9,
            (0..4000)
                .map(|i| offset + amp * (2.0 * std::f64::consts::PI * f0 * i as f64 * 0.25e-9).sin())
                .collect(),
        );
        let shot = scope.capture(&analog, &mut rng);
        let lo = cfg.v_center - cfg.v_span / 2.0;
        let hi = cfg.v_center + cfg.v_span / 2.0;
        let lsb = cfg.v_span / (1u64 << cfg.bits) as f64;
        for &v in shot.samples() {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            let steps = (v - lo) / lsb;
            prop_assert!((steps - steps.round()).abs() < 1e-9);
        }
    }

    /// Scope capture of an in-range signal preserves its mean within an
    /// LSB plus noise.
    #[test]
    fn scope_preserves_mean(offset in 0.8..1.2f64) {
        let cfg = ScopeConfig::oc_dso();
        let lsb = cfg.v_span / (1u64 << cfg.bits) as f64;
        let scope = Oscilloscope::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let analog = Trace::from_samples(1e-9, vec![offset; 4000]);
        let shot = scope.capture(&analog, &mut rng);
        prop_assert!((shot.mean() - offset).abs() < lsb + 1e-3);
    }
}
