//! Digital-storage-oscilloscope model, used both as the Juno board's
//! on-chip power-supply monitor (OC-DSO, up to 1.6 GS/s) and as the
//! bench scope probing the AMD board's Kelvin pads.

use emvolt_circuit::Trace;
use rand::Rng;

/// Oscilloscope configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeConfig {
    /// Sampling rate in samples/second.
    pub sample_rate_hz: f64,
    /// ADC resolution in bits.
    pub bits: u32,
    /// Full-scale input range: the scope captures `[v_center - v_span/2,
    /// v_center + v_span/2]`.
    pub v_center: f64,
    /// Full-scale span in volts.
    pub v_span: f64,
    /// RMS input-referred noise in volts.
    pub noise_v: f64,
    /// Maximum record length in samples.
    pub record_len: usize,
}

impl ScopeConfig {
    /// The Juno OC-DSO: 1.6 GS/s, 10-bit, centred on a 1 V rail.
    pub fn oc_dso() -> Self {
        ScopeConfig {
            sample_rate_hz: 1.6e9,
            bits: 10,
            v_center: 1.0,
            v_span: 0.5,
            noise_v: 0.4e-3,
            record_len: 65_536,
        }
    }

    /// A bench scope with a differential probe on package pads.
    pub fn bench_scope() -> Self {
        ScopeConfig {
            sample_rate_hz: 2.5e9,
            bits: 8,
            v_center: 1.4,
            v_span: 1.0,
            noise_v: 1.5e-3,
            record_len: 131_072,
        }
    }
}

/// A sampling oscilloscope.
#[derive(Debug, Clone, PartialEq)]
pub struct Oscilloscope {
    config: ScopeConfig,
}

impl Oscilloscope {
    /// Creates a scope.
    ///
    /// # Panics
    ///
    /// Panics for non-physical configurations.
    pub fn new(config: ScopeConfig) -> Self {
        assert!(
            config.sample_rate_hz > 0.0
                && config.bits >= 4
                && config.v_span > 0.0
                && config.record_len > 0,
            "invalid scope configuration"
        );
        Oscilloscope { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScopeConfig {
        &self.config
    }

    /// Recentres the vertical range (set before undervolted captures).
    pub fn set_center(&mut self, v_center: f64) {
        self.config.v_center = v_center;
    }

    /// Captures the analog waveform: resamples to the scope clock,
    /// adds input noise, clips to the vertical range and quantizes.
    pub fn capture<R: Rng>(&self, analog: &Trace, rng: &mut R) -> Trace {
        let c = &self.config;
        let dt_out = 1.0 / c.sample_rate_hz;
        let n_out = ((analog.duration() / dt_out).floor() as usize).min(c.record_len);
        let lsb = c.v_span / (1u64 << c.bits) as f64;
        let lo = c.v_center - c.v_span / 2.0;
        let hi = c.v_center + c.v_span / 2.0;
        let samples: Vec<f64> = (0..n_out)
            .map(|i| {
                let t = i as f64 * dt_out;
                // Linear interpolation between analog samples.
                let x = t / analog.dt();
                let k = x.floor() as usize;
                let frac = x - k as f64;
                let s = analog.samples();
                let v = if k + 1 < s.len() {
                    s[k] * (1.0 - frac) + s[k + 1] * frac
                } else {
                    *s.last().unwrap_or(&0.0)
                };
                let noisy = v + gaussian(rng, c.noise_v);
                let clipped = noisy.clamp(lo, hi);
                // Mid-tread quantization.
                lo + ((clipped - lo) / lsb).round() * lsb
            })
            .collect();
        Trace::from_samples(dt_out, samples)
    }
}

fn gaussian<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn sine_trace(f0: f64, amp: f64, offset: f64, fs: f64, n: usize) -> Trace {
        Trace::from_samples(
            1.0 / fs,
            (0..n)
                .map(|i| offset + amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
                .collect(),
        )
    }

    #[test]
    fn captures_amplitude_faithfully() {
        let scope = Oscilloscope::new(ScopeConfig::oc_dso());
        let mut rng = StdRng::seed_from_u64(1);
        let analog = sine_trace(67e6, 0.02, 1.0, 8e9, 8000);
        let shot = scope.capture(&analog, &mut rng);
        assert!(
            (shot.peak_to_peak() - 0.04).abs() < 0.005,
            "p2p {}",
            shot.peak_to_peak()
        );
        assert!((shot.mean() - 1.0).abs() < 0.002);
    }

    #[test]
    fn quantization_grid_is_respected() {
        let mut cfg = ScopeConfig::oc_dso();
        cfg.noise_v = 0.0;
        cfg.bits = 6;
        let scope = Oscilloscope::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let analog = sine_trace(10e6, 0.1, 1.0, 8e9, 4000);
        let shot = scope.capture(&analog, &mut rng);
        let lsb = cfg.v_span / 64.0;
        let lo = cfg.v_center - cfg.v_span / 2.0;
        for &v in shot.samples() {
            let steps = (v - lo) / lsb;
            assert!((steps - steps.round()).abs() < 1e-9, "off-grid sample {v}");
        }
    }

    #[test]
    fn clipping_at_range_edges() {
        let mut cfg = ScopeConfig::oc_dso();
        cfg.noise_v = 0.0;
        let scope = Oscilloscope::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let analog = sine_trace(10e6, 2.0, 1.0, 8e9, 4000); // way over range
        let shot = scope.capture(&analog, &mut rng);
        let hi = cfg.v_center + cfg.v_span / 2.0;
        let lo = cfg.v_center - cfg.v_span / 2.0;
        assert!(shot.max() <= hi + 1e-9);
        assert!(shot.min() >= lo - 1e-9);
    }

    #[test]
    fn record_length_caps_capture() {
        let mut cfg = ScopeConfig::oc_dso();
        cfg.record_len = 100;
        let scope = Oscilloscope::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let analog = sine_trace(10e6, 0.01, 1.0, 8e9, 100_000);
        let shot = scope.capture(&analog, &mut rng);
        assert_eq!(shot.len(), 100);
    }

    #[test]
    fn resampling_preserves_frequency() {
        use emvolt_dsp::{Spectrum, Window};
        let scope = Oscilloscope::new(ScopeConfig::oc_dso());
        let mut rng = StdRng::seed_from_u64(5);
        let analog = sine_trace(67e6, 0.02, 1.0, 8e9, 65_536);
        let shot = scope.capture(&analog, &mut rng);
        let spec = Spectrum::of_trace(&shot, Window::Hann);
        let (f, _) = spec.peak_in_band(10e6, 400e6).unwrap();
        assert!((f - 67e6).abs() < 1e6, "peak {f:.3e}");
    }
}
