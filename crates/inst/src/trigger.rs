//! Oscilloscope triggering and analyzer trace modes.
//!
//! Real undervolting campaigns do not stare at free-running captures:
//! the scope is armed with an edge trigger on the rail (to catch droop
//! events) and the analyzer is left in max-hold to accumulate the worst
//! spike over a workload's lifetime. Both modes are used by the V_MIN
//! and monitoring flows.

use crate::SweepReading;
use emvolt_circuit::Trace;

/// Edge polarity for the scope trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Trigger when the signal crosses the level downward (droops).
    Falling,
    /// Trigger when the signal crosses the level upward (overshoots).
    Rising,
}

/// An edge-trigger condition on a captured trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trigger {
    /// Trigger level in volts.
    pub level_v: f64,
    /// Crossing direction.
    pub edge: Edge,
    /// Samples kept before the trigger point.
    pub pretrigger: usize,
    /// Samples kept from the trigger point on.
    pub capture: usize,
}

impl Trigger {
    /// Finds the first trigger point in `trace`, returning its sample
    /// index.
    pub fn find(&self, trace: &Trace) -> Option<usize> {
        let s = trace.samples();
        s.windows(2)
            .position(|w| match self.edge {
                Edge::Falling => w[0] >= self.level_v && w[1] < self.level_v,
                Edge::Rising => w[0] <= self.level_v && w[1] > self.level_v,
            })
            .map(|i| i + 1)
    }

    /// Returns the triggered window around the first crossing, or `None`
    /// when the trace never crosses the level. The window is clamped to
    /// the available samples.
    pub fn capture_window(&self, trace: &Trace) -> Option<Trace> {
        let at = self.find(trace)?;
        let start = at.saturating_sub(self.pretrigger);
        let end = (at + self.capture).min(trace.len());
        let samples = trace.samples()[start..end].to_vec();
        Some(Trace::with_start(
            trace.dt(),
            trace.start_time() + start as f64 * trace.dt(),
            samples,
        ))
    }

    /// Counts trigger events (crossings) in the trace — the
    /// voltage-emergency rate when armed below nominal.
    pub fn count_events(&self, trace: &Trace) -> usize {
        let s = trace.samples();
        s.windows(2)
            .filter(|w| match self.edge {
                Edge::Falling => w[0] >= self.level_v && w[1] < self.level_v,
                Edge::Rising => w[0] <= self.level_v && w[1] > self.level_v,
            })
            .count()
    }
}

/// Accumulates analyzer sweeps in max-hold or averaging mode.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceMode {
    /// Keep the maximum level per point (worst-case spike hunting).
    MaxHold,
    /// Average the linear power per point (noise smoothing).
    Average,
}

/// A trace accumulator over repeated sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAccumulator {
    mode: TraceMode,
    sweeps: usize,
    freqs: Vec<f64>,
    acc: Vec<f64>,
}

impl TraceAccumulator {
    /// Creates an empty accumulator.
    pub fn new(mode: TraceMode) -> Self {
        TraceAccumulator {
            mode,
            sweeps: 0,
            freqs: Vec::new(),
            acc: Vec::new(),
        }
    }

    /// Folds one sweep in.
    ///
    /// # Panics
    ///
    /// Panics if the sweep grid differs from previous sweeps.
    pub fn add(&mut self, sweep: &SweepReading) {
        if self.sweeps == 0 {
            self.freqs = sweep.points.iter().map(|p| p.0).collect();
            self.acc = match self.mode {
                TraceMode::MaxHold => sweep.points.iter().map(|p| p.1).collect(),
                TraceMode::Average => sweep
                    .points
                    .iter()
                    .map(|p| 10f64.powf(p.1 / 10.0))
                    .collect(),
            };
            self.sweeps = 1;
            return;
        }
        assert_eq!(
            self.freqs.len(),
            sweep.points.len(),
            "sweep grid changed mid-accumulation"
        );
        for (a, p) in self.acc.iter_mut().zip(&sweep.points) {
            match self.mode {
                TraceMode::MaxHold => *a = a.max(p.1),
                TraceMode::Average => *a += 10f64.powf(p.1 / 10.0),
            }
        }
        self.sweeps += 1;
    }

    /// Number of folded sweeps.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// The accumulated display in dBm per point.
    pub fn display(&self) -> Vec<(f64, f64)> {
        match self.mode {
            TraceMode::MaxHold => self
                .freqs
                .iter()
                .copied()
                .zip(self.acc.iter().copied())
                .collect(),
            TraceMode::Average => self
                .freqs
                .iter()
                .copied()
                .zip(
                    self.acc
                        .iter()
                        .map(|&p| 10.0 * (p / self.sweeps.max(1) as f64).log10()),
                )
                .collect(),
        }
    }

    /// Peak of the accumulated display within `[lo, hi]` Hz.
    pub fn peak_in_band(&self, lo: f64, hi: f64) -> Option<(f64, f64)> {
        self.display()
            .into_iter()
            .filter(|(f, _)| *f >= lo && *f <= hi)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyzerConfig, SpectrumAnalyzer};
    use emvolt_dsp::Spectrum;
    use rand::{rngs::StdRng, SeedableRng};

    fn droopy_trace() -> Trace {
        // Flat at 1.0 V with two droop events.
        let mut v = vec![1.0; 200];
        v[50..55].fill(0.93);
        v[120..124].fill(0.90);
        Trace::from_samples(1e-9, v)
    }

    #[test]
    fn falling_trigger_finds_the_first_droop() {
        let t = Trigger {
            level_v: 0.95,
            edge: Edge::Falling,
            pretrigger: 5,
            capture: 10,
        };
        let trace = droopy_trace();
        assert_eq!(t.find(&trace), Some(50));
        let win = t.capture_window(&trace).unwrap();
        assert_eq!(win.len(), 15);
        assert!(win.min() < 0.95);
        assert_eq!(t.count_events(&trace), 2);
    }

    #[test]
    fn rising_trigger_sees_recoveries() {
        let t = Trigger {
            level_v: 0.95,
            edge: Edge::Rising,
            pretrigger: 0,
            capture: 4,
        };
        assert_eq!(t.count_events(&droopy_trace()), 2);
    }

    #[test]
    fn no_crossing_no_capture() {
        let t = Trigger {
            level_v: 0.5,
            edge: Edge::Falling,
            pretrigger: 4,
            capture: 4,
        };
        assert!(t.capture_window(&droopy_trace()).is_none());
        assert_eq!(t.count_events(&droopy_trace()), 0);
    }

    fn tone(f0: f64, amp: f64) -> Spectrum {
        let fs = 1e9;
        let s: Vec<f64> = (0..4096)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        Spectrum::of_samples(&s, fs, emvolt_dsp::Window::Hann)
    }

    #[test]
    fn max_hold_keeps_the_worst_spike() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut hold = TraceAccumulator::new(TraceMode::MaxHold);
        // Alternate weak and strong sweeps.
        for k in 0..6 {
            let amp = if k == 3 { 5e-3 } else { 5e-4 };
            hold.add(&sa.sweep(&tone(80e6, amp), &mut rng));
        }
        let (_, held) = hold.peak_in_band(70e6, 90e6).unwrap();
        let single = sa
            .sweep(&tone(80e6, 5e-4), &mut rng)
            .peak_in_band(70e6, 90e6)
            .unwrap()
            .1;
        assert!(held > single + 15.0, "max-hold {held} vs single {single}");
        assert_eq!(hold.sweeps(), 6);
    }

    #[test]
    fn averaging_reduces_noise_scatter() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(8);
        let empty = Spectrum::from_bins(1e6, vec![0.0; 256]);
        let mut avg = TraceAccumulator::new(TraceMode::Average);
        for _ in 0..32 {
            avg.add(&sa.sweep(&empty, &mut rng));
        }
        let disp = avg.display();
        // All averaged floor points cluster tightly around -95 dBm.
        let spread = disp
            .iter()
            .map(|p| (p.1 + 95.0).abs())
            .fold(0.0f64, f64::max);
        assert!(spread < 1.0, "averaged floor spread {spread} dB");
    }
}
