//! Single-port vector-network-analyzer model used to characterize the
//! receive antenna (the paper's Fig. 6 S11 measurement).

use emvolt_em::LoopAntenna;
use rand::Rng;

/// A one-port VNA measuring reflection coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Vna {
    /// Per-point measurement noise in dB (RMS).
    pub noise_sigma_db: f64,
}

impl Default for Vna {
    fn default() -> Self {
        Vna {
            noise_sigma_db: 0.15,
        }
    }
}

impl Vna {
    /// Measures `|S11|` of the antenna in dB at each frequency.
    pub fn measure_s11<R: Rng>(
        &self,
        antenna: &LoopAntenna,
        freqs: &[f64],
        rng: &mut R,
    ) -> Vec<(f64, f64)> {
        freqs
            .iter()
            .map(|&f| {
                let clean = antenna.s11_db(f);
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let noise = (-2.0 * u1.ln()).sqrt()
                    * (2.0 * std::f64::consts::PI * u2).cos()
                    * self.noise_sigma_db;
                (f, clean + noise)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn finds_the_self_resonance_dip() {
        let vna = Vna::default();
        let antenna = LoopAntenna::default();
        let freqs: Vec<f64> = (1..=400).map(|i| i as f64 * 1e7).collect(); // 10 MHz..4 GHz
        let mut rng = StdRng::seed_from_u64(1);
        let s11 = vna.measure_s11(&antenna, &freqs, &mut rng);
        let (f_min, db_min) = s11
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
            .unwrap();
        assert!(
            (f_min - 2.95e9).abs() < 0.1e9,
            "dip at {f_min:.3e}, expected 2.95 GHz"
        );
        assert!(db_min < -15.0);
    }

    #[test]
    fn low_band_is_unmatched() {
        let vna = Vna {
            noise_sigma_db: 0.0,
        };
        let antenna = LoopAntenna::default();
        let mut rng = StdRng::seed_from_u64(2);
        let s11 = vna.measure_s11(&antenna, &[50e6, 100e6, 200e6], &mut rng);
        for (f, db) in s11 {
            assert!(db > -1.0, "unexpected match at {f:.2e}: {db} dB");
        }
    }
}
