//! # emvolt-inst
//!
//! Measurement-instrument models:
//!
//! * [`SpectrumAnalyzer`] — swept analyzer with RBW filtering, a noise
//!   floor and per-point measurement noise; implements the paper's GA
//!   fitness metric (mean root square of 30 max-amplitude samples).
//! * [`Oscilloscope`] — sampling scope with quantization and clipping;
//!   configured as the Juno OC-DSO or a bench scope on Kelvin pads.
//! * [`Vna`] — one-port S11 measurement for the antenna (Fig. 6).
//!
//! # Examples
//!
//! ```
//! use emvolt_inst::{AnalyzerConfig, SpectrumAnalyzer};
//! use emvolt_dsp::Spectrum;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
//! let mut rng = StdRng::seed_from_u64(0);
//! let silence = Spectrum::from_bins(1e6, vec![0.0; 256]);
//! let reading = sa.sweep(&silence, &mut rng);
//! let (_, level) = reading.peak_in_band(50e6, 200e6).unwrap();
//! assert!(level < -80.0); // just the noise floor
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analyzer;
mod scope;
mod trigger;
mod vna;

pub use analyzer::{AnalyzerConfig, SpectrumAnalyzer, SweepReading};
pub use scope::{Oscilloscope, ScopeConfig};
pub use trigger::{Edge, TraceAccumulator, TraceMode, Trigger};
pub use vna::Vna;
