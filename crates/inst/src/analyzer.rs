//! Swept spectrum-analyzer model (Agilent E4402B / N9332C stand-in).

use emvolt_dsp::{dbm_to_watts, watts_to_dbm, SpectralBins};
use rand::Rng;
use rand_distr_normal::sample_normal;

/// Gaussian sampling helper without an extra dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// Box–Muller standard-normal sample scaled to `sigma`.
    pub fn sample_normal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
    }
}

/// Spectrum-analyzer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// Sweep start frequency in Hz.
    pub start_hz: f64,
    /// Sweep stop frequency in Hz.
    pub stop_hz: f64,
    /// Resolution bandwidth in Hz (Gaussian filter sigma ~ RBW/2.355).
    pub rbw_hz: f64,
    /// Displayed average noise level in dBm.
    pub noise_floor_dbm: f64,
    /// Standard deviation of per-point measurement noise in dB.
    pub noise_sigma_db: f64,
    /// Input impedance in ohms (50 by convention).
    pub input_ohms: f64,
    /// Number of displayed points per sweep.
    pub points: usize,
    /// Wall-clock seconds one sweep takes (drives the paper's ~18 s per
    /// 30-sample measurement accounting).
    pub sweep_time_s: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            start_hz: 10e6,
            stop_hz: 250e6,
            rbw_hz: 1e6,
            noise_floor_dbm: -95.0,
            noise_sigma_db: 0.7,
            input_ohms: 50.0,
            points: 481,
            sweep_time_s: 0.6,
        }
    }
}

/// One displayed sweep: `(frequency, level_dbm)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReading {
    /// Displayed points.
    pub points: Vec<(f64, f64)>,
}

impl SweepReading {
    /// The marker peak: highest-level point within `[lo, hi]` Hz.
    pub fn peak_in_band(&self, lo: f64, hi: f64) -> Option<(f64, f64)> {
        peak_in_band_points(&self.points, lo, hi)
    }
}

/// Highest-level `(frequency, level)` point within `[lo, hi]` Hz.
fn peak_in_band_points(points: &[(f64, f64)], lo: f64, hi: f64) -> Option<(f64, f64)> {
    points
        .iter()
        .filter(|(f, _)| *f >= lo && *f <= hi)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .copied()
}

/// A swept spectrum analyzer measuring the voltage spectrum at its input.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumAnalyzer {
    config: AnalyzerConfig,
    elapsed_s: f64,
}

impl SpectrumAnalyzer {
    /// Creates an analyzer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is non-physical (empty span, RBW or
    /// points of zero).
    pub fn new(config: AnalyzerConfig) -> Self {
        assert!(
            config.stop_hz > config.start_hz && config.rbw_hz > 0.0 && config.points >= 2,
            "invalid analyzer configuration"
        );
        SpectrumAnalyzer {
            config,
            elapsed_s: 0.0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Accumulated measurement wall-clock in seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed_s
    }

    /// Resets the measurement-time accounting.
    pub fn reset_elapsed(&mut self) {
        self.elapsed_s = 0.0;
    }

    /// Adds externally accounted sweep time — used when sweeps ran on a
    /// detached analyzer clone (e.g. a parallel measurement batch) and
    /// their wall-clock is folded back into this instrument's total.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite `seconds`.
    pub fn advance_elapsed(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid elapsed advance {seconds}"
        );
        self.elapsed_s += seconds;
    }

    /// Performs one sweep over the input voltage spectrum (volts per bin
    /// at the analyzer input). Generic over [`SpectralBins`], so a
    /// band-limited spectrum sweeps exactly like a dense one: the sweep
    /// already skips zero-amplitude bins, and a band view reads zero
    /// outside its covered range.
    pub fn sweep<R: Rng, S: SpectralBins>(&mut self, input: &S, rng: &mut R) -> SweepReading {
        let mut points = Vec::with_capacity(self.config.points);
        self.sweep_into(input, rng, &mut points);
        SweepReading { points }
    }

    /// Fills `points` with one displayed sweep, reusing the buffer's
    /// capacity — lets [`SpectrumAnalyzer::peak_metric`] run its `n`
    /// sweeps through one buffer instead of allocating per sweep.
    fn sweep_into<R: Rng, S: SpectralBins>(
        &mut self,
        input: &S,
        rng: &mut R,
        points: &mut Vec<(f64, f64)>,
    ) {
        self.elapsed_s += self.config.sweep_time_s;
        let c = &self.config;
        let n = c.points;
        let span = c.stop_hz - c.start_hz;
        let sigma = c.rbw_hz / 2.355; // FWHM -> sigma
        let floor_w = dbm_to_watts(c.noise_floor_dbm);

        points.clear();
        points.reserve(n);
        for i in 0..n {
            let f_center = c.start_hz + span * i as f64 / (n - 1) as f64;
            // Positive-peak detector through the Gaussian RBW filter: the
            // displayed level is the strongest RBW-weighted component in
            // view, which reads a narrowband spike at exactly its power
            // without double-counting the analysis window's main lobe.
            let lo = f_center - 4.0 * sigma;
            let hi = f_center + 4.0 * sigma;
            let mut power_w = 0.0f64;
            if !input.is_empty() {
                let k0 = ((lo / input.freq_step()).floor().max(0.0)) as usize;
                let k1 = (((hi / input.freq_step()).ceil()) as usize).min(input.len() - 1);
                for k in k0..=k1 {
                    let a = input.amplitude_at(k);
                    if a == 0.0 {
                        continue;
                    }
                    let df = input.freq_at(k) - f_center;
                    let w = (-0.5 * (df / sigma) * (df / sigma)).exp();
                    // Sine of amplitude a into R: P = a^2 / (2R).
                    power_w = power_w.max(w * a * a / (2.0 * c.input_ohms));
                }
            }
            let total_w = power_w + floor_w;
            let level = watts_to_dbm(total_w) + sample_normal(rng, c.noise_sigma_db);
            points.push((f_center, level));
        }
    }

    /// The paper's GA fitness metric: the *mean root square* of `n`
    /// max-amplitude marker readings in `[lo, hi]` Hz — `n` sweeps are
    /// taken, each contributing its band peak in linear power; the metric
    /// is the RMS of those peaks, reported in dBm.
    ///
    /// Returns `(metric_dbm, dominant_frequency_hz)`.
    pub fn peak_metric<R: Rng, S: SpectralBins>(
        &mut self,
        input: &S,
        lo: f64,
        hi: f64,
        n: usize,
        rng: &mut R,
    ) -> (f64, f64) {
        let mut acc = 0.0;
        let mut freq_votes: std::collections::BTreeMap<i64, usize> =
            std::collections::BTreeMap::new();
        let mut best_freq = lo;
        let mut hits = 0usize;
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(self.config.points);
        for _ in 0..n.max(1) {
            self.sweep_into(input, rng, &mut points);
            if let Some((f, dbm)) = peak_in_band_points(&points, lo, hi) {
                let p = dbm_to_watts(dbm);
                acc += p * p;
                hits += 1;
                let key = (f / 1e6).round() as i64;
                *freq_votes.entry(key).or_insert(0) += 1;
            }
        }
        if hits == 0 {
            // The requested band holds no displayed points (e.g. a marker
            // outside the sweep span): report the instrument floor.
            return (self.config.noise_floor_dbm, best_freq);
        }
        if let Some((&key, _)) = freq_votes.iter().max_by_key(|(_, &v)| v) {
            best_freq = key as f64 * 1e6;
        }
        let rms_w = (acc / hits as f64).sqrt();
        (watts_to_dbm(rms_w), best_freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_dsp::{Spectrum, Window};
    use rand::{rngs::StdRng, SeedableRng};

    fn tone_spectrum(f0: f64, amp_v: f64) -> Spectrum {
        let fs = 1e9;
        let n = 8192;
        let s: Vec<f64> = (0..n)
            .map(|i| amp_v * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        Spectrum::of_samples(&s, fs, Window::Hann)
    }

    #[test]
    fn tone_level_is_close_to_theory() {
        // 1 mV peak into 50 ohm: P = 1e-6/100 = 10 nW = -50 dBm.
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig {
            noise_sigma_db: 0.0,
            ..AnalyzerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let reading = sa.sweep(&tone_spectrum(100e6, 1e-3), &mut rng);
        let (f, dbm) = reading.peak_in_band(50e6, 200e6).unwrap();
        assert!((f - 100e6).abs() < 1e6, "peak at {f:.3e}");
        assert!((dbm - (-50.0)).abs() < 1.5, "level {dbm} dBm");
    }

    #[test]
    fn noise_floor_dominates_when_no_signal() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let empty = Spectrum::from_bins(1e6, vec![0.0; 300]);
        let reading = sa.sweep(&empty, &mut rng);
        for (_, dbm) in &reading.points {
            assert!((*dbm - (-95.0)).abs() < 5.0, "floor point {dbm}");
        }
    }

    #[test]
    fn weak_tone_below_floor_is_invisible() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        // -130 dBm-ish tone: far below the -95 dBm floor.
        let reading = sa.sweep(&tone_spectrum(100e6, 1e-7), &mut rng);
        let (_, dbm) = reading.peak_in_band(90e6, 110e6).unwrap();
        assert!(dbm < -88.0, "tone should be buried, got {dbm}");
    }

    #[test]
    fn peak_metric_votes_for_dominant_frequency() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let (dbm, f) = sa.peak_metric(&tone_spectrum(67e6, 1e-3), 50e6, 200e6, 30, &mut rng);
        assert!((f - 67e6).abs() < 1.5e6, "dominant {f:.3e}");
        assert!((dbm - (-50.0)).abs() < 2.0, "metric {dbm}");
    }

    #[test]
    fn sweep_time_accumulates() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let s = tone_spectrum(80e6, 1e-3);
        let _ = sa.peak_metric(&s, 50e6, 200e6, 30, &mut rng);
        // ~18 s for 30 samples, as the paper reports.
        assert!(
            (sa.elapsed() - 18.0).abs() < 1.0,
            "elapsed {}",
            sa.elapsed()
        );
        sa.reset_elapsed();
        assert_eq!(sa.elapsed(), 0.0);
    }

    #[test]
    fn stronger_tone_reads_higher() {
        let mut sa = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let (weak, _) = sa.peak_metric(&tone_spectrum(70e6, 1e-4), 50e6, 200e6, 5, &mut rng);
        let (strong, _) = sa.peak_metric(&tone_spectrum(70e6, 1e-3), 50e6, 200e6, 5, &mut rng);
        assert!(strong > weak + 15.0, "strong {strong} vs weak {weak}");
    }

    /// A band view holding the same bin values as the dense spectrum must
    /// sweep bit-identically inside the band: same displayed levels, same
    /// RNG draw order. This is the contract that lets the measurement
    /// layer swap in Goertzel bands without disturbing seeded campaigns
    /// beyond the documented bin-value tolerance.
    #[test]
    fn band_view_sweep_matches_dense_sweep_in_band() {
        use emvolt_dsp::BandSpectrum;
        let spec = tone_spectrum(100e6, 1e-3);
        let (lo, hi) = (50e6, 200e6);
        let margin = 4.0 * (1e6 / 2.355);
        let k0 = (((lo - margin) / spec.freq_step()).floor()) as usize;
        let k1 = ((((hi + margin) / spec.freq_step()).ceil()) as usize).min(spec.len() - 1);
        let mut band = BandSpectrum::default();
        band.refill_from_bins(
            spec.freq_step(),
            k0,
            spec.len(),
            (k0..=k1).map(|k| spec.amplitude_at(k)),
        );

        let mut sa_dense = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut sa_band = SpectrumAnalyzer::new(AnalyzerConfig::default());
        let mut rng_dense = StdRng::seed_from_u64(9);
        let mut rng_band = StdRng::seed_from_u64(9);
        let dense = sa_dense.sweep(&spec, &mut rng_dense);
        let banded = sa_band.sweep(&band, &mut rng_band);
        assert_eq!(dense.points.len(), banded.points.len());
        for ((f1, d1), (f2, d2)) in dense.points.iter().zip(&banded.points) {
            assert_eq!(f1.to_bits(), f2.to_bits());
            if *f1 >= lo && *f1 <= hi {
                assert_eq!(d1.to_bits(), d2.to_bits(), "level diverged at {f1:.3e}");
            }
        }
        // The RNG streams stayed aligned across the whole sweep.
        assert_eq!(rng_dense.gen::<u64>(), rng_band.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "invalid analyzer configuration")]
    fn rejects_empty_span() {
        let _ = SpectrumAnalyzer::new(AnalyzerConfig {
            start_hz: 100e6,
            stop_hz: 100e6,
            ..AnalyzerConfig::default()
        });
    }
}
