//! Generation and caching of the five dI/dt viruses of Table 2.
//!
//! GA campaigns are deterministic given their seed, but take tens of
//! seconds each, and several experiments share the same virus; generated
//! kernels are therefore cached as JSON under `results/viruses/`.

use crate::Options;
use emvolt_backend::BackendSpec;
use emvolt_core::{
    generate_em_virus, generate_em_virus_on, generate_voltage_virus, Virus, VirusGenConfig,
};
use emvolt_ga::GaConfig;
use emvolt_inst::{Oscilloscope, ScopeConfig};
use emvolt_isa::{Kernel, KernelSpec};
use emvolt_platform::{AmdDesktop, EmBench, JunoBoard, VoltageDomain};
use std::error::Error;
use std::path::PathBuf;

/// The five viruses of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirusTag {
    /// OC-DSO-droop-driven GA on the Cortex-A72.
    A72OcDso,
    /// EM-driven GA on the Cortex-A72.
    A72Em,
    /// EM-driven GA on the Cortex-A53.
    A53Em,
    /// EM-driven GA on the AMD Athlon.
    AmdEm,
    /// Kelvin-pad-droop-driven GA on the AMD Athlon.
    AmdOsc,
}

impl VirusTag {
    /// Table-2 row label.
    pub fn label(self) -> &'static str {
        match self {
            VirusTag::A72OcDso => "a72OC-DSO",
            VirusTag::A72Em => "a72em",
            VirusTag::A53Em => "a53em",
            VirusTag::AmdEm => "amdEm",
            VirusTag::AmdOsc => "amdOsc",
        }
    }

    fn cache_file(self) -> PathBuf {
        PathBuf::from("viruses").join(format!("{}.json", self.label()))
    }

    /// The domain this virus targets, rebuilt fresh.
    pub fn domain(self) -> VoltageDomain {
        match self {
            VirusTag::A72OcDso | VirusTag::A72Em => JunoBoard::new().a72,
            VirusTag::A53Em => JunoBoard::new().a53,
            VirusTag::AmdEm | VirusTag::AmdOsc => AmdDesktop::new().domain,
        }
    }

    /// Cores loaded during generation and V_MIN testing (the paper loads
    /// every powered core).
    pub fn loaded_cores(self) -> usize {
        match self {
            VirusTag::A72OcDso | VirusTag::A72Em => 2,
            _ => 4,
        }
    }

    fn seed(self) -> u64 {
        match self {
            VirusTag::A72OcDso => 0xA720C,
            VirusTag::A72Em => 0xA72E3,
            VirusTag::A53Em => 0xA53E3,
            VirusTag::AmdEm => 0xA3DE3,
            VirusTag::AmdOsc => 0xA3D0C,
        }
    }
}

/// GA scale for the given options: paper scale (50 x 60) normally, a
/// reduced run under `--quick`.
pub fn ga_config(tag: VirusTag, opts: &Options) -> VirusGenConfig {
    let (population, generations) = if opts.quick { (12, 10) } else { (50, 60) };
    VirusGenConfig {
        ga: GaConfig {
            population,
            generations,
            seed: tag.seed(),
            ..GaConfig::default()
        },
        kernel_len: 50,
        loaded_cores: tag.loaded_cores(),
        samples_per_individual: if opts.quick { 3 } else { 30 },
        ..VirusGenConfig::default()
    }
}

/// Generates (or loads from cache) the kernel for `tag`.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn get_or_generate(tag: VirusTag, opts: &Options) -> Result<Kernel, Box<dyn Error>> {
    let cache = tag.cache_file();
    if !opts.refresh {
        if let Some(json) = crate::output::read_cache(&cache) {
            let spec: KernelSpec = serde_json::from_str(&json)?;
            return Ok(spec.to_kernel()?);
        }
    }
    let virus = generate(tag, opts)?;
    let spec = KernelSpec::from_kernel(&virus.kernel);
    crate::output::write_cache(&cache, &serde_json::to_string_pretty(&spec)?)?;
    Ok(virus.kernel)
}

/// Runs the full GA campaign for `tag` (no caching) and returns the
/// complete [`Virus`] including its per-generation history.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn generate(tag: VirusTag, opts: &Options) -> Result<Virus, Box<dyn Error>> {
    let domain = tag.domain();
    let config = ga_config(tag, opts);
    let virus = match tag {
        VirusTag::A72Em | VirusTag::A53Em | VirusTag::AmdEm => {
            match opts.backend_for(tag.label()) {
                // Live default: exactly the pre-backend code path.
                None => {
                    let mut bench = EmBench::new(tag.seed() ^ 0xBEEF);
                    generate_em_virus(tag.label(), &domain, &mut bench, &config)?
                }
                Some(spec) => {
                    if let BackendSpec::Record(path) = &spec {
                        if let Some(dir) = path.parent() {
                            std::fs::create_dir_all(dir)?;
                        }
                    }
                    let mut backend = spec
                        .build(
                            vec![domain.clone()],
                            EmBench::new(tag.seed() ^ 0xBEEF),
                            config.run.clone(),
                        )
                        .map_err(|e| format!("backend {spec}: {e}"))?;
                    generate_em_virus_on(
                        tag.label(),
                        &mut *backend,
                        domain.name(),
                        &config,
                        |_| {},
                    )?
                }
            }
        }
        VirusTag::A72OcDso => {
            let scope = Oscilloscope::new(ScopeConfig::oc_dso());
            generate_voltage_virus(tag.label(), &domain, &scope, &config, tag.seed() ^ 0xBEEF)?
        }
        VirusTag::AmdOsc => {
            let mut cfg = ScopeConfig::bench_scope();
            cfg.v_center = domain.voltage();
            let scope = Oscilloscope::new(cfg);
            generate_voltage_virus(tag.label(), &domain, &scope, &config, tag.seed() ^ 0xBEEF)?
        }
    };
    Ok(virus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_have_unique_labels_and_seeds() {
        let tags = [
            VirusTag::A72OcDso,
            VirusTag::A72Em,
            VirusTag::A53Em,
            VirusTag::AmdEm,
            VirusTag::AmdOsc,
        ];
        let mut labels: Vec<&str> = tags.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
        let mut seeds: Vec<u64> = tags.iter().map(|t| t.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5);
    }

    #[test]
    fn quick_config_is_smaller() {
        let quick = ga_config(
            VirusTag::A72Em,
            &Options {
                quick: true,
                ..Options::default()
            },
        );
        let full = ga_config(
            VirusTag::A72Em,
            &Options {
                quick: false,
                ..Options::default()
            },
        );
        assert!(quick.ga.population < full.ga.population);
        assert!(quick.ga.generations < full.ga.generations);
        assert_eq!(full.ga.population, 50);
        assert_eq!(full.ga.generations, 60);
    }
}
