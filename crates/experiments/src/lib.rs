//! # emvolt-experiments
//!
//! One function (and one binary) per table and figure of the paper's
//! evaluation. Each experiment prints the series/rows the paper reports
//! and writes a CSV under `results/`.
//!
//! Run everything with `cargo run --release -p emvolt-experiments --bin
//! run_all`, or a single item with e.g. `--bin fig07_ga_a72`. Pass
//! `--quick` (or set `EMVOLT_QUICK=1`) for reduced-scale runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod a53_figs;
mod ablations;
mod amd_figs;
mod juno_figs;
pub mod output;
mod pdn_figs;
mod table2_exp;
pub mod viruses;

pub use a53_figs::{fig12, fig13, fig14, fig15};
pub use ablations::{
    ablation_band, ablation_jitter, ablation_q, ablation_samples, ext_gpu, ext_margin_prediction,
    ext_tamper,
};
pub use amd_figs::{fig16, fig17, fig18};
pub use juno_figs::{fig04, fig07, fig08, fig09, fig10, fig11};
pub use pdn_figs::{fig01, fig02, fig06, table1};
pub use table2_exp::{build_reports, table2};

use emvolt_backend::BackendSpec;
use std::error::Error;

/// An experiment entry point: takes the options, returns the printed
/// report.
pub type ExperimentFn = fn(&Options) -> Result<String, Box<dyn Error>>;

/// Global experiment options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Options {
    /// Reduced-scale run (smaller GA populations/sweeps) for smoke tests.
    pub quick: bool,
    /// Regenerate viruses even when a cached copy exists.
    pub refresh: bool,
    /// Measurement backend for the EM GA campaigns. `None` runs the live
    /// chain directly; `record:DIR` / `replay:DIR` name a directory
    /// holding one `<label>.jsonl` trace per campaign (see
    /// [`Options::backend_for`]).
    pub backend: Option<BackendSpec>,
}

impl Options {
    /// Parses options from the process arguments and environment
    /// (`--quick` / `EMVOLT_QUICK=1`, `--refresh`, `--backend SPEC` /
    /// `EMVOLT_BACKEND=SPEC`). Exits with a diagnostic on a malformed
    /// backend spec.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick")
            || std::env::var("EMVOLT_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        let refresh = args.iter().any(|a| a == "--refresh");
        let backend_arg = args
            .iter()
            .position(|a| a == "--backend")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| std::env::var("EMVOLT_BACKEND").ok());
        let backend = backend_arg.map(|s| match s.parse::<BackendSpec>() {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("--backend {s}: {e}");
                std::process::exit(2);
            }
        });
        Options {
            quick,
            refresh,
            backend,
        }
    }

    /// The backend spec for one named campaign: record/replay paths are
    /// taken as directories and become `DIR/<label>.jsonl`, so a
    /// multi-campaign run keeps one trace per virus.
    pub fn backend_for(&self, label: &str) -> Option<BackendSpec> {
        self.backend.as_ref().map(|spec| match spec {
            BackendSpec::Live => BackendSpec::Live,
            BackendSpec::Record(dir) => BackendSpec::Record(dir.join(format!("{label}.jsonl"))),
            BackendSpec::Replay(dir) => BackendSpec::Replay(dir.join(format!("{label}.jsonl"))),
        })
    }
}

/// The registry of all experiments in paper order.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table1", table1 as ExperimentFn),
        ("fig01", fig01),
        ("fig02", fig02),
        ("fig04", fig04),
        ("fig06", fig06),
        ("fig07", fig07),
        ("fig08", fig08),
        ("fig09", fig09),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("table2", table2),
    ]
}

/// Ablation studies and §10 future-work extensions (not part of the
/// paper's figures; run with the `ablations` / `extensions` binaries).
pub fn all_extensions() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("ablation_band", ablation_band as ExperimentFn),
        ("ablation_samples", ablation_samples),
        ("ablation_q", ablation_q),
        ("ablation_jitter", ablation_jitter),
        ("ext_margin_prediction", ext_margin_prediction),
        ("ext_tamper", ext_tamper),
        ("ext_gpu", ext_gpu),
    ]
}

/// Runs one experiment by name, printing its report.
///
/// # Errors
///
/// Propagates the experiment's error, or reports an unknown name.
pub fn run_experiment(name: &str, opts: &Options) -> Result<String, Box<dyn Error>> {
    for (n, f) in all_experiments().into_iter().chain(all_extensions()) {
        if n == name {
            return f(opts);
        }
    }
    Err(format!("unknown experiment `{name}`").into())
}

/// Standard main body for the per-figure binaries.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn experiment_main(f: ExperimentFn, csv_hint: &str) -> Result<(), Box<dyn Error>> {
    let opts = Options::from_env();
    let report = f(&opts)?;
    println!("{report}");
    println!("(CSV written under results/: {csv_hint})");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        for expected in [
            "table1", "fig01", "fig02", "fig04", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "table2",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let opts = Options {
            quick: true,
            ..Options::default()
        };
        assert!(run_experiment("fig99", &opts).is_err());
    }

    #[test]
    fn backend_for_appends_the_campaign_label() {
        let opts = Options {
            backend: Some("record:/tmp/traces".parse().unwrap()),
            ..Options::default()
        };
        assert_eq!(
            opts.backend_for("a72em"),
            Some("record:/tmp/traces/a72em.jsonl".parse().unwrap())
        );
        assert_eq!(Options::default().backend_for("a72em"), None);
    }
}
