//! Table 2: the five-virus comparison, plus the §8.2 dominant-vs-loop
//! frequency analysis.

use crate::output::{section, write_csv};
use crate::viruses::{self, VirusTag};
use crate::Options;
use emvolt_core::{analyze_virus, format_table2, VirusReport};
use emvolt_platform::RunConfig;
use emvolt_vmin::{FailureModel, VminConfig};
use std::error::Error;

const TAGS: [VirusTag; 5] = [
    VirusTag::A72OcDso,
    VirusTag::A72Em,
    VirusTag::A53Em,
    VirusTag::AmdEm,
    VirusTag::AmdOsc,
];

fn failure_model(tag: VirusTag) -> FailureModel {
    match tag {
        VirusTag::A72OcDso | VirusTag::A72Em => FailureModel::juno_a72(),
        VirusTag::A53Em => FailureModel::juno_a53(),
        VirusTag::AmdEm | VirusTag::AmdOsc => FailureModel::amd(),
    }
}

/// Builds every Table-2 row.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn build_reports(opts: &Options) -> Result<Vec<VirusReport>, Box<dyn Error>> {
    let mut reports = Vec::with_capacity(TAGS.len());
    for tag in TAGS {
        let kernel = viruses::get_or_generate(tag, opts)?;
        let domain = tag.domain();
        let cfg = VminConfig {
            start_v: domain.voltage(),
            floor_v: domain.voltage() - 0.35,
            trials: if opts.quick { 3 } else { 10 },
            loaded_cores: tag.loaded_cores(),
            golden_iterations: if opts.quick { 50 } else { 200 },
            seed: 0x7AB2,
            ..VminConfig::default()
        };
        reports.push(analyze_virus(
            tag.label(),
            &domain,
            &kernel,
            &failure_model(tag),
            &cfg,
            &RunConfig::fast(),
        )?);
    }
    Ok(reports)
}

/// Table 2: dI/dt virus comparison.
pub fn table2(opts: &Options) -> Result<String, Box<dyn Error>> {
    let reports = build_reports(opts)?;
    let mut out = section("Table 2: dI/dt virus comparison");
    out.push_str(&format_table2(&reports));

    out.push_str("\nDominant-to-loop frequency analysis (paper §8.2):\n");
    for r in &reports {
        let (clock, resonance) = match r.name.as_str() {
            "a72OC-DSO" | "a72em" => (1.2e9, 69e6),
            "a53em" => (950e6, 76.5e6),
            _ => (3.1e9, 78e6),
        };
        out.push_str(&format!(
            "  {:<10} dominant/loop = {:.2}  minIPC-for-match = {:.2}  (IPC = {:.2})\n",
            r.name,
            r.dominant_to_loop_ratio(),
            r.min_ipc_for_match(resonance, clock),
            r.ipc
        ));
    }
    out.push_str(
        "\npaper: ARM viruses run dominant frequencies at multiples of the loop\n\
         frequency (minIPC ~3 unreachable), while the 3.1 GHz AMD viruses match\n\
         them (minIPC ~1.3 achievable).\n",
    );

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.loop_instructions.to_string(),
                format!("{:.2}", r.ipc),
                format!("{:.2}", r.loop_period_s * 1e9),
                format!("{:.2}", r.loop_freq_hz / 1e6),
                format!("{:.2}", r.dominant_freq_hz / 1e6),
                format!("{:.1}", r.voltage_margin_v * 1e3),
            ]
        })
        .collect();
    write_csv(
        "table2_viruses.csv",
        &[
            "virus",
            "loop_instr",
            "ipc",
            "loop_period_ns",
            "loop_freq_mhz",
            "dominant_mhz",
            "margin_mv",
        ],
        &rows,
    )?;
    Ok(out)
}
