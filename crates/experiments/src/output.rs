//! Text/CSV output helpers shared by all experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Renders a section header.
pub fn section(title: &str) -> String {
    let bar = "=".repeat(title.len().max(8));
    format!("\n{title}\n{bar}\n")
}

/// Renders an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// The output directory for experiment artifacts (`results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("EMVOLT_RESULTS").unwrap_or_else(|_| "results".to_owned());
    PathBuf::from(dir)
}

/// Writes a CSV file under the results directory.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut body = headers.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Writes a text report under the results directory.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_report(name: &str, text: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, text)?;
    Ok(path)
}

/// Reads a cached artifact if it exists.
pub fn read_cache(rel: &Path) -> Option<String> {
    fs::read_to_string(results_dir().join(rel)).ok()
}

/// Writes a cache artifact.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_cache(rel: &Path, contents: &str) -> std::io::Result<()> {
    let path = results_dir().join(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, contents)
}

/// Formats hertz as megahertz with two decimals.
pub fn mhz(hz: f64) -> String {
    format!("{:.2}", hz / 1e6)
}

/// Formats volts as millivolts with one decimal.
pub fn mv(v: f64) -> String {
    format!("{:.1}", v * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(mhz(69e6), "69.00");
        assert_eq!(mv(0.1505), "150.5");
    }

    #[test]
    fn section_has_underline() {
        let s = section("Fig. 7");
        assert!(s.contains("Fig. 7\n======"));
    }
}
