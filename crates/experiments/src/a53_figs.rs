//! Cortex-A53 experiments: Figs. 12, 13, 14 and the multi-domain
//! monitoring demonstration of Fig. 15.

use crate::juno_figs::vmin_ladder;
use crate::output::{mhz, section, table, write_csv};
use crate::viruses::{self, VirusTag};
use crate::Options;
use emvolt_core::monitor::{capture_multi_domain, detect_signatures};
use emvolt_core::{fast_resonance_sweep, FastSweepConfig};
use emvolt_platform::{spec2006_suite, EmBench, JunoBoard, RunConfig, Suite};
use emvolt_vmin::FailureModel;
use std::error::Error;

/// Fig. 12: EM-amplitude-driven GA on the Cortex-A53.
pub fn fig12(opts: &Options) -> Result<String, Box<dyn Error>> {
    let virus = viruses::generate(VirusTag::A53Em, opts)?;
    let headers = ["gen", "best EM (dBm)", "dominant (MHz)"];
    let rows: Vec<Vec<String>> = virus
        .history
        .iter()
        .map(|r| {
            vec![
                r.index.to_string(),
                format!("{:.2}", r.best_fitness),
                mhz(r.dominant_hz),
            ]
        })
        .collect();
    let mut out = section("Fig. 12: EM-driven GA on the Cortex-A53 (quad-core)");
    out.push_str(&table(&headers, &rows));
    out.push_str(&format!(
        "\nconverged dominant frequency: {} MHz (paper: 75 MHz; sweep says 76.5 MHz)\n",
        mhz(virus.dominant_hz)
    ));
    write_csv("fig12_ga_a53.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 13: resonance exploration on the A53 across the four power-gating
/// scenarios (C0 .. C0C1C2C3); gating off cores raises the resonance and
/// the EM amplitude.
pub fn fig13(opts: &Options) -> Result<String, Box<dyn Error>> {
    let mut out = section("Fig. 13: loop-frequency sweep on the Cortex-A53 per gating state");
    let mut summary = Vec::new();
    let mut all_rows: Vec<Vec<String>> = Vec::new();
    for active in (1..=4usize).rev() {
        let mut board = JunoBoard::new();
        board.a53.power_gate(active);
        let mut bench = EmBench::new(0x1300 + active as u64);
        let mut cfg = FastSweepConfig::for_domain(&board.a53);
        if opts.quick {
            cfg.cpu_freqs_hz
                .retain(|f| ((f / 15.8e6).round() as u64).is_multiple_of(2));
            cfg.samples_per_point = 3;
        }
        let sweep = fast_resonance_sweep(&board.a53, &mut bench, &cfg)?;
        let label = match active {
            4 => "C0C1C2C3",
            3 => "C0C1C2",
            2 => "C0C1",
            _ => "C0",
        };
        let peak_amp = sweep
            .points
            .iter()
            .map(|p| p.amplitude_dbm)
            .fold(f64::NEG_INFINITY, f64::max);
        summary.push(vec![
            label.to_owned(),
            mhz(sweep.resonance_hz),
            format!("{peak_amp:.1}"),
        ]);
        for p in &sweep.points {
            all_rows.push(vec![
                label.to_owned(),
                mhz(p.loop_freq_hz),
                format!("{:.1}", p.amplitude_dbm),
            ]);
        }
    }
    out.push_str(&table(
        &["scenario", "resonance (MHz)", "peak EM (dBm)"],
        &summary,
    ));
    out.push_str(
        "\npaper: 76.5 MHz with four cores powered rising to 97 MHz with one;\n\
         EM amplitude maximized with the least capacitance (C0).\n",
    );
    write_csv(
        "fig13_sweep_a53.csv",
        &["scenario", "loop_mhz", "em_dbm"],
        &all_rows,
    )?;
    Ok(out)
}

/// Fig. 14: V_MIN on the Cortex-A53 — the EM virus stands ~50 mV above
/// the benchmarks.
pub fn fig14(opts: &Options) -> Result<String, Box<dyn Error>> {
    let board = JunoBoard::new();
    let model = FailureModel::juno_a53();
    let mut workloads: Vec<(String, emvolt_isa::Kernel, Suite)> =
        spec2006_suite(emvolt_isa::Isa::ArmV8)
            .into_iter()
            .map(|w| (w.name, w.kernel, w.suite))
            .collect();
    workloads.push((
        "emVirus".into(),
        viruses::get_or_generate(VirusTag::A53Em, opts)?,
        Suite::Virus,
    ));
    let (txt, rows) = vmin_ladder(&board.a53, &workloads, &model, 4, opts)?;
    let mut out = section("Fig. 14: V_MIN on the Cortex-A53 (quad-core, 950 MHz)");
    out.push_str(&txt);
    let virus_vmin: f64 = rows
        .iter()
        .find(|r| r[0] == "emVirus")
        .and_then(|r| r[2].parse().ok())
        .unwrap_or(0.0);
    let best_bench = rows
        .iter()
        .filter(|r| r[0] != "emVirus")
        .filter_map(|r| r[2].parse::<f64>().ok())
        .fold(f64::NEG_INFINITY, f64::max);
    out.push_str(&format!(
        "\nemVirus Vmin - highest benchmark Vmin: {:.1} mV (paper: ~50 mV)\n",
        (virus_vmin - best_bench) * 1e3
    ));
    write_csv(
        "fig14_vmin_a53.csv",
        &["workload", "first_fail_v", "vmin_v", "droop_mv", "p2p_mv"],
        &rows,
    )?;
    Ok(out)
}

/// Fig. 15: simultaneous monitoring of both Juno voltage domains through
/// one antenna.
pub fn fig15(opts: &Options) -> Result<String, Box<dyn Error>> {
    let board = JunoBoard::new();
    let cfg = RunConfig::fast();
    let v72 = viruses::get_or_generate(VirusTag::A72Em, opts)?;
    let v53 = viruses::get_or_generate(VirusTag::A53Em, opts)?;
    let run72 = board.a72.run(&v72, 2, &cfg)?;
    let run53 = board.a53.run(&v53, 4, &cfg)?;

    let mut bench = EmBench::new(0x1515);
    let reading = capture_multi_domain(&mut bench, &[&run72, &run53]);
    let sigs = detect_signatures(&reading, -95.0, 4, 5e6, 15.0);

    let mut out = section("Fig. 15: simultaneous multi-domain monitoring (A72 + A53 viruses)");
    let rows: Vec<Vec<String>> = sigs
        .iter()
        .map(|s| vec![mhz(s.freq_hz), format!("{:.1}", s.level_dbm)])
        .collect();
    out.push_str(&table(&["signature (MHz)", "level (dBm)"], &rows));
    let f72 = emvolt_core::dominant_from_run(&run72);
    let f53 = emvolt_core::dominant_from_run(&run53);
    let sees = |f: f64| sigs.iter().any(|s| (s.freq_hz - f).abs() < 5e6);
    out.push_str(&format!(
        "\nA72 virus signature ({} MHz) visible: {}\n",
        mhz(f72),
        sees(f72)
    ));
    out.push_str(&format!(
        "A53 virus signature ({} MHz) visible: {}\n",
        mhz(f53),
        sees(f53)
    ));
    write_csv("fig15_multidomain.csv", &["freq_mhz", "level_dbm"], &rows)?;
    Ok(out)
}
