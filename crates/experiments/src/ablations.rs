//! Ablation studies of the reproduction's design choices (DESIGN.md §6)
//! and demonstrations of the paper's §10 future-work extensions.

use crate::output::{mhz, section, table, write_csv};
use crate::viruses::{self, VirusTag};
use crate::Options;
use emvolt_core::tamper::{compare, fingerprint, TamperVerdict};
use emvolt_core::{
    fast_resonance_sweep, generate_em_virus, FastSweepConfig, MarginPredictor, VirusGenConfig,
};
use emvolt_cpu::CoreModel;
use emvolt_ga::GaConfig;
use emvolt_isa::kernels::{padded_sweep_kernel, resonant_stress_kernel};
use emvolt_isa::{Isa, Kernel};
use emvolt_platform::{a72_pdn, spec2006_suite, EmBench, GpuCard, RunConfig, VoltageDomain};
use std::error::Error;

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

/// Ablation A — §5.3(b): narrowing the analyzer span around a previously
/// located resonance accelerates the GA (fewer samples needed per
/// individual for the same discrimination) without changing where it
/// converges.
pub fn ablation_band(opts: &Options) -> Result<String, Box<dyn Error>> {
    let domain = a72();
    let (pop, gens) = if opts.quick { (8, 5) } else { (16, 12) };
    let mut rows = Vec::new();
    for (label, band, samples) in [
        ("full 50-200 MHz, 30 samples", (50e6, 200e6), 30usize),
        ("full 50-200 MHz, 5 samples", (50e6, 200e6), 5),
        ("narrowed 59-79 MHz, 5 samples", (59e6, 79e6), 5),
    ] {
        let mut bench = EmBench::new(0xAB1);
        let cfg = VirusGenConfig {
            ga: GaConfig {
                population: pop,
                generations: gens,
                seed: 0xAB1A,
                ..GaConfig::default()
            },
            loaded_cores: 2,
            samples_per_individual: samples,
            band,
            ..VirusGenConfig::default()
        };
        let virus = generate_em_virus("ablation", &domain, &mut bench, &cfg)?;
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", virus.fitness),
            mhz(virus.dominant_hz),
            virus.campaign.display(),
        ]);
    }
    let headers = ["configuration", "final (dBm)", "dominant (MHz)", "campaign"];
    let mut out = section("Ablation A: analyzer-span narrowing (paper §5.3 motivation b)");
    out.push_str(&table(&headers, &rows));
    out.push_str(
        "\nnarrowing the span after a fast sweep keeps convergence on the resonance\n\
         while cutting per-individual measurement time.\n",
    );
    write_csv("ablation_band.csv", &headers, &rows)?;
    Ok(out)
}

/// Ablation B — the paper's 30-sample mean-root-square metric: fewer
/// samples per individual means a noisier fitness.
pub fn ablation_samples(_opts: &Options) -> Result<String, Box<dyn Error>> {
    let domain = a72();
    let run = domain.run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &RunConfig::fast())?;
    let mut rows = Vec::new();
    for n in [1usize, 5, 30] {
        let mut bench = EmBench::new(0xAB2);
        let readings: Vec<f64> = (0..12).map(|_| bench.measure(&run, n).metric_dbm).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let var = readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / readings.len() as f64;
        rows.push(vec![
            n.to_string(),
            format!("{mean:.2}"),
            format!("{:.3}", var.sqrt()),
        ]);
    }
    let headers = ["samples/individual", "mean metric (dBm)", "std (dB)"];
    let mut out = section("Ablation B: spectrum samples per individual (paper uses 30)");
    out.push_str(&table(&headers, &rows));
    out.push_str("\nmore samples tighten the fitness estimate at 0.6 s per sample.\n");
    write_csv("ablation_samples.csv", &headers, &rows)?;
    Ok(out)
}

/// Ablation C — first-order tank sharpness: a flatter tank makes the
/// resonance peak less prominent in the fast sweep (and, at the extreme,
/// lets off-resonance loop harmonics win the GA's metric).
pub fn ablation_q(opts: &Options) -> Result<String, Box<dyn Error>> {
    let mut rows = Vec::new();
    for (label, r_scale) in [
        ("Q/4", 4.0),
        ("Q/2", 2.0),
        ("baseline (Q~8)", 1.0),
        ("2Q", 0.5),
    ] {
        let mut params = a72_pdn();
        params.r_pkg *= r_scale;
        params.r_die *= r_scale;
        let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), params, 1.2e9);
        let mut bench = EmBench::new(0xAB3);
        let mut cfg = FastSweepConfig::for_domain(&domain);
        if opts.quick {
            cfg.cpu_freqs_hz = cfg.cpu_freqs_hz.iter().step_by(2).copied().collect();
        }
        let sweep = fast_resonance_sweep(&domain, &mut bench, &cfg)?;
        let mut amps: Vec<f64> = sweep.points.iter().map(|p| p.amplitude_dbm).collect();
        amps.sort_by(f64::total_cmp);
        let peak = amps.last().copied().unwrap_or(f64::NAN);
        let median = amps[amps.len() / 2];
        rows.push(vec![
            label.to_owned(),
            mhz(sweep.resonance_hz),
            format!("{:.1}", peak - median),
        ]);
    }
    let headers = ["tank damping", "sweep peak (MHz)", "prominence (dB)"];
    let mut out = section("Ablation C: first-order tank sharpness");
    out.push_str(&table(&headers, &rows));
    out.push_str(
        "\nthe sharper the tank, the more prominent the resonance in every EM\n\
         measurement — the paper's platforms all show pronounced peaks.\n",
    );
    write_csv("ablation_q.csv", &headers, &rows)?;
    Ok(out)
}

/// Ablation D — interference jitter: without timing noise, perfectly
/// coherent loop harmonics keep full amplitude arbitrarily far from the
/// resonance; with it, coherence is bounded and the resonance dominates.
pub fn ablation_jitter(_opts: &Options) -> Result<String, Box<dyn Error>> {
    let domain = a72();
    // A coherent kernel whose 2nd harmonic sits ~9 MHz below resonance.
    let off_resonant = resonant_stress_kernel(Isa::ArmV8, 12, 20); // ~60 MHz h1
    let on_resonant = resonant_stress_kernel(Isa::ArmV8, 12, 17); // ~70 MHz h1
    let mut rows = Vec::new();
    for (label, interval) in [
        ("no interference", 0.0f64),
        ("1 event/us", 1e-6),
        ("baseline 1/250 ns", 250e-9),
        ("1 event/50 ns", 50e-9),
    ] {
        let mut cfg = RunConfig::fast();
        cfg.sim.interference_interval_s = interval;
        let mut bench = EmBench::new(0xAB4);
        let run_off = domain.run(&off_resonant, 2, &cfg)?;
        let run_on = domain.run(&on_resonant, 2, &cfg)?;
        let r_off = bench.measure(&run_off, 5);
        let r_on = bench.measure(&run_on, 5);
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", r_on.metric_dbm),
            format!("{:.1}", r_off.metric_dbm),
            format!("{:.1}", r_on.metric_dbm - r_off.metric_dbm),
        ]);
    }
    let headers = [
        "interference rate",
        "on-res kernel (dBm)",
        "off-res kernel (dBm)",
        "advantage (dB)",
    ];
    let mut out = section("Ablation D: interference jitter and harmonic coherence");
    out.push_str(&table(&headers, &rows));
    out.push_str(
        "\ninterference-limited coherence is what keeps the EM landscape peaked at\n\
         the resonance, as on real hardware.\n",
    );
    write_csv("ablation_jitter.csv", &headers, &rows)?;
    Ok(out)
}

/// Extension 1 — §10 (c): voltage-margin prediction from passive EM
/// readings of conventional workloads.
pub fn ext_margin_prediction(opts: &Options) -> Result<String, Box<dyn Error>> {
    let domain = a72();
    let mut bench = EmBench::new(0xE1);
    let suite = spec2006_suite(Isa::ArmV8);
    let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
    let mut cal: Vec<(&str, &Kernel)> = suite
        .iter()
        .take(7)
        .map(|w| (w.name.as_str(), &w.kernel))
        .collect();
    cal.push(("stress", &stress));
    let cfg = RunConfig::fast();
    let predictor = MarginPredictor::calibrate(&domain, &mut bench, &cal, 2, 5, &cfg)?;

    // Held-out set: the rest of SPEC plus the cached GA virus.
    let mut rows = Vec::new();
    let virus = viruses::get_or_generate(VirusTag::A72Em, opts)?;
    let mut held: Vec<(String, Kernel)> = suite
        .iter()
        .skip(7)
        .map(|w| (w.name.clone(), w.kernel.clone()))
        .collect();
    held.push(("emVirus".into(), virus));
    for (name, kernel) in &held {
        let run = domain.run(kernel, 2, &cfg)?;
        let reading = bench.measure(&run, 5);
        let predicted = predictor.predict_droop(&reading);
        rows.push(vec![
            name.clone(),
            format!("{:.1}", predicted * 1e3),
            format!("{:.1}", run.max_droop() * 1e3),
            format!("{:.1}", (predicted - run.max_droop()).abs() * 1e3),
        ]);
    }
    let headers = [
        "workload",
        "predicted droop (mV)",
        "actual (mV)",
        "abs err (mV)",
    ];
    let mut out = section("Extension: EM-based voltage-margin prediction (paper §10 c)");
    out.push_str(&format!(
        "calibration fit R^2 = {:.3} over {} workloads\n\n",
        predictor.r_squared(),
        cal.len()
    ));
    out.push_str(&table(&headers, &rows));
    write_csv("ext_margin_prediction.csv", &headers, &rows)?;
    Ok(out)
}

/// Extension 2 — §10: tamper detection via the PDN's EM fingerprint.
pub fn ext_tamper(opts: &Options) -> Result<String, Box<dyn Error>> {
    let golden_domain = a72();
    let sparse = |d: &VoltageDomain| {
        let mut cfg = FastSweepConfig::for_domain(d);
        if opts.quick {
            cfg.cpu_freqs_hz = cfg.cpu_freqs_hz.iter().step_by(2).copied().collect();
        }
        cfg
    };
    let golden = fingerprint(
        &golden_domain,
        &mut EmBench::new(0xE2),
        &sparse(&golden_domain),
    )?;

    let mut rows = Vec::new();
    let mut check = |label: &str, domain: &VoltageDomain| -> Result<(), Box<dyn Error>> {
        let fp = fingerprint(domain, &mut EmBench::new(0xE2), &sparse(domain))?;
        let verdict = compare(&golden, &fp, 0.05);
        rows.push(vec![
            label.to_owned(),
            mhz(fp.resonance_hz),
            match verdict {
                TamperVerdict::Clean => "clean".to_owned(),
                TamperVerdict::ResonanceShift { shift, .. } => {
                    format!("TAMPERED ({:+.1}% shift)", shift * 100.0)
                }
            },
        ]);
        Ok(())
    };
    check("same board, re-measured", &a72())?;
    let mut less_decap = a72_pdn();
    less_decap.die_capacitance.cluster_farads *= 0.5;
    check(
        "50% shared decap removed",
        &VoltageDomain::new("A72*", CoreModel::cortex_a72(), less_decap, 1.2e9),
    )?;
    let mut implant = a72_pdn();
    implant.die_capacitance.cluster_farads *= 1.6;
    check(
        "parasitic capacitance added",
        &VoltageDomain::new("A72+", CoreModel::cortex_a72(), implant, 1.2e9),
    )?;

    let headers = ["device under test", "resonance (MHz)", "verdict"];
    let mut out = section("Extension: PDN tamper detection via EM fingerprint (paper §10)");
    out.push_str(&format!(
        "golden fingerprint: {} MHz at {:.1} dBm\n\n",
        mhz(golden.resonance_hz),
        golden.peak_dbm
    ));
    out.push_str(&table(&headers, &rows));
    write_csv("ext_tamper.csv", &headers, &rows)?;
    Ok(out)
}

/// Extension 3 — §10 (a): the EM methodology transfers to a GPU PDN.
pub fn ext_gpu(opts: &Options) -> Result<String, Box<dyn Error>> {
    let card = GpuCard::new();
    let mut out = section("Extension: EM methodology on a GPU PDN (paper §10 future work)");
    out.push_str(&format!(
        "GPU card: {} SMs at {:.2} GHz, analytic resonance {:.1} MHz (8 SMs) / {:.1} MHz (1 SM)\n\n",
        card.domain.core_count(),
        card.domain.max_frequency() / 1e9,
        card.domain.pdn_params().first_order_resonance_hz(8) / 1e6,
        card.domain.pdn_params().first_order_resonance_hz(1) / 1e6,
    ));

    // Fast sweep finds the GPU resonance.
    let mut bench = EmBench::new(0xE3);
    let mut cfg = FastSweepConfig::for_domain(&card.domain);
    if opts.quick {
        cfg.cpu_freqs_hz = cfg.cpu_freqs_hz.iter().step_by(2).copied().collect();
    }
    let sweep = fast_resonance_sweep(&card.domain, &mut bench, &cfg)?;
    out.push_str(&format!(
        "fast sweep resonance: {} MHz\n",
        mhz(sweep.resonance_hz)
    ));

    // A reduced GA run converges into the same band.
    let (pop, gens) = if opts.quick { (8, 6) } else { (20, 16) };
    let ga_cfg = VirusGenConfig {
        ga: GaConfig {
            population: pop,
            generations: gens,
            seed: 0xE3A,
            ..GaConfig::default()
        },
        loaded_cores: 8,
        samples_per_individual: if opts.quick { 2 } else { 5 },
        ..VirusGenConfig::default()
    };
    let virus = generate_em_virus("gpuEm", &card.domain, &mut bench, &ga_cfg)?;
    out.push_str(&format!(
        "GA-evolved GPU virus: {:.1} dBm at {} MHz dominant\n",
        virus.fitness,
        mhz(virus.dominant_hz)
    ));
    let agree = (virus.dominant_hz - sweep.resonance_hz).abs() < 12e6;
    out.push_str(&format!(
        "sweep and GA agree on the GPU resonance band: {agree}\n"
    ));
    write_csv(
        "ext_gpu.csv",
        &["quantity", "mhz"],
        &[
            vec!["fast_sweep".into(), mhz(sweep.resonance_hz)],
            vec!["ga_dominant".into(), mhz(virus.dominant_hz)],
        ],
    )?;
    Ok(out)
}
