//! Regenerates fig13 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig13, "fig13_fast_sweep_a53.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
