//! Regenerates fig17 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig17, "fig17_ga_amd.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
