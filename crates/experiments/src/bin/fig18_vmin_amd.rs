//! Regenerates fig18 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig18, "fig18_vmin_amd.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
