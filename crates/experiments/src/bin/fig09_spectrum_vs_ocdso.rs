//! Regenerates fig09 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) = emvolt_experiments::experiment_main(
        emvolt_experiments::fig09,
        "fig09_spectrum_vs_ocdso.csv",
    ) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
