//! Regenerates fig02 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) = emvolt_experiments::experiment_main(
        emvolt_experiments::fig02,
        "fig02_resonant_waveforms.csv",
    ) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
