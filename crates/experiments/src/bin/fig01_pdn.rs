//! Regenerates fig01 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) = emvolt_experiments::experiment_main(emvolt_experiments::fig01, "fig01_pdn.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
