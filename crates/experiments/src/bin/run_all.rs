//! Regenerates every table and figure of the paper in order, writing the
//! combined report to `results/all_experiments.txt`.

use emvolt_experiments::{all_experiments, output, Options};

fn main() {
    let opts = Options::from_env();
    let mut combined = String::new();
    let mut failures = 0usize;
    for (name, f) in all_experiments() {
        eprintln!(">> running {name} ...");
        match f(&opts) {
            Ok(report) => {
                println!("{report}");
                combined.push_str(&report);
            }
            Err(e) => {
                eprintln!("{name} FAILED: {e}");
                failures += 1;
            }
        }
    }
    if let Err(e) = output::write_report("all_experiments.txt", &combined) {
        eprintln!("could not write combined report: {e}");
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
