//! Regenerates every table and figure of the paper in order, writing the
//! combined report to `results/all_experiments.txt`.
//!
//! `--telemetry PATH` writes a JSONL trace with one wall-clock-stamped
//! span per experiment (name, duration, outcome) and appends a campaign
//! summary to `results/campaign_summaries.jsonl`. Wall-clock stamps make
//! these traces non-reproducible by design; use the `emvolt` subcommand
//! flags for deterministic traces.
//!
//! `--backend SPEC` (or `EMVOLT_BACKEND=SPEC`) routes the EM GA
//! campaigns through a measurement backend: `record:DIR` persists one
//! `<label>.jsonl` trace per virus under `DIR`, `replay:DIR` serves them
//! back without touching the simulation chain. Combine with `--refresh`
//! so the campaigns actually run instead of loading cached kernels.

use emvolt_experiments::{all_experiments, output, Options};
use emvolt_obs::{JsonlRecorder, Layer, Telemetry};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let started = Instant::now();
    let tel = match &telemetry_path {
        Some(path) => match JsonlRecorder::create(path) {
            Ok(recorder) => Telemetry::with_wall_clock(Arc::new(recorder), move || {
                started.elapsed().as_secs_f64()
            }),
            Err(e) => {
                eprintln!("--telemetry {path}: {e}");
                std::process::exit(2);
            }
        },
        None => Telemetry::noop(),
    };

    let opts = Options::from_env();
    let mut combined = String::new();
    let mut failures = 0usize;
    for (name, f) in all_experiments() {
        eprintln!(">> running {name} ...");
        let t0 = Instant::now();
        let ok = match f(&opts) {
            Ok(report) => {
                println!("{report}");
                combined.push_str(&report);
                true
            }
            Err(e) => {
                eprintln!("{name} FAILED: {e}");
                failures += 1;
                false
            }
        };
        tel.span(
            name,
            Layer::Cli,
            &[
                ("seconds", t0.elapsed().as_secs_f64()),
                ("ok", if ok { 1.0 } else { 0.0 }),
            ],
        );
    }
    if let Err(e) = output::write_report("all_experiments.txt", &combined) {
        eprintln!("could not write combined report: {e}");
    }
    if tel.sink_enabled() {
        tel.flush();
        let summary = tel.summary("run_all");
        let _ = std::fs::create_dir_all("results");
        if let Err(e) = summary.append_to("results/campaign_summaries.jsonl") {
            eprintln!("could not append campaign summary: {e}");
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
