//! Regenerates fig07 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig07, "fig07_ga_a72.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
