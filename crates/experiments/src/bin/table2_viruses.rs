//! Regenerates table2 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::table2, "table2_viruses.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
