//! Regenerates fig15 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig15, "fig15_multidomain.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
