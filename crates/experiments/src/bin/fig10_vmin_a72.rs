//! Regenerates fig10 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig10, "fig10_vmin_a72.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
