//! Runs every ablation study and future-work extension, writing the
//! combined report to `results/ablations.txt`.

use emvolt_experiments::{all_extensions, output, Options};

fn main() {
    let opts = Options::from_env();
    let mut combined = String::new();
    let mut failures = 0usize;
    for (name, f) in all_extensions() {
        eprintln!(">> running {name} ...");
        match f(&opts) {
            Ok(report) => {
                println!("{report}");
                combined.push_str(&report);
            }
            Err(e) => {
                eprintln!("{name} FAILED: {e}");
                failures += 1;
            }
        }
    }
    if let Err(e) = output::write_report("ablations.txt", &combined) {
        eprintln!("could not write report: {e}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
