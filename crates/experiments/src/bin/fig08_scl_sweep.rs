//! Regenerates fig08 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig08, "fig08_scl_sweep.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
