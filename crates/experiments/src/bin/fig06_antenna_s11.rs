//! Regenerates fig06 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig06, "fig06_antenna_s11.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
