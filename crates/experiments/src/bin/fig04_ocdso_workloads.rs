//! Regenerates fig04 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig04, "fig04_ocdso_workloads.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
