//! Regenerates fig12 of the paper. Pass `--quick` for a reduced run.

fn main() {
    if let Err(e) =
        emvolt_experiments::experiment_main(emvolt_experiments::fig12, "fig12_ga_a53.csv")
    {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
