//! Experiments that exercise the PDN and antenna substrates directly:
//! Table 1, Fig. 1(b)/(c), Fig. 2 and Fig. 6.

use crate::output::{mhz, section, table, write_csv};
use crate::Options;
use emvolt_circuit::{Stimulus, TransientConfig};
use emvolt_dsp::{Spectrum, Window};
use emvolt_em::LoopAntenna;
use emvolt_inst::Vna;
use emvolt_pdn::{find_resonance_peaks, log_freqs, Pdn, PdnParams};
use emvolt_platform::{AmdDesktop, JunoBoard};
use rand::{rngs::StdRng, SeedableRng};
use std::error::Error;

/// Table 1: experimental platform details.
pub fn table1(_opts: &Options) -> Result<String, Box<dyn Error>> {
    let juno = JunoBoard::new();
    let amd = AmdDesktop::new();
    let rows: Vec<Vec<String>> = vec![
        (
            "Juno Board R2",
            &juno.a72,
            "Out of Order",
            "16 nm",
            "OC-DSO",
        ),
        ("Juno Board R2", &juno.a53, "In-Order", "16 nm", "None"),
        (
            "Asus M5A78L LE",
            &amd.domain,
            "Out of Order",
            "45 nm",
            "On-package pads",
        ),
    ]
    .into_iter()
    .map(|(mb, d, uarch, node, vis)| {
        vec![
            mb.to_owned(),
            d.core_model().name.to_owned(),
            d.core_count().to_string(),
            d.core_model().isa.to_string(),
            uarch.to_owned(),
            format!("{:.2} GHz, {:.2} V", d.max_frequency() / 1e9, d.voltage()),
            node.to_owned(),
            vis.to_owned(),
        ]
    })
    .collect();
    let headers = [
        "MB",
        "CPU",
        "Cores",
        "ISA",
        "uArch",
        "Top Freq/Volt",
        "Node",
        "Noise visibility",
    ];
    let mut out = section("Table 1: experimental platform details");
    out.push_str(&table(&headers, &rows));
    write_csv("table1_platforms.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 1(b): PDN input impedance versus frequency (three resonances) and
/// Fig. 1(c): time-domain response to a step-current excitation.
pub fn fig01(opts: &Options) -> Result<String, Box<dyn Error>> {
    let params = PdnParams::generic_mobile();
    let pdn = Pdn::new(params.clone(), 2);
    let n = if opts.quick { 200 } else { 1200 };
    let freqs = log_freqs(1e3, 1e9, n);
    let sweep = pdn.impedance_sweep(&freqs)?;

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .step_by((n / 40).max(1))
        .map(|(f, z)| vec![format!("{:.3e}", f), format!("{:.4}", z.norm())])
        .collect();
    let mut out = section("Fig. 1(b): PDN input impedance |Z(f)| seen from the die");
    out.push_str(&table(&["freq_hz", "z_ohm"], &rows));
    write_csv(
        "fig01b_impedance.csv",
        &["freq_hz", "z_ohm"],
        &sweep
            .iter()
            .map(|(f, z)| vec![format!("{f}"), format!("{}", z.norm())])
            .collect::<Vec<_>>(),
    )?;

    let peaks = find_resonance_peaks(&sweep);
    out.push_str("\nResonance peaks (strongest first):\n");
    for p in peaks.iter().take(3) {
        out.push_str(&format!(
            "  {:>10.3} MHz   {:.1} mOhm\n",
            p.frequency_hz / 1e6,
            p.impedance_ohms * 1e3
        ));
    }
    out.push_str(&format!(
        "Analytic 1st-order resonance: {} MHz\n",
        mhz(params.first_order_resonance_hz(2))
    ));

    // Fig. 1(c): step response.
    let mut pdn_step = Pdn::new(params, 2);
    pdn_step.set_load(Stimulus::Step {
        t0: 50e-9,
        before: 0.0,
        after: 1.0,
    });
    let cfg = TransientConfig::new(0.25e-9, 1.5e-6);
    let (v, _) = pdn_step.transient(&cfg)?;
    let spec = Spectrum::of_trace(&v.window(50e-9, 1.5e-6), Window::Hann);
    let ring = spec.peak_in_band(20e6, 200e6);
    out.push_str(&section("Fig. 1(c): step-current response of V_DIE"));
    out.push_str(&format!(
        "first droop: {:.1} mV below nominal; ringing frequency: {} MHz\n",
        v.max_droop_below(1.0) * 1e3,
        ring.map(|(f, _)| mhz(f)).unwrap_or_else(|| "-".into())
    ));
    write_csv(
        "fig01c_step.csv",
        &["t_s", "v_die"],
        &v.iter()
            .step_by(8)
            .map(|(t, val)| vec![format!("{t}"), format!("{val}")])
            .collect::<Vec<_>>(),
    )?;
    Ok(out)
}

/// Fig. 2: V_DIE and I_DIE under a persistent pulsed I_LOAD at the
/// first-order resonance — both undergo large-magnitude oscillations.
pub fn fig02(_opts: &Options) -> Result<String, Box<dyn Error>> {
    let params = PdnParams::generic_mobile();
    let f_res = params.first_order_resonance_hz(2);
    let mut pdn = Pdn::new(params, 2);
    let cfg = TransientConfig::new(0.2e-9, 4e-6).with_warmup(2e-6);

    let mut run = |f: f64| -> Result<(f64, f64), Box<dyn Error>> {
        pdn.set_load(Stimulus::square(0.0, 1.0, f));
        let (v, i) = pdn.transient(&cfg)?;
        Ok((v.peak_to_peak(), i.peak_to_peak()))
    };
    let (v_res, i_res) = run(f_res)?;
    let (v_off_lo, i_off_lo) = run(f_res / 3.0)?;
    let (v_off_hi, i_off_hi) = run(f_res * 2.5)?;

    let rows = vec![
        vec![
            format!("{} (resonant)", mhz(f_res)),
            format!("{:.1}", v_res * 1e3),
            format!("{:.2}", i_res),
        ],
        vec![
            mhz(f_res / 3.0),
            format!("{:.1}", v_off_lo * 1e3),
            format!("{:.2}", i_off_lo),
        ],
        vec![
            mhz(f_res * 2.5),
            format!("{:.1}", v_off_hi * 1e3),
            format!("{:.2}", i_off_hi),
        ],
    ];
    let mut out = section("Fig. 2: resonant amplification of V_DIE / I_DIE (1 A square load)");
    out.push_str(&table(
        &["pulse freq (MHz)", "V_DIE p2p (mV)", "I_DIE p2p (A)"],
        &rows,
    ));
    out.push_str(&format!(
        "\nresonant V amplification vs off-resonance: {:.1}x / {:.1}x; I_DIE swing exceeds the 1 A load: {}\n",
        v_res / v_off_lo,
        v_res / v_off_hi,
        i_res > 1.0
    ));
    write_csv(
        "fig02_resonance.csv",
        &["freq_mhz", "v_p2p_mv", "i_p2p_a"],
        &rows,
    )?;
    Ok(out)
}

/// Fig. 6: measured |S11| of the square loop antenna.
pub fn fig06(opts: &Options) -> Result<String, Box<dyn Error>> {
    let antenna = LoopAntenna::default();
    let vna = Vna::default();
    let n = if opts.quick { 100 } else { 400 };
    let freqs: Vec<f64> = (1..=n).map(|i| i as f64 * 4e9 / n as f64).collect();
    let mut rng = StdRng::seed_from_u64(0x5_11);
    let s11 = vna.measure_s11(&antenna, &freqs, &mut rng);
    let rows: Vec<Vec<String>> = s11
        .iter()
        .step_by((n / 40).max(1))
        .map(|(f, db)| vec![format!("{:.2}", f / 1e9), format!("{db:.2}")])
        .collect();
    let mut out = section("Fig. 6: antenna |S11| (square loop, 3 cm side)");
    out.push_str(&table(&["freq_ghz", "s11_db"], &rows));
    let (f_dip, db_dip) = s11
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .copied()
        .unwrap();
    out.push_str(&format!(
        "\nself-resonance dip: {:.2} GHz at {:.1} dB (paper: 2.95 GHz)\n",
        f_dip / 1e9,
        db_dip
    ));
    out.push_str(&format!(
        "flat in the 50-200 MHz measurement band: {}\n",
        antenna.is_flat_at(50e6) && antenna.is_flat_at(200e6)
    ));
    write_csv(
        "fig06_s11.csv",
        &["freq_hz", "s11_db"],
        &s11.iter()
            .map(|(f, db)| vec![format!("{f}"), format!("{db}")])
            .collect::<Vec<_>>(),
    )?;
    Ok(out)
}
