//! AMD Athlon II experiments: Figs. 16, 17 and 18.

use crate::juno_figs::vmin_ladder;
use crate::output::{mhz, section, table, write_csv};
use crate::viruses::{self, VirusTag};
use crate::Options;
use emvolt_core::{fast_resonance_sweep, FastSweepConfig};
use emvolt_platform::{desktop_suite, AmdDesktop, EmBench, Suite};
use emvolt_vmin::{vmin_test, FailureModel, VminConfig};
use std::error::Error;

/// Fig. 16: loop-frequency sweep on the Athlon II — resonance at 78 MHz.
pub fn fig16(opts: &Options) -> Result<String, Box<dyn Error>> {
    let amd = AmdDesktop::new();
    let mut bench = EmBench::new(0x1616);
    let mut cfg = FastSweepConfig::for_domain(&amd.domain);
    if opts.quick {
        cfg.cpu_freqs_hz
            .retain(|f| ((f / 51.7e6).round() as u64).is_multiple_of(2));
        cfg.samples_per_point = 3;
    }
    let sweep = fast_resonance_sweep(&amd.domain, &mut bench, &cfg)?;
    let headers = ["cpu clock (MHz)", "loop freq (MHz)", "EM (dBm)"];
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                mhz(p.cpu_freq_hz),
                mhz(p.loop_freq_hz),
                format!("{:.1}", p.amplitude_dbm),
            ]
        })
        .collect();
    let mut out = section("Fig. 16: loop-frequency sweep on the Athlon II X4 645");
    out.push_str(&table(&headers, &rows));
    out.push_str(&format!(
        "\nresonance: {} MHz (paper: 78 MHz)\n",
        mhz(sweep.resonance_hz)
    ));
    write_csv("fig16_sweep_amd.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 17: EM-amplitude-driven GA on the AMD CPU.
pub fn fig17(opts: &Options) -> Result<String, Box<dyn Error>> {
    let virus = viruses::generate(VirusTag::AmdEm, opts)?;
    let headers = ["gen", "best EM (dBm)", "dominant (MHz)"];
    let rows: Vec<Vec<String>> = virus
        .history
        .iter()
        .map(|r| {
            vec![
                r.index.to_string(),
                format!("{:.2}", r.best_fitness),
                mhz(r.dominant_hz),
            ]
        })
        .collect();
    let mut out = section("Fig. 17: EM-driven GA on the AMD CPU (quad-core)");
    out.push_str(&table(&headers, &rows));
    out.push_str(&format!(
        "\nconverged dominant frequency: {} MHz (paper: 77 MHz; sweep says 78 MHz)\n",
        mhz(virus.dominant_hz)
    ));
    write_csv("fig17_ga_amd.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 18: V_MIN and voltage-noise on the AMD CPU across desktop
/// workloads, stability tests and both GA viruses, plus the two-core EM
/// virus data point.
pub fn fig18(opts: &Options) -> Result<String, Box<dyn Error>> {
    let amd = AmdDesktop::new();
    let model = FailureModel::amd();
    let mut workloads: Vec<(String, emvolt_isa::Kernel, Suite)> = desktop_suite()
        .into_iter()
        .map(|w| (w.name, w.kernel, w.suite))
        .collect();
    let em = viruses::get_or_generate(VirusTag::AmdEm, opts)?;
    let osc = viruses::get_or_generate(VirusTag::AmdOsc, opts)?;
    workloads.push(("OscVirus".into(), osc, Suite::Virus));
    workloads.push(("EMvirus".into(), em.clone(), Suite::Virus));

    let (txt, mut rows) = vmin_ladder(&amd.domain, &workloads, &model, 4, opts)?;
    let mut out = section("Fig. 18: V_MIN and voltage noise on the AMD CPU (quad-core)");
    out.push_str(&txt);

    // The paper's extra data point: the EM virus on only two active cores
    // still beats the four-core stability tests.
    let cfg2 = VminConfig {
        start_v: amd.domain.voltage(),
        floor_v: amd.domain.voltage() - 0.35,
        trials: if opts.quick { 5 } else { 30 },
        loaded_cores: 2,
        golden_iterations: if opts.quick { 50 } else { 200 },
        seed: 0x1802,
        ..VminConfig::default()
    };
    let res2 = vmin_test(&amd.domain, &em, &model, &cfg2)?;
    out.push_str(&format!(
        "\nEMvirus on 2 active cores: Vmin {:.3} V, droop {:.1} mV\n",
        res2.vmin_v,
        res2.max_droop_v * 1e3
    ));
    rows.push(vec![
        "EMvirus(2core)".into(),
        if res2.first_failure_v.is_nan() {
            "<floor".into()
        } else {
            format!("{:.3}", res2.first_failure_v)
        },
        format!("{:.3}", res2.vmin_v),
        format!("{:.1}", res2.max_droop_v * 1e3),
        format!("{:.1}", res2.peak_to_peak_v * 1e3),
    ]);

    let vmin_of = |name: &str| -> f64 {
        rows.iter()
            .find(|r| r[0] == name)
            .and_then(|r| r[2].parse().ok())
            .unwrap_or(f64::NAN)
    };
    out.push_str(&format!(
        "EMvirus(2core) Vmin {:.3} V vs prime95 4-core {:.3} V: still more severe: {}\n",
        vmin_of("EMvirus(2core)"),
        vmin_of("prime95"),
        vmin_of("EMvirus(2core)") > vmin_of("prime95")
    ));
    out.push_str(&format!(
        "EMvirus margin below nominal: {:.1} mV (paper: 37.5 mV)\n",
        (amd.domain.voltage() - vmin_of("EMvirus")) * 1e3
    ));
    write_csv(
        "fig18_vmin_amd.csv",
        &["workload", "first_fail_v", "vmin_v", "droop_mv", "p2p_mv"],
        &rows,
    )?;
    Ok(out)
}
