//! Cortex-A72 experiments on the Juno board: Figs. 4, 7, 8, 9, 10, 11.

use crate::output::{mhz, mv, section, table, write_csv};
use crate::viruses::{self, VirusTag};
use crate::Options;
use emvolt_core::{annotate_droop, fast_resonance_sweep, FastSweepConfig};
use emvolt_dsp::{Spectrum, Window};
use emvolt_inst::{Oscilloscope, ScopeConfig};
use emvolt_platform::{
    spec2006_suite, EmBench, JunoBoard, RunConfig, Scl, Suite, Workload, RESONANCE_BAND,
};
use emvolt_vmin::{vmin_test, FailureModel, VminConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::error::Error;

fn run_config(opts: &Options) -> RunConfig {
    if opts.quick {
        RunConfig::fast()
    } else {
        RunConfig::default()
    }
}

/// Fig. 4: OC-DSO voltage waveforms for idle, a SPEC benchmark and the
/// dI/dt virus — the virus causes by far the largest noise.
pub fn fig04(opts: &Options) -> Result<String, Box<dyn Error>> {
    let board = JunoBoard::new();
    let cfg = run_config(opts);
    let virus = viruses::get_or_generate(VirusTag::A72Em, opts)?;
    let spec = spec2006_suite(emvolt_isa::Isa::ArmV8);
    let bench = spec.iter().find(|w| w.name == "gcc").expect("gcc exists");

    let mut rng = StdRng::seed_from_u64(0x0405);
    let mut row = |name: &str, run: emvolt_platform::DomainRun| {
        let shot = board.ocdso.capture(&run.v_die, &mut rng);
        vec![
            name.to_owned(),
            mv(shot.max_droop_below(1.0)),
            mv(shot.peak_to_peak()),
            mv(shot.mean()),
        ]
    };
    let rows = vec![
        row("idle", board.a72.run_idle(&cfg)?),
        row("gcc (SPEC2006)", board.a72.run(&bench.kernel, 2, &cfg)?),
        row("dI/dt virus", board.a72.run(&virus, 2, &cfg)?),
    ];
    let headers = ["workload", "max droop (mV)", "p2p (mV)", "mean (mV)"];
    let mut out = section("Fig. 4: OC-DSO voltage waveforms on the Cortex-A72 (dual-core)");
    out.push_str(&table(&headers, &rows));
    write_csv("fig04_waveforms.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 7: EM-driven GA run on the Cortex-A72 — per-generation best EM
/// amplitude, dominant frequency and (re-measured) maximum droop.
pub fn fig07(opts: &Options) -> Result<String, Box<dyn Error>> {
    let board = JunoBoard::new();
    let mut virus = viruses::generate(VirusTag::A72Em, opts)?;
    let scope = Oscilloscope::new(ScopeConfig::oc_dso());
    let cfg = viruses::ga_config(VirusTag::A72Em, opts);
    annotate_droop(&mut virus, &board.a72, &scope, &cfg, 0x0707)?;

    let headers = ["gen", "best EM (dBm)", "dominant (MHz)", "max droop (mV)"];
    let rows: Vec<Vec<String>> = virus
        .history
        .iter()
        .map(|r| {
            vec![
                r.index.to_string(),
                format!("{:.2}", r.best_fitness),
                mhz(r.dominant_hz),
                r.droop_v.map(mv).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    let mut out = section("Fig. 7: EM-driven GA on Cortex-A72 (dual-core)");
    out.push_str(&table(&headers, &rows));
    out.push_str(&format!(
        "\nconverged dominant frequency: {} MHz (paper: 67 MHz; SCL says 66-72 MHz)\n",
        mhz(virus.dominant_hz)
    ));
    out.push_str(&format!(
        "physical campaign length: {} (paper: ~15 h for 60 generations)\n",
        virus.campaign.display()
    ));
    // EM amplitude and droop must rise together (the paper's correlation).
    let first = &virus.history[0];
    let last = virus.history.last().expect("non-empty history");
    out.push_str(&format!(
        "EM amplitude: {:.1} -> {:.1} dBm; droop: {:.1} -> {:.1} mV\n",
        first.best_fitness,
        last.best_fitness,
        first.droop_v.unwrap_or(0.0) * 1e3,
        last.droop_v.unwrap_or(0.0) * 1e3,
    ));
    write_csv("fig07_ga_a72.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 8: SCL square-wave sweep on the A72 PDN, two powered cores vs
/// one.
pub fn fig08(opts: &Options) -> Result<String, Box<dyn Error>> {
    let mut board = JunoBoard::new();
    let cfg = RunConfig::fast();
    let step = if opts.quick { 4e6 } else { 1e6 };
    let freqs: Vec<f64> = {
        let mut v = Vec::new();
        let mut f = 40e6;
        while f <= 120e6 {
            v.push(f);
            f += step;
        }
        v
    };
    let scl = Scl::default();
    let sweep2 = scl.sweep(&board.a72, &freqs, &cfg)?;
    board.a72.power_gate(1);
    let sweep1 = scl.sweep(&board.a72, &freqs, &cfg)?;

    let headers = ["freq (MHz)", "p2p C0C1 (mV)", "p2p C0 (mV)"];
    let rows: Vec<Vec<String>> = sweep2
        .iter()
        .zip(&sweep1)
        .map(|(a, b)| vec![mhz(a.freq_hz), mv(a.p2p_v), mv(b.p2p_v)])
        .collect();
    let peak2 = Scl::peak(&sweep2).expect("non-empty sweep");
    let peak1 = Scl::peak(&sweep1).expect("non-empty sweep");
    let mut out = section("Fig. 8: SCL stimulus sweep on the Cortex-A72 PDN");
    out.push_str(&table(&headers, &rows));
    out.push_str(&format!(
        "\nresonance with both cores powered (C0C1): {} MHz (paper: 66-72 MHz)\n",
        mhz(peak2.freq_hz)
    ));
    out.push_str(&format!(
        "resonance with one core powered (C0):     {} MHz (paper: 80-86 MHz)\n",
        mhz(peak1.freq_hz)
    ));
    write_csv("fig08_scl.csv", &headers, &rows)?;
    Ok(out)
}

/// Fig. 9: spectrum-analyzer reading versus FFT of OC-DSO voltage samples
/// while the EM virus runs — both must show the same spikes.
pub fn fig09(opts: &Options) -> Result<String, Box<dyn Error>> {
    let board = JunoBoard::new();
    let cfg = run_config(opts);
    let virus = viruses::get_or_generate(VirusTag::A72Em, opts)?;
    let run = board.a72.run(&virus, 2, &cfg)?;

    // Analyzer view of the radiated field.
    let mut bench = EmBench::new(0x0909);
    let sweep = bench.sweep(&run);
    let (f_sa, dbm_sa) = sweep
        .peak_in_band(RESONANCE_BAND.0, RESONANCE_BAND.1)
        .expect("band covered");

    // OC-DSO capture -> FFT.
    let mut rng = StdRng::seed_from_u64(0x0910);
    let shot = board.ocdso.capture(&run.v_die, &mut rng);
    let vspec = Spectrum::of_trace(&shot, Window::Hann);
    let (f_dso, amp_dso) = vspec
        .peak_in_band(RESONANCE_BAND.0, RESONANCE_BAND.1)
        .expect("band covered");

    // Secondary spikes: the loop fundamental.
    let loop_f = run.loop_frequency;
    let sa_at_loop = sweep
        .peak_in_band(loop_f * 0.8, loop_f * 1.2)
        .map(|(f, _)| f);
    let dso_at_loop = vspec
        .peak_in_band(loop_f * 0.8, loop_f * 1.2)
        .map(|(f, _)| f);

    let mut out = section("Fig. 9: spectrum analyzer vs FFT of OC-DSO voltage samples");
    out.push_str(&format!(
        "analyzer dominant:  {} MHz at {:.1} dBm\n",
        mhz(f_sa),
        dbm_sa
    ));
    out.push_str(&format!(
        "OC-DSO FFT dominant: {} MHz at {:.3} mV\n",
        mhz(f_dso),
        amp_dso * 1e3
    ));
    out.push_str(&format!(
        "dominant frequencies agree within one bin: {}\n",
        (f_sa - f_dso).abs() < 2e6
    ));
    out.push_str(&format!(
        "loop fundamental {} MHz visible on both: {}\n",
        mhz(loop_f),
        sa_at_loop.is_some() && dso_at_loop.is_some()
    ));
    write_csv(
        "fig09_compare.csv",
        &["instrument", "dominant_mhz"],
        &[
            vec!["spectrum_analyzer".into(), mhz(f_sa)],
            vec!["ocdso_fft".into(), mhz(f_dso)],
        ],
    )?;
    Ok(out)
}

/// Rendered ladder text plus its raw rows.
pub(crate) type LadderOutput = (String, Vec<Vec<String>>);

/// Shared V_MIN ladder over a set of workloads.
pub(crate) fn vmin_ladder(
    domain: &emvolt_platform::VoltageDomain,
    workloads: &[(String, emvolt_isa::Kernel, Suite)],
    model: &FailureModel,
    loaded_cores: usize,
    opts: &Options,
) -> Result<LadderOutput, Box<dyn Error>> {
    let mut rows = Vec::new();
    for (name, kernel, suite) in workloads {
        let trials = match suite {
            Suite::Virus => {
                if opts.quick {
                    5
                } else {
                    30
                }
            }
            _ => 2,
        };
        let cfg = VminConfig {
            start_v: domain.voltage(),
            floor_v: domain.voltage() - 0.35,
            trials,
            loaded_cores,
            golden_iterations: if opts.quick { 50 } else { 200 },
            seed: 0xF00D ^ name.len() as u64,
            ..VminConfig::default()
        };
        let res = vmin_test(domain, kernel, model, &cfg)?;
        rows.push(vec![
            name.clone(),
            if res.first_failure_v.is_nan() {
                "<floor".into()
            } else {
                format!("{:.3}", res.first_failure_v)
            },
            format!("{:.3}", res.vmin_v),
            mv(res.max_droop_v),
            mv(res.peak_to_peak_v),
        ]);
    }
    let headers = [
        "workload",
        "first fail (V)",
        "Vmin (V)",
        "droop (mV)",
        "p2p (mV)",
    ];
    Ok((table(&headers, &rows), rows))
}

/// A named workload entry for the V_MIN ladders.
pub(crate) type LadderEntry = (String, emvolt_isa::Kernel, Suite);

/// Builds the Fig. 10 workload list: idle stand-in, the SPEC suite and
/// both A72 viruses.
fn fig10_workloads(opts: &Options) -> Result<Vec<LadderEntry>, Box<dyn Error>> {
    let mut list: Vec<(String, emvolt_isa::Kernel, Suite)> = spec2006_suite(emvolt_isa::Isa::ArmV8)
        .into_iter()
        .map(|w: Workload| (w.name, w.kernel, w.suite))
        .collect();
    let ocdso = viruses::get_or_generate(VirusTag::A72OcDso, opts)?;
    let em = viruses::get_or_generate(VirusTag::A72Em, opts)?;
    list.push(("ocdsoVirus".into(), ocdso, Suite::Virus));
    list.push(("emVirus".into(), em, Suite::Virus));
    Ok(list)
}

/// Fig. 10: V_MIN and maximum droop across workloads on the Cortex-A72.
pub fn fig10(opts: &Options) -> Result<String, Box<dyn Error>> {
    let board = JunoBoard::new();
    let model = FailureModel::juno_a72();
    let workloads = fig10_workloads(opts)?;
    let (txt, rows) = vmin_ladder(&board.a72, &workloads, &model, 2, opts)?;
    let mut out = section("Fig. 10: V_MIN and max droop on the Cortex-A72 (dual-core runs)");
    out.push_str(&txt);

    // The paper's claims: viruses droop >= ~25 mV more than lbm and have
    // ~20 mV higher V_MIN.
    let find = |name: &str| rows.iter().find(|r| r[0] == name).cloned();
    if let (Some(lbm), Some(em)) = (find("lbm"), find("emVirus")) {
        let lbm_droop: f64 = lbm[3].parse().unwrap_or(0.0);
        let em_droop: f64 = em[3].parse().unwrap_or(0.0);
        let lbm_vmin: f64 = lbm[2].parse().unwrap_or(0.0);
        let em_vmin: f64 = em[2].parse().unwrap_or(0.0);
        out.push_str(&format!(
            "\nemVirus droop - lbm droop: {:.1} mV (paper: >25 mV)\n",
            em_droop - lbm_droop
        ));
        out.push_str(&format!(
            "emVirus Vmin - lbm Vmin:   {:.1} mV (paper: ~20 mV)\n",
            (em_vmin - lbm_vmin) * 1e3
        ));
    }
    write_csv(
        "fig10_vmin_a72.csv",
        &["workload", "first_fail_v", "vmin_v", "droop_mv", "p2p_mv"],
        &rows,
    )?;
    Ok(out)
}

/// Fig. 11: fast EM loop-frequency sweep on the A72 with both gating
/// states.
pub fn fig11(opts: &Options) -> Result<String, Box<dyn Error>> {
    let mut board = JunoBoard::new();
    let mut bench = EmBench::new(0x1111);
    let mut cfg = FastSweepConfig::for_domain(&board.a72);
    if opts.quick {
        cfg.cpu_freqs_hz
            .retain(|f| ((f / 20e6).round() as u64).is_multiple_of(2));
        cfg.samples_per_point = 3;
    }
    let sweep2 = fast_resonance_sweep(&board.a72, &mut bench, &cfg)?;
    board.a72.power_gate(1);
    let sweep1 = fast_resonance_sweep(&board.a72, &mut bench, &cfg)?;

    let headers = [
        "cpu clock (MHz)",
        "loop freq (MHz)",
        "EM C0C1 (dBm)",
        "EM C0 (dBm)",
    ];
    let rows: Vec<Vec<String>> = sweep2
        .points
        .iter()
        .zip(&sweep1.points)
        .map(|(a, b)| {
            vec![
                mhz(a.cpu_freq_hz),
                mhz(a.loop_freq_hz),
                format!("{:.1}", a.amplitude_dbm),
                format!("{:.1}", b.amplitude_dbm),
            ]
        })
        .collect();
    let mut out = section("Fig. 11: EM loop-frequency sweep on the Cortex-A72");
    out.push_str(&table(&headers, &rows));
    out.push_str(&format!(
        "\npeak loop frequency, both cores powered: {} MHz (paper: ~70 MHz)\n",
        mhz(sweep2.resonance_hz)
    ));
    out.push_str(&format!(
        "peak loop frequency, one core powered:   {} MHz (paper: ~85 MHz)\n",
        mhz(sweep1.resonance_hz)
    ));
    out.push_str(&format!(
        "physical sweep time: {} (paper: ~15 min)\n",
        sweep2.campaign.display()
    ));
    write_csv("fig11_sweep_a72.csv", &headers, &rows)?;
    Ok(out)
}
