//! # emvolt-vmin
//!
//! The V_MIN test harness of §5.2: starting from a high supply voltage,
//! step down (10 mV in the paper) until execution deviates from a golden
//! reference — through silent data corruption, an application crash or a
//! system crash — and report both the first-failure voltage and the
//! lowest safe voltage.
//!
//! The failure model is a timing wall: a workload fails when its worst
//! die-voltage excursion dips below a critical voltage `V_crit(f)`.
//! Within a small band above outright crash the workload suffers SDC
//! (implemented with real bit-flip fault injection checked against the
//! golden digest), mirroring the paper's observation that SDC/application
//! crashes appear ~10 mV above the system-crash voltage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;

pub use campaign::{vmin_test_resumable, VminCampaign};

use emvolt_engine::DriveOptions;
use emvolt_isa::Kernel;
use emvolt_obs::Telemetry;
use emvolt_platform::{DomainError, RunConfig, VoltageDomain};
use rand::Rng;

/// The timing-wall failure model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Critical die voltage at the reference frequency: dipping below it
    /// begins to violate timing.
    pub v_crit: f64,
    /// Reference frequency for `v_crit`.
    pub f_ref: f64,
    /// Sensitivity of the critical voltage to clock frequency, in volts
    /// per unit relative frequency (`v_crit(f) = v_crit + k*(f/f_ref-1)`).
    pub freq_sensitivity: f64,
    /// Width of the SDC/app-crash band above the system-crash voltage
    /// (~10 mV in the paper).
    pub sdc_band: f64,
    /// Run-to-run variation (sigma, volts) of the worst droop — a short
    /// observation window underestimates the true worst case, so repeated
    /// trials scatter (the paper runs 30 V_MIN tests per virus).
    pub trial_sigma: f64,
}

impl FailureModel {
    /// Model for the Juno Cortex-A72 cluster at 1.2 GHz / 1.0 V nominal.
    pub fn juno_a72() -> Self {
        FailureModel {
            v_crit: 0.777,
            f_ref: 1.2e9,
            freq_sensitivity: 0.25,
            sdc_band: 0.010,
            trial_sigma: 0.0020,
        }
    }

    /// Model for the Juno Cortex-A53 cluster at 950 MHz / 1.0 V nominal.
    pub fn juno_a53() -> Self {
        FailureModel {
            v_crit: 0.803,
            f_ref: 950e6,
            freq_sensitivity: 0.22,
            sdc_band: 0.010,
            trial_sigma: 0.0020,
        }
    }

    /// Model for the AMD Athlon II at 3.1 GHz / 1.4 V nominal.
    pub fn amd() -> Self {
        FailureModel {
            v_crit: 1.200,
            f_ref: 3.1e9,
            freq_sensitivity: 0.35,
            sdc_band: 0.010,
            trial_sigma: 0.0025,
        }
    }

    /// Critical voltage at clock `f`.
    pub fn v_crit_at(&self, f: f64) -> f64 {
        self.v_crit + self.freq_sensitivity * (f / self.f_ref - 1.0)
    }
}

/// Outcome of one undervolted trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Output matched the golden reference.
    Pass,
    /// Output deviated silently from the golden reference.
    Sdc,
    /// The workload crashed but the system survived.
    AppCrash,
    /// The whole system went down.
    SystemCrash,
}

impl Outcome {
    /// `true` for any deviation from nominal execution.
    pub fn is_failure(self) -> bool {
        self != Outcome::Pass
    }
}

/// V_MIN campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct VminConfig {
    /// First (highest) voltage tested.
    pub start_v: f64,
    /// Step size (10 mV in the paper).
    pub step_v: f64,
    /// Do not test below this voltage.
    pub floor_v: f64,
    /// Trials per voltage (30 for viruses, 2 for SPEC in the paper).
    pub trials: usize,
    /// Cores loaded with the workload.
    pub loaded_cores: usize,
    /// Physics fidelity of the underlying runs.
    pub run: RunConfig,
    /// Loop iterations used for the golden-output comparison.
    pub golden_iterations: usize,
    /// Noise seed for trial-to-trial variation and fault injection.
    pub seed: u64,
}

impl Default for VminConfig {
    fn default() -> Self {
        VminConfig {
            start_v: 1.0,
            step_v: 0.010,
            floor_v: 0.70,
            trials: 5,
            loaded_cores: 2,
            run: RunConfig::fast(),
            golden_iterations: 200,
            seed: 0xD00B,
        }
    }
}

/// Result of a V_MIN campaign for one workload.
#[derive(Debug, Clone)]
pub struct VminResult {
    /// Highest voltage at which *any* deviation was observed — the value
    /// Figs. 10/14/18 report. `NaN` if nothing failed above the floor.
    pub first_failure_v: f64,
    /// Lowest voltage at which every trial passed (one step above the
    /// first failure).
    pub vmin_v: f64,
    /// Maximum droop measured at the starting voltage.
    pub max_droop_v: f64,
    /// Peak-to-peak voltage noise at the starting voltage.
    pub peak_to_peak_v: f64,
    /// Per-voltage outcomes, highest voltage first.
    pub ladder: Vec<(f64, Vec<Outcome>)>,
}

/// Runs a V_MIN campaign for `kernel` on a copy of `domain`.
///
/// # Errors
///
/// Propagates simulation failures from the underlying domain runs.
pub fn vmin_test(
    domain: &VoltageDomain,
    kernel: &Kernel,
    model: &FailureModel,
    config: &VminConfig,
) -> Result<VminResult, DomainError> {
    vmin_test_with(domain, kernel, model, config, Telemetry::noop())
}

/// Like [`vmin_test`], charging the single physical domain run to
/// `telemetry` — counters, spans and (when a wave sink is attached) the
/// `cpu.*` / `pdn.*` waveform traces of the droop measurement that anchors
/// the whole ladder. The ladder itself is pure arithmetic on that run and
/// emits nothing.
///
/// # Errors
///
/// Propagates simulation failures from the underlying domain run.
pub fn vmin_test_with(
    domain: &VoltageDomain,
    kernel: &Kernel,
    model: &FailureModel,
    config: &VminConfig,
    telemetry: Telemetry,
) -> Result<VminResult, DomainError> {
    // No batch limit in the default options, so the drive always runs to
    // completion.
    let result = vmin_test_resumable(
        domain,
        kernel,
        model,
        config,
        telemetry,
        &DriveOptions::default(),
    )?;
    Ok(result.expect("campaign without a batch limit always completes"))
}

/// Standard-Gumbel-distributed positive excursion scaled by `sigma`,
/// modelling the tail of the worst droop over a long physical run.
pub(crate) fn gumbel<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(1e-12..1.0);
    let g = -(-u.ln()).ln(); // standard Gumbel, mean ~0.577
    (g + 0.5) * sigma * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{
        kernels::{resonant_stress_kernel, sweep_kernel},
        Isa,
    };
    use emvolt_platform::a72_pdn;

    fn a72_domain() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    fn quick_cfg() -> VminConfig {
        VminConfig {
            trials: 3,
            golden_iterations: 50,
            ..VminConfig::default()
        }
    }

    #[test]
    fn ladder_descends_until_crash() {
        let d = a72_domain();
        let model = FailureModel::juno_a72();
        let res = vmin_test(&d, &sweep_kernel(Isa::ArmV8), &model, &quick_cfg()).unwrap();
        assert!(!res.ladder.is_empty());
        // Ladder voltages strictly decrease.
        for w in res.ladder.windows(2) {
            assert!(w[1].0 < w[0].0);
        }
        // The campaign ends in a system crash (virus-class workload).
        let last = res.ladder.last().unwrap();
        assert!(last.1.contains(&Outcome::SystemCrash));
        assert!(res.vmin_v > res.first_failure_v);
        assert!((res.vmin_v - res.first_failure_v - 0.010).abs() < 1e-9);
    }

    #[test]
    fn noisier_workload_has_higher_vmin() {
        let d = a72_domain();
        let model = FailureModel::juno_a72();
        // A resonant stress kernel versus a quiet single-add loop.
        let arch = std::sync::Arc::new(emvolt_isa::Architecture::armv8());
        let add = arch.op_by_name("add").unwrap();
        let quiet = emvolt_isa::Kernel::new(
            arch,
            vec![emvolt_isa::Instr {
                op: add,
                dst: emvolt_isa::Reg::gpr(1),
                srcs: [emvolt_isa::Reg::gpr(2), emvolt_isa::Reg::gpr(3)],
                mem_slot: 0,
            }],
        );
        let noisy_res = vmin_test(
            &d,
            &resonant_stress_kernel(Isa::ArmV8, 12, 17),
            &model,
            &quick_cfg(),
        )
        .unwrap();
        let quiet_res = vmin_test(&d, &quiet, &model, &quick_cfg()).unwrap();
        assert!(
            noisy_res.max_droop_v > quiet_res.max_droop_v,
            "droops {} vs {}",
            noisy_res.max_droop_v,
            quiet_res.max_droop_v
        );
        assert!(
            noisy_res.vmin_v >= quiet_res.vmin_v,
            "vmin {} vs {}",
            noisy_res.vmin_v,
            quiet_res.vmin_v
        );
    }

    #[test]
    fn sdc_band_produces_mixed_outcomes() {
        let d = a72_domain();
        let model = FailureModel::juno_a72();
        let cfg = VminConfig {
            trials: 10,
            golden_iterations: 100,
            ..VminConfig::default()
        };
        let res = vmin_test(
            &d,
            &resonant_stress_kernel(Isa::ArmV8, 12, 17),
            &model,
            &cfg,
        )
        .unwrap();
        let all: Vec<Outcome> = res.ladder.iter().flat_map(|(_, o)| o.clone()).collect();
        assert!(all.contains(&Outcome::Pass));
        assert!(all.contains(&Outcome::SystemCrash));
        // Some deviation short of a full system crash should appear in
        // the band (SDC or app crash).
        assert!(
            all.iter()
                .any(|o| matches!(o, Outcome::Sdc | Outcome::AppCrash)),
            "no SDC/app-crash band observed: {all:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = a72_domain();
        let model = FailureModel::juno_a72();
        let a = vmin_test(&d, &sweep_kernel(Isa::ArmV8), &model, &quick_cfg()).unwrap();
        let b = vmin_test(&d, &sweep_kernel(Isa::ArmV8), &model, &quick_cfg()).unwrap();
        assert_eq!(a.first_failure_v, b.first_failure_v);
        assert_eq!(a.ladder.len(), b.ladder.len());
    }

    #[test]
    fn v_crit_scales_with_frequency() {
        let m = FailureModel::juno_a72();
        assert!(m.v_crit_at(1.2e9) > m.v_crit_at(600e6));
        assert!((m.v_crit_at(1.2e9) - m.v_crit).abs() < 1e-12);
    }

    #[test]
    fn never_failing_workload_reports_floor() {
        let d = a72_domain();
        // Absurdly low critical voltage: nothing fails before the floor.
        let model = FailureModel {
            v_crit: 0.1,
            ..FailureModel::juno_a72()
        };
        let cfg = VminConfig {
            floor_v: 0.90,
            trials: 2,
            golden_iterations: 20,
            ..VminConfig::default()
        };
        let res = vmin_test(&d, &sweep_kernel(Isa::ArmV8), &model, &cfg).unwrap();
        assert!(res.first_failure_v.is_nan());
        assert_eq!(res.vmin_v, 0.90);
    }
}
