//! The V_MIN ladder as a resumable step campaign.
//!
//! The ladder is compute-only — it never touches a measurement backend —
//! but porting it onto the [`Campaign`] state machine makes every rung a
//! checkpointable batch: the anchor run (droop + golden digest), the
//! mid-stream fault-injection RNG and the partial ladder all snapshot to
//! the same versioned JSONL format the measurement campaigns use, and a
//! resumed ladder continues bit-identically at the next untested voltage.
//!
//! Batch 0 is the anchor: the single physical domain run at the starting
//! voltage (charged to the campaign's telemetry handle, including wave
//! traces when a sink is attached) plus the golden reference execution.
//! Every later batch is one voltage rung of `config.trials` trials.

use crate::{gumbel, FailureModel, Outcome, VminConfig, VminResult};
use emvolt_cpu::{execute, execute_with_faults, FaultModel};
use emvolt_engine::{
    drive, kernel_fingerprint, run_config_fingerprint, snap, Campaign, DriveOptions, DriveOutcome,
    Fingerprint, NullBackend, StepBatch, StepOutcome,
};
use emvolt_isa::Kernel;
use emvolt_obs::Telemetry;
use emvolt_platform::{DomainError, DomainRunner, VoltageDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Value};

/// Maps a checkpoint decode error into the domain error space.
fn ck(e: impl std::fmt::Display) -> DomainError {
    DomainError::Checkpoint(e.to_string())
}

/// Everything the ladder derives from its single physical run.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    droop: f64,
    peak_to_peak: f64,
    golden: u64,
    v_crit: f64,
}

/// The V_MIN test as a resumable step campaign (compute-only batches).
pub struct VminCampaign {
    domain: VoltageDomain,
    kernel: Kernel,
    model: FailureModel,
    config: VminConfig,
    telemetry: Telemetry,
    rng: StdRng,
    anchor: Option<Anchor>,
    ladder: Vec<(f64, Vec<Outcome>)>,
    first_failure_v: f64,
    v: f64,
    crashed: bool,
    fingerprint: u64,
}

impl VminCampaign {
    /// Builds a fresh campaign (nothing executed yet).
    pub fn new(
        domain: &VoltageDomain,
        kernel: &Kernel,
        model: &FailureModel,
        config: &VminConfig,
        telemetry: Telemetry,
    ) -> Self {
        let fingerprint = Fingerprint::new()
            .str("vmin")
            .str(domain.name())
            .f64(domain.frequency())
            .f64(domain.voltage())
            .u64(kernel_fingerprint(kernel))
            .u64(run_config_fingerprint(&config.run))
            .f64(model.v_crit)
            .f64(model.f_ref)
            .f64(model.freq_sensitivity)
            .f64(model.sdc_band)
            .f64(model.trial_sigma)
            .f64(config.start_v)
            .f64(config.step_v)
            .f64(config.floor_v)
            .u64(config.trials as u64)
            .u64(config.loaded_cores as u64)
            .u64(config.golden_iterations as u64)
            .u64(config.seed)
            .finish();
        VminCampaign {
            domain: domain.clone(),
            kernel: kernel.clone(),
            model: *model,
            config: config.clone(),
            telemetry,
            rng: StdRng::seed_from_u64(config.seed),
            anchor: None,
            ladder: Vec::new(),
            first_failure_v: f64::NAN,
            v: config.start_v,
            crashed: false,
            fingerprint,
        }
    }

    /// The anchor batch: one physical run at the starting voltage. The
    /// PDN is linear, so the droop waveform is supply-independent —
    /// simulate once and slide the DC level down the ladder.
    fn absorb_anchor(&mut self) -> Result<(), DomainError> {
        let mut dom = self.domain.clone();
        dom.set_voltage(self.config.start_v);
        let run = DomainRunner::new_with(&dom, self.config.run.clone(), self.telemetry.clone())?
            .run(&self.kernel, self.config.loaded_cores)?;
        self.anchor = Some(Anchor {
            droop: run.max_droop(),
            peak_to_peak: run.peak_to_peak(),
            golden: execute(&self.kernel, self.config.golden_iterations),
            v_crit: self.model.v_crit_at(dom.frequency()),
        });
        Ok(())
    }

    /// One voltage rung: `config.trials` trials at the current voltage,
    /// consuming the trial RNG exactly as the legacy ladder loop did.
    fn absorb_rung(&mut self) -> Result<(), DomainError> {
        let Some(anchor) = self.anchor else {
            return Err(ck("ladder rung absorbed before the anchor run"));
        };
        let v = self.v;
        let mut outcomes = Vec::with_capacity(self.config.trials);
        let mut saw_system_crash = false;
        for _ in 0..self.config.trials {
            let extra = gumbel(&mut self.rng, self.model.trial_sigma);
            let min_die = v - anchor.droop - extra;
            let margin = min_die - anchor.v_crit;
            let outcome = if margin >= 0.0 {
                Outcome::Pass
            } else if -margin > self.model.sdc_band {
                Outcome::SystemCrash
            } else {
                // Inside the SDC band: inject faults whose rate grows as
                // the margin shrinks and compare against the golden run.
                let severity = (-margin / self.model.sdc_band).clamp(0.0, 1.0);
                let fault = FaultModel {
                    per_instr_probability: 1e-4 + severity * 2e-3,
                };
                let out = execute_with_faults(
                    &self.kernel,
                    self.config.golden_iterations,
                    fault,
                    &mut self.rng,
                );
                if out.digest == anchor.golden {
                    Outcome::Pass
                } else if severity > 0.6 {
                    Outcome::AppCrash
                } else {
                    Outcome::Sdc
                }
            };
            if outcome.is_failure() && self.first_failure_v.is_nan() {
                self.first_failure_v = v;
            }
            saw_system_crash |= outcome == Outcome::SystemCrash;
            outcomes.push(outcome);
        }
        self.ladder.push((v, outcomes));
        if saw_system_crash {
            self.crashed = true;
        } else {
            self.v -= self.config.step_v;
        }
        Ok(())
    }

    /// Finishes a complete campaign into the ladder result.
    ///
    /// # Errors
    ///
    /// [`DomainError::Checkpoint`] if the anchor batch never ran.
    pub fn into_result(self) -> Result<VminResult, DomainError> {
        let Some(anchor) = self.anchor else {
            return Err(ck("campaign finished without an anchor run"));
        };
        let vmin_v = if self.first_failure_v.is_nan() {
            self.config.floor_v
        } else {
            self.first_failure_v + self.config.step_v
        };
        Ok(VminResult {
            first_failure_v: self.first_failure_v,
            vmin_v,
            max_droop_v: anchor.droop,
            peak_to_peak_v: anchor.peak_to_peak,
            ladder: self.ladder,
        })
    }
}

fn outcome_char(o: Outcome) -> char {
    match o {
        Outcome::Pass => 'P',
        Outcome::Sdc => 'S',
        Outcome::AppCrash => 'A',
        Outcome::SystemCrash => 'X',
    }
}

fn outcome_from_char(c: char) -> Result<Outcome, DomainError> {
    match c {
        'P' => Ok(Outcome::Pass),
        'S' => Ok(Outcome::Sdc),
        'A' => Ok(Outcome::AppCrash),
        'X' => Ok(Outcome::SystemCrash),
        other => Err(ck(format!("unknown outcome code `{other}`"))),
    }
}

impl Campaign for VminCampaign {
    fn kind(&self) -> &'static str {
        "vmin"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    fn next_batch(&mut self) -> Option<StepBatch> {
        if self.anchor.is_none() {
            return Some(StepBatch::compute());
        }
        if !self.crashed && self.v >= self.config.floor_v - 1e-12 {
            return Some(StepBatch::compute());
        }
        None
    }

    fn absorb(&mut self, _outcomes: &[StepOutcome]) -> Result<(), DomainError> {
        if self.anchor.is_none() {
            self.absorb_anchor()
        } else {
            self.absorb_rung()
        }
    }

    fn snapshot(&self) -> Value {
        snap::obj(vec![
            (
                "rng",
                Value::Arr(self.rng.state().iter().map(|&w| snap::hex_u64(w)).collect()),
            ),
            (
                "anchor",
                match &self.anchor {
                    Some(a) => snap::obj(vec![
                        ("droop", snap::hex(a.droop)),
                        ("p2p", snap::hex(a.peak_to_peak)),
                        ("golden", snap::hex_u64(a.golden)),
                        ("v_crit", snap::hex(a.v_crit)),
                    ]),
                    None => Value::Null,
                },
            ),
            (
                "ladder",
                Value::Arr(
                    self.ladder
                        .iter()
                        .map(|(v, outcomes)| {
                            Value::Arr(vec![
                                snap::hex(*v),
                                Value::Str(outcomes.iter().copied().map(outcome_char).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("first_failure_v", snap::hex(self.first_failure_v)),
            ("v", snap::hex(self.v)),
            ("crashed", Value::Bool(self.crashed)),
        ])
    }

    fn restore(&mut self, state: &Value) -> Result<(), DomainError> {
        let words = snap::arr(snap::field(state, "rng").map_err(ck)?).map_err(ck)?;
        if words.len() != 4 {
            return Err(ck("rng state must hold 4 words"));
        }
        let mut rng_state = [0u64; 4];
        for (slot, w) in rng_state.iter_mut().zip(words) {
            *slot = snap::unhex_u64(w).map_err(ck)?;
        }
        self.rng = StdRng::from_state(rng_state);

        self.anchor = match snap::field(state, "anchor").map_err(ck)? {
            Value::Null => None,
            v => Some(Anchor {
                droop: snap::unhex(snap::field(v, "droop").map_err(ck)?).map_err(ck)?,
                peak_to_peak: snap::unhex(snap::field(v, "p2p").map_err(ck)?).map_err(ck)?,
                golden: snap::unhex_u64(snap::field(v, "golden").map_err(ck)?).map_err(ck)?,
                v_crit: snap::unhex(snap::field(v, "v_crit").map_err(ck)?).map_err(ck)?,
            }),
        };

        self.ladder = snap::arr(snap::field(state, "ladder").map_err(ck)?)
            .map_err(ck)?
            .iter()
            .map(|rung| {
                let rung = snap::arr(rung).map_err(ck)?;
                let [v, codes] = rung else {
                    return Err(ck("ladder rung must be a [voltage, outcomes] pair"));
                };
                let codes = String::from_value(codes).map_err(ck)?;
                Ok((
                    snap::unhex(v).map_err(ck)?,
                    codes
                        .chars()
                        .map(outcome_from_char)
                        .collect::<Result<Vec<_>, _>>()?,
                ))
            })
            .collect::<Result<_, DomainError>>()?;

        self.first_failure_v =
            snap::unhex(snap::field(state, "first_failure_v").map_err(ck)?).map_err(ck)?;
        self.v = snap::unhex(snap::field(state, "v").map_err(ck)?).map_err(ck)?;
        self.crashed = bool::from_value(snap::field(state, "crashed").map_err(ck)?).map_err(ck)?;
        Ok(())
    }
}

/// [`vmin_test_with`](crate::vmin_test_with) with
/// checkpoint/resume/interrupt wiring: drives a [`VminCampaign`] against
/// the engine's [`NullBackend`] (the ladder is compute-only). Returns
/// `None` when the batch limit interrupted the campaign.
///
/// # Errors
///
/// As for [`vmin_test_with`](crate::vmin_test_with), plus
/// [`DomainError::Checkpoint`] from resume verification or a failed
/// checkpoint write.
pub fn vmin_test_resumable(
    domain: &VoltageDomain,
    kernel: &Kernel,
    model: &FailureModel,
    config: &VminConfig,
    telemetry: Telemetry,
    opts: &DriveOptions,
) -> Result<Option<VminResult>, DomainError> {
    let mut campaign = VminCampaign::new(domain, kernel, model, config, telemetry);
    let mut backend = NullBackend;
    match drive(&mut backend, &mut campaign, opts)? {
        DriveOutcome::Complete => campaign.into_result().map(Some),
        DriveOutcome::Interrupted => Ok(None),
    }
}
