//! Property-based tests for the V_MIN harness.

use emvolt_cpu::CoreModel;
use emvolt_isa::kernels::resonant_stress_kernel;
use emvolt_isa::Isa;
use emvolt_platform::{a72_pdn, RunConfig, VoltageDomain};
use emvolt_vmin::{vmin_test, FailureModel, VminConfig};
use proptest::prelude::*;

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

fn quick(seed: u64) -> VminConfig {
    VminConfig {
        trials: 3,
        golden_iterations: 30,
        loaded_cores: 2,
        seed,
        run: RunConfig::fast(),
        ..VminConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// V_MIN rises monotonically with the critical voltage for any seed.
    #[test]
    fn vmin_monotone_in_v_crit(seed in any::<u64>(), dv in 0.02..0.08f64) {
        let d = a72();
        let kernel = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let base = FailureModel { v_crit: 0.76, ..FailureModel::juno_a72() };
        let raised = FailureModel { v_crit: 0.76 + dv, ..base };
        let lo = vmin_test(&d, &kernel, &base, &quick(seed)).unwrap();
        let hi = vmin_test(&d, &kernel, &raised, &quick(seed)).unwrap();
        prop_assert!(
            hi.vmin_v >= lo.vmin_v,
            "raising v_crit by {dv} lowered vmin: {} -> {}",
            lo.vmin_v,
            hi.vmin_v
        );
        // The shift tracks dv to within the ladder step + trial noise.
        let shift = hi.vmin_v - lo.vmin_v;
        prop_assert!((shift - dv).abs() <= 0.021, "shift {shift} vs dv {dv}");
    }

    /// The ladder is well-formed for arbitrary seeds: strictly descending
    /// voltages, every voltage within [floor, start], and the reported
    /// first-failure voltage actually appears in the ladder.
    #[test]
    fn ladder_is_well_formed(seed in any::<u64>()) {
        let d = a72();
        let kernel = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let model = FailureModel::juno_a72();
        let cfg = quick(seed);
        let res = vmin_test(&d, &kernel, &model, &cfg).unwrap();
        prop_assert!(!res.ladder.is_empty());
        for w in res.ladder.windows(2) {
            prop_assert!(w[1].0 < w[0].0);
        }
        for (v, outcomes) in &res.ladder {
            prop_assert!(*v <= cfg.start_v + 1e-12 && *v >= cfg.floor_v - 1e-12);
            prop_assert_eq!(outcomes.len(), cfg.trials);
        }
        if !res.first_failure_v.is_nan() {
            prop_assert!(res
                .ladder
                .iter()
                .any(|(v, _)| (*v - res.first_failure_v).abs() < 1e-12));
            prop_assert!((res.vmin_v - res.first_failure_v - cfg.step_v).abs() < 1e-9);
        }
    }

    /// Droop and peak-to-peak reported by the campaign match a direct run
    /// (they come from the same physics, independent of the seed).
    #[test]
    fn reported_droop_matches_direct_run(seed in any::<u64>()) {
        let d = a72();
        let kernel = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let model = FailureModel::juno_a72();
        let cfg = quick(seed);
        let res = vmin_test(&d, &kernel, &model, &cfg).unwrap();
        let mut dom = d.clone();
        dom.set_voltage(cfg.start_v);
        let run = dom.run(&kernel, cfg.loaded_cores, &cfg.run).unwrap();
        prop_assert!((res.max_droop_v - run.max_droop()).abs() < 1e-12);
        prop_assert!((res.peak_to_peak_v - run.peak_to_peak()).abs() < 1e-12);
    }
}
