//! Counter and histogram registries.
//!
//! Both are closed enums rather than string-keyed maps: every hot-path
//! update is an array index + atomic add (counters) or a mutex push
//! (histograms), and summaries iterate a fixed order so serialized
//! output is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::event::Layer;

/// Monotonic counters tracked across the measurement chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterId {
    /// LU factorizations performed while planning transients (circuit).
    LuFactorizations,
    /// Backward/forward solve steps across all transient runs (circuit).
    SolverSteps,
    /// Complete transient simulations (circuit).
    TransientRuns,
    /// Real-input FFT invocations (dsp).
    FftInvocations,
    /// Band-limited Goertzel evaluations that replaced a full FFT (dsp).
    GoertzelInvocations,
    /// Received-spectrum propagations through the EM channel (em).
    RxSpectra,
    /// Spectrum-analyzer band sweeps (platform).
    AnalyzerSweeps,
    /// In-band amplitude measurements (platform).
    Measurements,
    /// Fitness evaluations requested by the GA engine (ga).
    Evaluations,
    /// GA generations completed (ga).
    Generations,
    /// Evaluation-slot checkouts from the runner pool (core).
    ScratchCheckouts,
    /// Checkouts that had to build a fresh slot (core).
    ScratchMisses,
    /// Fitness-cache hits (core).
    FitnessCacheHits,
    /// Fitness-cache misses (core).
    FitnessCacheMisses,
    /// Evaluation lane groups dispatched through the batched measurement
    /// chain (core). Charged at the single-threaded generation barrier,
    /// so the total is a pure function of the campaign's lane
    /// configuration — never of the worker-thread schedule.
    BatchLanes,
    /// Individuals evaluated through batched lane groups (core); divided
    /// by `batch_lanes` this yields the mean lane occupancy. Charged at
    /// the generation barrier like [`CounterId::BatchLanes`].
    BatchLaneOccupancy,
    /// Numeric code of the runtime-dispatched SIMD level the campaign's
    /// hot kernels ran on (core); charged once per campaign with
    /// `emvolt_simd::SimdLevel::code`. Host-dependent by design, so it is
    /// summary-only, like the schedule-dependent counters: results are
    /// bit-identical across levels and emitted traces must not vary with
    /// the host's vector width.
    SimdDispatchLevel,
    /// Signals registered in the waveform trace database (cli). Only
    /// nonzero when `--trace-vcd` is active, so it is summary-only like
    /// [`CounterId::SimdDispatchLevel`]: JSONL traces stay byte-identical
    /// whether or not a host also captured waveforms.
    WavetraceSignals,
    /// Change-compressed waveform samples retained by the trace database
    /// (cli). Summary-only, for the same reason as
    /// [`CounterId::WavetraceSignals`].
    WavetraceSamplesWritten,
    /// Checkpoint snapshots written by the step driver (engine). Only
    /// nonzero when `--checkpoint` is active, so it is summary-only like
    /// [`CounterId::WavetraceSignals`]: whether a run also checkpointed
    /// must not change its emitted JSONL trace.
    CheckpointWrites,
    /// Batches skipped on resume because a checkpoint already held their
    /// results (engine). Summary-only, for the same reason as
    /// [`CounterId::CheckpointWrites`]: a resumed run's trace must
    /// concatenate with the interrupted run's into the uninterrupted
    /// trace, byte for byte.
    StepsResumed,
}

impl CounterId {
    /// Every counter, in emission order.
    pub const ALL: [CounterId; 21] = [
        CounterId::LuFactorizations,
        CounterId::SolverSteps,
        CounterId::TransientRuns,
        CounterId::FftInvocations,
        CounterId::GoertzelInvocations,
        CounterId::RxSpectra,
        CounterId::AnalyzerSweeps,
        CounterId::Measurements,
        CounterId::Evaluations,
        CounterId::Generations,
        CounterId::ScratchCheckouts,
        CounterId::ScratchMisses,
        CounterId::FitnessCacheHits,
        CounterId::FitnessCacheMisses,
        CounterId::BatchLanes,
        CounterId::BatchLaneOccupancy,
        CounterId::SimdDispatchLevel,
        CounterId::WavetraceSignals,
        CounterId::WavetraceSamplesWritten,
        CounterId::CheckpointWrites,
        CounterId::StepsResumed,
    ];

    /// Wire name used in counter events and summaries.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::LuFactorizations => "lu_factorizations",
            CounterId::SolverSteps => "solver_steps",
            CounterId::TransientRuns => "transient_runs",
            CounterId::FftInvocations => "fft_invocations",
            CounterId::GoertzelInvocations => "goertzel_invocations",
            CounterId::RxSpectra => "rx_spectra",
            CounterId::AnalyzerSweeps => "analyzer_sweeps",
            CounterId::Measurements => "measurements",
            CounterId::Evaluations => "evaluations",
            CounterId::Generations => "generations",
            CounterId::ScratchCheckouts => "scratch_checkouts",
            CounterId::ScratchMisses => "scratch_misses",
            CounterId::FitnessCacheHits => "fitness_cache_hits",
            CounterId::FitnessCacheMisses => "fitness_cache_misses",
            CounterId::BatchLanes => "batch_lanes",
            CounterId::BatchLaneOccupancy => "batch_lane_occupancy",
            CounterId::SimdDispatchLevel => "simd_dispatch_level",
            CounterId::WavetraceSignals => "wavetrace_signals",
            CounterId::WavetraceSamplesWritten => "wavetrace_samples_written",
            CounterId::CheckpointWrites => "checkpoint_writes",
            CounterId::StepsResumed => "steps_resumed",
        }
    }

    /// Subsystem that owns this counter.
    pub fn layer(self) -> Layer {
        match self {
            CounterId::LuFactorizations | CounterId::SolverSteps | CounterId::TransientRuns => {
                Layer::Circuit
            }
            CounterId::FftInvocations | CounterId::GoertzelInvocations => Layer::Dsp,
            CounterId::RxSpectra => Layer::Em,
            CounterId::AnalyzerSweeps | CounterId::Measurements => Layer::Platform,
            CounterId::Evaluations | CounterId::Generations => Layer::Ga,
            CounterId::ScratchCheckouts
            | CounterId::ScratchMisses
            | CounterId::FitnessCacheHits
            | CounterId::FitnessCacheMisses
            | CounterId::BatchLanes
            | CounterId::BatchLaneOccupancy
            | CounterId::SimdDispatchLevel => Layer::Core,
            CounterId::WavetraceSignals
            | CounterId::WavetraceSamplesWritten
            | CounterId::CheckpointWrites
            | CounterId::StepsResumed => Layer::Cli,
        }
    }

    /// Whether the counter's value can depend on the worker-thread
    /// schedule rather than on the campaign inputs alone. Pool misses
    /// (and the LU factorizations a cold slot performs) vary with how
    /// workers interleave, and the dispatched SIMD level varies with the
    /// host CPU, so these are reported in campaign summaries but excluded
    /// from emitted trace events, which must stay byte-reproducible at
    /// any thread count and on any host.
    pub fn schedule_dependent(self) -> bool {
        matches!(
            self,
            CounterId::LuFactorizations
                | CounterId::ScratchMisses
                | CounterId::SimdDispatchLevel
                | CounterId::WavetraceSignals
                | CounterId::WavetraceSamplesWritten
                | CounterId::CheckpointWrites
                | CounterId::StepsResumed
        )
    }

    fn index(self) -> usize {
        CounterId::ALL
            .iter()
            .position(|c| *c == self)
            .expect("id in ALL")
    }
}

/// Fixed array of atomics, shared by every clone of a telemetry handle.
#[derive(Debug)]
pub(crate) struct Counters {
    slots: [AtomicU64; CounterId::ALL.len()],
}

impl Counters {
    pub(crate) fn new() -> Self {
        Counters {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds `n`; ordering is irrelevant because totals are read only at
    /// single-threaded snapshot points.
    pub(crate) fn add(&self, id: CounterId, n: u64) {
        self.slots[id.index()].fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self, id: CounterId) -> u64 {
        self.slots[id.index()].load(Ordering::Relaxed)
    }
}

/// Value histograms tracked across the measurement chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistId {
    /// Per-evaluation cost in (simulated or wall) seconds (core).
    EvalSeconds,
    /// Per-generation best fitness, dBm (core).
    FitnessBest,
    /// Per-generation mean fitness, dBm (core).
    FitnessMean,
    /// Per-generation worst fitness, dBm (core).
    FitnessWorst,
    /// In-band amplitude per measurement, dBm (platform).
    BandAmplitudeDbm,
}

impl HistId {
    /// Every histogram, in emission order.
    pub const ALL: [HistId; 5] = [
        HistId::EvalSeconds,
        HistId::FitnessBest,
        HistId::FitnessMean,
        HistId::FitnessWorst,
        HistId::BandAmplitudeDbm,
    ];

    /// Wire name used in hist events and summaries.
    pub fn name(self) -> &'static str {
        match self {
            HistId::EvalSeconds => "eval_seconds",
            HistId::FitnessBest => "fitness_best",
            HistId::FitnessMean => "fitness_mean",
            HistId::FitnessWorst => "fitness_worst",
            HistId::BandAmplitudeDbm => "band_amplitude_dbm",
        }
    }

    /// Subsystem that owns this histogram.
    pub fn layer(self) -> Layer {
        match self {
            HistId::EvalSeconds
            | HistId::FitnessBest
            | HistId::FitnessMean
            | HistId::FitnessWorst => Layer::Core,
            HistId::BandAmplitudeDbm => Layer::Platform,
        }
    }

    fn index(self) -> usize {
        HistId::ALL
            .iter()
            .position(|h| *h == self)
            .expect("id in ALL")
    }
}

/// Percentile summary of one histogram.
///
/// Percentiles use the nearest-rank method on a sorted copy of the raw
/// values, and `sum` is accumulated over the sorted order — both so the
/// result is independent of the thread schedule that recorded values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: usize,
    /// Sum of all values (sorted-order accumulation).
    pub sum: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// 50th percentile (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl HistSummary {
    /// Summarizes raw values; `None` when empty.
    pub fn from_values(values: &[f64]) -> Option<HistSummary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| {
            let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(HistSummary {
            count: sorted.len(),
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
        })
    }

    /// Summary fields in schema order, for event emission.
    pub fn fields(&self) -> [(&'static str, f64); 7] {
        [
            ("count", self.count as f64),
            ("sum", self.sum),
            ("min", self.min),
            ("max", self.max),
            ("p50", self.p50),
            ("p90", self.p90),
            ("p99", self.p99),
        ]
    }
}

/// Raw value store, shared by every clone of a telemetry handle.
#[derive(Debug)]
pub(crate) struct Histograms {
    slots: [Mutex<Vec<f64>>; HistId::ALL.len()],
}

impl Histograms {
    pub(crate) fn new() -> Self {
        Histograms {
            slots: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn record(&self, id: HistId, value: f64) {
        self.slots[id.index()].lock().push(value);
    }

    pub(crate) fn summary(&self, id: HistId) -> Option<HistSummary> {
        HistSummary::from_values(&self.slots[id.index()].lock())
    }

    pub(crate) fn values(&self, id: HistId) -> Vec<f64> {
        self.slots[id.index()].lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_layered() {
        let mut names: Vec<_> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CounterId::ALL.len());
        assert_eq!(CounterId::SolverSteps.layer(), Layer::Circuit);
        assert_eq!(CounterId::FitnessCacheHits.layer(), Layer::Core);
        assert_eq!(CounterId::WavetraceSignals.layer(), Layer::Cli);
    }

    #[test]
    fn wavetrace_counters_are_summary_only() {
        // Whether a host captured waveforms must not change the emitted
        // JSONL trace, only the campaign summary.
        assert!(CounterId::WavetraceSignals.schedule_dependent());
        assert!(CounterId::WavetraceSamplesWritten.schedule_dependent());
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.add(CounterId::FftInvocations, 2);
        c.add(CounterId::FftInvocations, 3);
        assert_eq!(c.get(CounterId::FftInvocations), 5);
        assert_eq!(c.get(CounterId::SolverSteps), 0);
    }

    #[test]
    fn hist_summary_is_order_independent() {
        let forward = HistSummary::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let shuffled = HistSummary::from_values(&[3.0, 1.0, 4.0, 2.0]).unwrap();
        assert_eq!(forward, shuffled);
        assert_eq!(forward.count, 4);
        assert_eq!(forward.min, 1.0);
        assert_eq!(forward.max, 4.0);
        assert_eq!(forward.p50, 2.0);
        assert_eq!(forward.p99, 4.0);
    }

    #[test]
    fn hist_summary_of_empty_is_none() {
        assert!(HistSummary::from_values(&[]).is_none());
        let h = Histograms::new();
        assert!(h.summary(HistId::EvalSeconds).is_none());
        h.record(HistId::EvalSeconds, 0.5);
        assert_eq!(h.summary(HistId::EvalSeconds).unwrap().count, 1);
    }
}
