//! End-of-campaign aggregation: counter totals plus histogram
//! percentiles, serialized as one JSON object per campaign and appended
//! to a shared `results/campaign_summaries.jsonl`.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

use serde::{Serialize, Value};

use crate::metrics::{CounterId, HistId, HistSummary};

/// Final total of one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterTotal {
    /// Which counter.
    pub id: CounterId,
    /// Its total at summary time.
    pub value: u64,
}

/// Final percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistTotal {
    /// Which histogram.
    pub id: HistId,
    /// Its stats at summary time.
    pub stats: HistSummary,
}

/// Aggregated view of one campaign, produced by
/// [`crate::Telemetry::summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Campaign label (subcommand or experiment name).
    pub label: String,
    /// Simulated campaign duration, seconds.
    pub sim_seconds: f64,
    /// Non-zero counters, in registry order.
    pub counters: Vec<CounterTotal>,
    /// Non-empty histograms, in registry order.
    pub histograms: Vec<HistTotal>,
}

impl Serialize for CampaignSummary {
    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|c| (c.id.name().to_string(), Value::Num(c.value as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let stats = h
                    .stats
                    .fields()
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), Value::Num(*v)))
                    .collect();
                (h.id.name().to_string(), Value::Obj(stats))
            })
            .collect();
        Value::Obj(vec![
            ("label".to_string(), Value::Str(self.label.clone())),
            ("sim_seconds".to_string(), Value::Num(self.sim_seconds)),
            ("counters".to_string(), Value::Obj(counters)),
            ("histograms".to_string(), Value::Obj(histograms)),
        ])
    }
}

impl CampaignSummary {
    /// Compact single-line JSON form.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("summary serialization is infallible")
    }

    /// Appends the JSON line to `path`, creating the file if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(file, "{}", self.to_json_line())
    }

    /// Multi-line human-readable rendering for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign `{}`: {:.1} simulated seconds\n",
            self.label, self.sim_seconds
        ));
        for c in &self.counters {
            out.push_str(&format!(
                "  {:<22} {:>12}  [{}]\n",
                c.id.name(),
                c.value,
                c.id.layer()
            ));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "  {:<22} n={} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}  [{}]\n",
                h.id.name(),
                h.stats.count,
                h.stats.min,
                h.stats.p50,
                h.stats.p90,
                h.stats.p99,
                h.stats.max,
                h.id.layer()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{DeError, Deserialize};

    /// Captures the raw value tree (the vendored `Value` has no
    /// `Deserialize` impl of its own).
    struct RawValue(Value);

    impl Deserialize for RawValue {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(RawValue(v.clone()))
        }
    }

    fn sample() -> CampaignSummary {
        CampaignSummary {
            label: "virus".to_string(),
            sim_seconds: 360.0,
            counters: vec![CounterTotal {
                id: CounterId::SolverSteps,
                value: 12000,
            }],
            histograms: vec![HistTotal {
                id: HistId::EvalSeconds,
                stats: HistSummary::from_values(&[1.0, 2.0]).unwrap(),
            }],
        }
    }

    #[test]
    fn json_line_is_stable_and_parseable() {
        let line = sample().to_json_line();
        assert_eq!(line, sample().to_json_line());
        let RawValue(value) = serde_json::from_str(&line).unwrap();
        assert_eq!(
            value.field_value("label").unwrap(),
            &Value::Str("virus".to_string())
        );
        let counters = value.field_value("counters").unwrap();
        assert_eq!(
            counters.field_value("solver_steps").unwrap(),
            &Value::Num(12000.0)
        );
        let hist = value
            .field_value("histograms")
            .unwrap()
            .field_value("eval_seconds")
            .unwrap();
        assert_eq!(hist.field_value("count").unwrap(), &Value::Num(2.0));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join("emvolt-obs-summary-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("s-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        sample().append_to(&path).unwrap();
        sample().append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn render_mentions_every_metric() {
        let text = sample().render();
        assert!(text.contains("solver_steps"));
        assert!(text.contains("eval_seconds"));
        assert!(text.contains("360.0 simulated seconds"));
    }
}
