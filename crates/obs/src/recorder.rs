//! Event sinks: the [`Recorder`] trait, the zero-cost [`NoopRecorder`]
//! and the line-per-event [`JsonlRecorder`].

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::event::Event;

/// A telemetry sink.
///
/// Implementations must be callable from any thread; the deterministic
/// emission discipline (only coordinator contexts emit) lives above this
/// trait, in [`crate::Telemetry`].
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether events will actually be persisted. Instrumentation gates
    /// all allocation and formatting work on this, so the disabled path
    /// costs one virtual call per *emission site*, not per sample.
    fn is_enabled(&self) -> bool;

    /// Persists one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards everything; the default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Writes one compact JSON object per line to any `Write` target.
///
/// Write errors are swallowed after the sink is constructed: a full disk
/// must not abort a multi-hour campaign. `flush` surfaces nothing either;
/// callers that need hard guarantees should wrap their own writer.
pub struct JsonlRecorder<W: Write + Send> {
    out: Mutex<W>,
}

impl JsonlRecorder<BufWriter<File>> {
    /// Creates (truncates) `path` and buffers writes to it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlRecorder::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps an arbitrary writer (e.g. a shared buffer in tests).
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlRecorder<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlRecorder")
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        if let Ok(mut line) = serde_json::to_string(event) {
            line.push('\n');
            let _ = self.out.lock().write_all(line.as_bytes());
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Layer};
    use std::sync::Arc;

    /// Shared in-memory sink for asserting on emitted bytes.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_parseable_line_per_event() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let rec = JsonlRecorder::new(SharedBuf(buf.clone()));
        for i in 0..3 {
            rec.record(&Event {
                kind: EventKind::Span,
                name: "fft".to_string(),
                layer: Layer::Dsp,
                t_s: i as f64,
                wall_s: None,
                fields: vec![("n".to_string(), 4096.0)],
            });
        }
        rec.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let event: Event = serde_json::from_str(line).unwrap();
            assert_eq!(event.t_s, i as f64);
            event.validate().unwrap();
        }
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.is_enabled());
        rec.record(&Event {
            kind: EventKind::Counter,
            name: "x".to_string(),
            layer: Layer::Core,
            t_s: 0.0,
            wall_s: None,
            fields: vec![("value".to_string(), 1.0)],
        });
    }
}
