//! Validates a JSONL telemetry trace against the documented schema.
//!
//! Usage: `validate_telemetry <trace.jsonl> [more traces...]`
//!
//! Every line must parse as an [`Event`] and pass [`Event::validate`],
//! and within each span stream (events of kind `span` sharing one name)
//! the simulated timestamps must be monotonically non-decreasing — the
//! SimClock only ever advances, so a backwards step means interleaved
//! emission from worker threads or a corrupted trace. Prints per-kind
//! and per-layer tallies; exits non-zero on the first malformed file so
//! CI can gate on it.

use std::collections::HashMap;
use std::process::ExitCode;

use emvolt_obs::{Event, EventKind, Layer};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_telemetry <trace.jsonl> [more traces...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match validate_file(path) {
            Ok(report) => println!("{path}: {report}"),
            Err(err) => {
                eprintln!("{path}: INVALID: {err}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut kind_counts = [0usize; EventKind::ALL.len()];
    let mut layer_counts = [0usize; Layer::ALL.len()];
    let mut total = 0usize;
    // Per span stream (span events sharing a name): the last simulated
    // timestamp and the line that carried it.
    let mut span_clock: HashMap<String, (f64, usize)> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(line)
            .map_err(|e| format!("line {}: parse error: {e}", lineno + 1))?;
        event
            .validate()
            .map_err(|e| format!("line {}: schema violation: {e}", lineno + 1))?;
        if event.kind == EventKind::Span {
            match span_clock.get(&event.name) {
                Some(&(last_t, last_line)) if event.t_s < last_t => {
                    return Err(format!(
                        "line {}: span `{}` timestamp t={} goes backwards \
                         (line {} had t={last_t})",
                        lineno + 1,
                        event.name,
                        event.t_s,
                        last_line
                    ));
                }
                _ => {
                    span_clock.insert(event.name.clone(), (event.t_s, lineno + 1));
                }
            }
        }
        let k = EventKind::ALL
            .iter()
            .position(|k| *k == event.kind)
            .unwrap();
        let l = Layer::ALL.iter().position(|l| *l == event.layer).unwrap();
        kind_counts[k] += 1;
        layer_counts[l] += 1;
        total += 1;
    }
    if total == 0 {
        return Err("trace contains no events".to_string());
    }
    let kinds: Vec<String> = EventKind::ALL
        .iter()
        .zip(kind_counts)
        .filter(|(_, n)| *n > 0)
        .map(|(k, n)| format!("{}={n}", k.as_str()))
        .collect();
    let layers: Vec<String> = Layer::ALL
        .iter()
        .zip(layer_counts)
        .filter(|(_, n)| *n > 0)
        .map(|(l, n)| format!("{}={n}", l.as_str()))
        .collect();
    Ok(format!(
        "{total} events ok ({}; layers: {})",
        kinds.join(" "),
        layers.join(" ")
    ))
}
