//! Validates a VCD waveform dump structurally, in the
//! `validate_telemetry` style.
//!
//! Usage: `validate_vcd <trace.vcd> [more dumps...]`
//!
//! Checks that the header is well-formed (a `$timescale`, balanced
//! `$scope`/`$upscope`, closed by `$enddefinitions`), that every value
//! change references a declared identifier code, and that timestamps are
//! strictly increasing. Prints signal/change tallies; exits non-zero on
//! the first malformed file so CI can gate on it.

use std::process::ExitCode;

use emvolt_obs::validate_vcd_text;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_vcd <trace.vcd> [more dumps...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match validate_file(path) {
            Ok(report) => println!("{path}: {report}"),
            Err(err) => {
                eprintln!("{path}: INVALID: {err}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let check = validate_vcd_text(&text)?;
    if check.signals == 0 {
        return Err("dump declares no signals".to_string());
    }
    Ok(format!(
        "{} signals, {} value changes ok, ends at {} ps",
        check.signals, check.changes, check.end_time_ps
    ))
}
