//! The [`Telemetry`] handle threaded through the measurement chain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::event::{Event, EventKind, Layer};
use crate::metrics::{CounterId, Counters, HistId, Histograms};
use crate::recorder::{NoopRecorder, Recorder};
use crate::summary::{CampaignSummary, CounterTotal, HistTotal};
use crate::wavetrace::{NoopWaveSink, WaveId, WaveKind, WaveSink};

/// Injected wall-clock closure. Distinct from the *simulated* campaign
/// clock (`emvolt-platform`'s `SimClock`), which advances by modeled
/// measurement cost, not host time.
type WallClockFn = Arc<dyn Fn() -> f64 + Send + Sync>;

struct Inner {
    recorder: Arc<dyn Recorder>,
    waves: Arc<dyn WaveSink>,
    counters: Counters,
    hists: Histograms,
    /// Simulated campaign seconds, stored as f64 bits.
    sim_t_bits: AtomicU64,
    wall: Option<WallClockFn>,
}

/// Cheap cloneable telemetry handle.
///
/// All clones of one handle share the same counters, histograms, sink
/// and simulated clock. Two clone flavors exist:
///
/// - [`Telemetry::clone`]: full handle — counts *and* emits events.
/// - [`Telemetry::quiet`]: worker handle — counts (atomic adds are
///   order-independent) and records histogram values, but never emits
///   events. Handing quiet clones to worker threads and emitting only
///   from single-threaded coordinator contexts is what keeps traces
///   byte-identical at any thread count.
///
/// The default handle ([`Telemetry::noop`]) sinks to [`NoopRecorder`];
/// its hot path is one branch per emission site plus one relaxed atomic
/// add per counter update, with no allocation (asserted by the
/// `noop_alloc` integration test).
pub struct Telemetry {
    inner: Arc<Inner>,
    silent: bool,
}

impl Clone for Telemetry {
    fn clone(&self) -> Self {
        Telemetry {
            inner: Arc::clone(&self.inner),
            silent: self.silent,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::noop()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("silent", &self.silent)
            .field("has_wall_clock", &self.inner.wall.is_some())
            .finish()
    }
}

impl Telemetry {
    /// Creates a handle sinking to `recorder`, with no wall clock — the
    /// deterministic default.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Telemetry::build(recorder, None)
    }

    /// Creates a handle that additionally stamps events with `wall()`
    /// seconds. Traces produced with a wall clock are *not* expected to
    /// be byte-reproducible.
    pub fn with_wall_clock(
        recorder: Arc<dyn Recorder>,
        wall: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Self {
        Telemetry::build(recorder, Some(Arc::new(wall)))
    }

    /// Creates a handle that additionally routes waveform samples to
    /// `waves` (a `WaveDb` the caller later dumps). Wave emission obeys
    /// the quiet-clone discipline: quiet clones never emit waves, so the
    /// trace content comes exclusively from single-threaded coordinator
    /// contexts and is byte-identical at any thread count.
    pub fn with_waves(recorder: Arc<dyn Recorder>, waves: Arc<dyn WaveSink>) -> Self {
        Telemetry::build_full(recorder, None, waves)
    }

    fn build(recorder: Arc<dyn Recorder>, wall: Option<WallClockFn>) -> Self {
        Telemetry::build_full(recorder, wall, Arc::new(NoopWaveSink))
    }

    fn build_full(
        recorder: Arc<dyn Recorder>,
        wall: Option<WallClockFn>,
        waves: Arc<dyn WaveSink>,
    ) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                recorder,
                waves,
                counters: Counters::new(),
                hists: Histograms::new(),
                sim_t_bits: AtomicU64::new(0f64.to_bits()),
                wall,
            }),
            silent: false,
        }
    }

    /// The shared inert handle: counts into a process-wide sink that is
    /// never read, emits nothing. Used as `Default` so scratch types can
    /// derive `Default` without each one allocating an `Inner`.
    pub fn noop() -> Self {
        static NOOP: OnceLock<Telemetry> = OnceLock::new();
        NOOP.get_or_init(|| Telemetry::new(Arc::new(NoopRecorder)))
            .clone()
    }

    /// A clone that shares this handle's counters and histograms but
    /// never emits events. Give these to worker threads.
    pub fn quiet(&self) -> Self {
        Telemetry {
            inner: Arc::clone(&self.inner),
            silent: true,
        }
    }

    /// Whether *this clone* will emit events.
    pub fn enabled(&self) -> bool {
        !self.silent && self.inner.recorder.is_enabled()
    }

    /// Whether the underlying sink persists events (true for quiet
    /// clones of an enabled handle). Histogram recording gates on this.
    pub fn sink_enabled(&self) -> bool {
        self.inner.recorder.is_enabled()
    }

    /// Whether *this clone* emits waveform samples: quiet clones and
    /// handles without an attached `WaveDb` never do. Emission sites
    /// check this once and skip their whole block, keeping the disabled
    /// path to a single branch plus one virtual call.
    pub fn wave_enabled(&self) -> bool {
        !self.silent && self.inner.waves.is_enabled()
    }

    /// Decimation stride for dense waveform emission (every `stride`-th
    /// sample); always ≥ 1.
    pub fn wave_stride(&self) -> usize {
        self.inner.waves.stride().max(1)
    }

    /// Registers a hierarchical waveform signal; returns the inert
    /// [`WaveId::NONE`] on non-emitting clones.
    pub fn wave_register(&self, name: &str, kind: WaveKind) -> WaveId {
        if self.wave_enabled() {
            self.inner.waves.register(name, kind)
        } else {
            WaveId::NONE
        }
    }

    /// Opens a waveform emission epoch at the current simulated campaign
    /// time; subsequent sample timestamps are relative to it.
    pub fn wave_epoch(&self) {
        if self.wave_enabled() {
            self.inner.waves.begin_epoch(self.sim_time());
        }
    }

    /// Records a real waveform sample at `t_s` seconds past the epoch.
    pub fn wave_real(&self, id: WaveId, t_s: f64, value: f64) {
        if self.wave_enabled() {
            self.inner.waves.sample_real(id, t_s, value);
        }
    }

    /// Records an integer waveform sample at `t_s` seconds past the
    /// epoch.
    pub fn wave_int(&self, id: WaveId, t_s: f64, value: u64) {
        if self.wave_enabled() {
            self.inner.waves.sample_int(id, t_s, value);
        }
    }

    /// Records a bit waveform sample at `t_s` seconds past the epoch.
    pub fn wave_bool(&self, id: WaveId, t_s: f64, value: bool) {
        if self.wave_enabled() {
            self.inner.waves.sample_bool(id, t_s, value);
        }
    }

    /// Records a point reading just past the trace's high-water mark
    /// (instrument metrics with no waveform time axis of their own).
    pub fn wave_append(&self, id: WaveId, value: f64) {
        if self.wave_enabled() {
            self.inner.waves.append_real(id, value);
        }
    }

    /// Updates the shared simulated-campaign timestamp, seconds.
    pub fn set_sim_time(&self, seconds: f64) {
        self.inner
            .sim_t_bits
            .store(seconds.to_bits(), Ordering::Relaxed);
    }

    /// Current simulated-campaign timestamp, seconds.
    pub fn sim_time(&self) -> f64 {
        f64::from_bits(self.inner.sim_t_bits.load(Ordering::Relaxed))
    }

    /// Reads the injected wall clock, when present.
    pub fn wall_now(&self) -> Option<f64> {
        self.inner.wall.as_ref().map(|f| f())
    }

    /// Adds `n` to a counter. Safe from any thread and any clone.
    pub fn count(&self, id: CounterId, n: u64) {
        if n != 0 {
            self.inner.counters.add(id, n);
        }
    }

    /// Current total of one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.inner.counters.get(id)
    }

    /// Records a histogram value. Safe from any thread; no-op when the
    /// sink is disabled so the hot path stays allocation-free.
    pub fn record_value(&self, id: HistId, value: f64) {
        if self.sink_enabled() {
            self.inner.hists.record(id, value);
        }
    }

    /// Emits a span event stamped with the simulated clock (and the wall
    /// clock when injected). Quiet clones emit nothing.
    pub fn span(&self, name: &str, layer: Layer, attrs: &[(&str, f64)]) {
        if !self.enabled() {
            return;
        }
        self.inner.recorder.record(&Event {
            kind: EventKind::Span,
            name: name.to_string(),
            layer,
            t_s: self.sim_time(),
            wall_s: self.wall_now(),
            fields: attrs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        });
    }

    /// Re-emits a pre-built event, preserving its recorded simulated
    /// timestamp but restamping the wall clock from this handle. Quiet
    /// clones emit nothing.
    ///
    /// This is the forwarding path measurement backends use to replay
    /// events captured on another handle (record/replay traces): the
    /// event's `t` was stamped under the same simulated clock discipline,
    /// so passing it through unchanged keeps live and replayed traces
    /// byte-identical.
    pub fn emit_event(&self, event: &Event) {
        if !self.enabled() {
            return;
        }
        self.inner.recorder.record(&Event {
            wall_s: self.wall_now(),
            ..event.clone()
        });
    }

    /// Snapshot of the raw values recorded into one histogram, in
    /// recording order. Empty when the sink is disabled (values are only
    /// retained for enabled sinks).
    pub fn hist_values(&self, id: HistId) -> Vec<f64> {
        self.inner.hists.values(id)
    }

    /// Emits one `counter` event per non-zero counter, in registry
    /// order. Schedule-dependent counters (see
    /// [`CounterId::schedule_dependent`]) are skipped so the trace stays
    /// byte-reproducible at any thread count; their totals still appear
    /// in [`Telemetry::summary`].
    pub fn emit_counters(&self) {
        if !self.enabled() {
            return;
        }
        let t_s = self.sim_time();
        let wall_s = self.wall_now();
        for id in CounterId::ALL {
            if id.schedule_dependent() {
                continue;
            }
            let value = self.inner.counters.get(id);
            if value == 0 {
                continue;
            }
            self.inner.recorder.record(&Event {
                kind: EventKind::Counter,
                name: id.name().to_string(),
                layer: id.layer(),
                t_s,
                wall_s,
                fields: vec![("value".to_string(), value as f64)],
            });
        }
    }

    /// Emits one `hist` event per non-empty histogram, in registry order.
    pub fn emit_histograms(&self) {
        if !self.enabled() {
            return;
        }
        let t_s = self.sim_time();
        let wall_s = self.wall_now();
        for id in HistId::ALL {
            let Some(summary) = self.inner.hists.summary(id) else {
                continue;
            };
            self.inner.recorder.record(&Event {
                kind: EventKind::Hist,
                name: id.name().to_string(),
                layer: id.layer(),
                t_s,
                wall_s,
                fields: summary
                    .fields()
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), *v))
                    .collect(),
            });
        }
    }

    /// Aggregates current totals and percentiles into a summary record.
    pub fn summary(&self, label: &str) -> CampaignSummary {
        CampaignSummary {
            label: label.to_string(),
            sim_seconds: self.sim_time(),
            counters: CounterId::ALL
                .iter()
                .map(|&id| CounterTotal {
                    id,
                    value: self.inner.counters.get(id),
                })
                .filter(|c| c.value != 0)
                .collect(),
            histograms: HistId::ALL
                .iter()
                .filter_map(|&id| {
                    self.inner
                        .hists
                        .summary(id)
                        .map(|stats| HistTotal { id, stats })
                })
                .collect(),
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.inner.recorder.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::JsonlRecorder;
    use parking_lot::Mutex;
    use std::io::{self, Write};

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn captured() -> (Telemetry, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let tel = Telemetry::new(Arc::new(JsonlRecorder::new(SharedBuf(buf.clone()))));
        (tel, buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<Event> {
        String::from_utf8(buf.lock().clone())
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect()
    }

    #[test]
    fn quiet_clones_share_counters_but_never_emit() {
        let (tel, buf) = captured();
        let quiet = tel.quiet();
        assert!(tel.enabled());
        assert!(!quiet.enabled());
        assert!(quiet.sink_enabled());

        quiet.count(CounterId::SolverSteps, 7);
        quiet.span("transient_solve", Layer::Circuit, &[("steps", 7.0)]);
        assert!(buf.lock().is_empty(), "quiet clone emitted an event");

        tel.count(CounterId::SolverSteps, 3);
        assert_eq!(tel.counter(CounterId::SolverSteps), 10);
        tel.emit_counters();
        let events = lines(&buf);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "solver_steps");
        assert_eq!(events[0].fields, vec![("value".to_string(), 10.0)]);
    }

    #[test]
    fn spans_carry_sim_time_and_omit_wall_by_default() {
        let (tel, buf) = captured();
        tel.set_sim_time(40.5);
        tel.span("eval", Layer::Core, &[("gen", 1.0)]);
        let events = lines(&buf);
        assert_eq!(events[0].t_s, 40.5);
        assert_eq!(events[0].wall_s, None);
    }

    #[test]
    fn injected_wall_clock_stamps_events() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let tel = Telemetry::with_wall_clock(
            Arc::new(JsonlRecorder::new(SharedBuf(buf.clone()))),
            || 12.25,
        );
        tel.span("generation", Layer::Core, &[]);
        assert_eq!(lines(&buf)[0].wall_s, Some(12.25));
    }

    #[test]
    fn histograms_emit_summaries_and_skip_empty() {
        let (tel, buf) = captured();
        let quiet = tel.quiet();
        for v in [3.0, 1.0, 2.0] {
            quiet.record_value(HistId::EvalSeconds, v);
        }
        tel.emit_histograms();
        let events = lines(&buf);
        assert_eq!(events.len(), 1, "empty histograms must not emit");
        assert_eq!(events[0].name, "eval_seconds");
        events[0].validate().unwrap();
        let field = |k: &str| events[0].fields.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(field("count"), 3.0);
        assert_eq!(field("min"), 1.0);
        assert_eq!(field("max"), 3.0);
        assert_eq!(field("p50"), 2.0);
    }

    #[test]
    fn noop_handle_is_shared_and_inert() {
        let a = Telemetry::noop();
        let b = Telemetry::default();
        assert!(!a.enabled());
        assert!(!b.sink_enabled());
        a.span("eval", Layer::Core, &[]);
        a.record_value(HistId::EvalSeconds, 1.0);
        a.emit_counters();
        a.emit_histograms();
        a.flush();
    }

    #[test]
    fn quiet_clones_never_emit_waves() {
        use crate::wavetrace::WaveDb;
        let db = Arc::new(WaveDb::new());
        let tel = Telemetry::with_waves(Arc::new(crate::NoopRecorder), db.clone());
        assert!(tel.wave_enabled());
        let quiet = tel.quiet();
        assert!(!quiet.wave_enabled());

        let id = tel.wave_register("cpu.i_core", WaveKind::Real);
        tel.wave_epoch();
        tel.wave_real(id, 0.0, 1.0);
        // The quiet clone's registrations and samples go nowhere.
        let qid = quiet.wave_register("pdn.v_die", WaveKind::Real);
        assert!(qid.is_none());
        quiet.wave_real(id, 1e-9, 2.0);
        quiet.wave_append(id, 3.0);
        assert_eq!(db.signal_count(), 1);
        assert_eq!(db.samples_written(), 1);
    }

    #[test]
    fn default_handle_has_inert_waves() {
        let tel = Telemetry::noop();
        assert!(!tel.wave_enabled());
        assert_eq!(tel.wave_stride(), 1);
        let id = tel.wave_register("cpu.i_core", WaveKind::Real);
        assert!(id.is_none());
        tel.wave_epoch();
        tel.wave_real(id, 0.0, 1.0);
        tel.wave_int(id, 0.0, 1);
        tel.wave_bool(id, 0.0, true);
        tel.wave_append(id, 1.0);
    }

    #[test]
    fn summary_collects_nonzero_counters_and_histograms() {
        let (tel, _buf) = captured();
        tel.set_sim_time(120.0);
        tel.count(CounterId::FftInvocations, 4);
        tel.record_value(HistId::BandAmplitudeDbm, -60.0);
        let summary = tel.summary("unit");
        assert_eq!(summary.sim_seconds, 120.0);
        assert_eq!(summary.counters.len(), 1);
        assert_eq!(summary.counters[0].id, CounterId::FftInvocations);
        assert_eq!(summary.histograms.len(), 1);
        assert_eq!(summary.histograms[0].stats.count, 1);
    }
}
