//! Waveform trace database: hierarchical timed signals with VCD export.
//!
//! The measurement chain produces *waveforms* — per-cycle core current,
//! die voltage, swept-bin instrument readings — but until now only scalar
//! metrics left the process. [`WaveDb`] records those waveforms as timed
//! samples behind the same zero-cost discipline the event pipeline uses:
//! a [`WaveSink`] trait whose [`NoopWaveSink`] default costs one branch
//! per emission site (asserted allocation-free by the `noop_alloc`
//! integration test), and a real database that change-compresses samples
//! and dumps industry-standard VCD (viewable in GTKWave) or a compact
//! `.rtt`-style binary.
//!
//! Determinism contract: signal ids are assigned in registration order,
//! timestamps derive from the simulated campaign clock (picosecond
//! integers, never the host clock), and emission happens only from
//! single-threaded coordinator contexts (quiet [`crate::Telemetry`]
//! clones never emit waves). A seeded campaign therefore dumps
//! byte-identical traces at any thread count and any SIMD level.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use parking_lot::Mutex;

/// Value domain of a registered signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveKind {
    /// 64-bit float, dumped as a VCD `real`.
    Real,
    /// Unsigned integer, dumped as a VCD `integer` (binary vector).
    Int,
    /// Single bit, dumped as a VCD `wire` of width 1.
    Bool,
}

impl WaveKind {
    fn tag(self) -> u8 {
        match self {
            WaveKind::Real => 0,
            WaveKind::Int => 1,
            WaveKind::Bool => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(WaveKind::Real),
            1 => Some(WaveKind::Int),
            2 => Some(WaveKind::Bool),
            _ => None,
        }
    }
}

/// Opaque handle to a registered signal.
///
/// [`WaveId::NONE`] is the inert sentinel returned by [`NoopWaveSink`]
/// and for filtered-out signals; sampling through it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveId(u32);

impl WaveId {
    /// Sentinel for "not recorded": disabled sinks and filtered signals.
    pub const NONE: WaveId = WaveId(u32::MAX);

    /// `true` when sampling through this id goes nowhere.
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// Destination for waveform samples, threaded through the chain inside
/// `Telemetry`.
///
/// Same discipline as the event `Recorder`: the disabled path is one
/// `is_enabled` virtual call per emission *site* (not per sample — sites
/// check once and skip their whole emission block), so hot loops stay
/// byte-identical with tracing off.
pub trait WaveSink: Send + Sync + std::fmt::Debug {
    /// Whether samples sent here are retained. Emission sites gate their
    /// whole block on this.
    fn is_enabled(&self) -> bool;

    /// Decimation stride emission sites should apply to dense waveforms
    /// (every `stride`-th sample). Always ≥ 1.
    fn stride(&self) -> usize;

    /// Registers (or looks up) a dot-separated hierarchical signal name,
    /// e.g. `pdn.v_die`. Idempotent: the same name always maps to the
    /// same id, assigned in first-registration order.
    fn register(&self, name: &str, kind: WaveKind) -> WaveId;

    /// Opens a new emission epoch at simulated campaign time
    /// `sim_seconds`; subsequent sample timestamps are relative to it.
    /// Epochs never move time backwards: the epoch base is clamped to
    /// just past the database's high-water mark, so a stalled simulated
    /// clock still yields sorted timestamps.
    fn begin_epoch(&self, sim_seconds: f64);

    /// Records a real sample at `t_s` seconds past the current epoch.
    fn sample_real(&self, id: WaveId, t_s: f64, value: f64);

    /// Records an integer sample at `t_s` seconds past the current epoch.
    fn sample_int(&self, id: WaveId, t_s: f64, value: u64);

    /// Records a bit sample at `t_s` seconds past the current epoch.
    fn sample_bool(&self, id: WaveId, t_s: f64, value: bool);

    /// Records a point reading just past the database's high-water mark —
    /// for signals with no waveform time axis of their own (instrument
    /// metrics produced once per measurement).
    fn append_real(&self, id: WaveId, value: f64);
}

/// The zero-cost disabled sink: registers nothing, drops every sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopWaveSink;

impl WaveSink for NoopWaveSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn stride(&self) -> usize {
        1
    }

    fn register(&self, _name: &str, _kind: WaveKind) -> WaveId {
        WaveId::NONE
    }

    fn begin_epoch(&self, _sim_seconds: f64) {}

    fn sample_real(&self, _id: WaveId, _t_s: f64, _value: f64) {}

    fn sample_int(&self, _id: WaveId, _t_s: f64, _value: u64) {}

    fn sample_bool(&self, _id: WaveId, _t_s: f64, _value: bool) {}

    fn append_real(&self, _id: WaveId, _value: f64) {}
}

/// One picosecond per VCD tick: PDN steps (hundreds of ps) and CPU
/// cycles (≥ 250 ps at 4 GHz) resolve exactly, and a multi-hour
/// simulated campaign still fits a `u64` with headroom.
const PS_PER_SECOND: f64 = 1e12;

fn to_ps(seconds: f64) -> u64 {
    let ps = (seconds * PS_PER_SECOND).round();
    if ps <= 0.0 {
        0
    } else {
        ps as u64
    }
}

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    kind: WaveKind,
    /// Change-only compression state: bits of the last recorded value.
    last_bits: Option<u64>,
    /// Per-signal time high-water mark; out-of-order samples clamp to it
    /// so the dump is always sorted and compression stays consistent.
    last_t_ps: u64,
}

#[derive(Debug, Default)]
struct DbInner {
    signals: Vec<Signal>,
    index: HashMap<String, WaveId>,
    /// `(t_ps, signal id, value bits)`, per-signal time-ordered.
    changes: Vec<(u64, u32, u64)>,
    epoch_ps: u64,
    cursor_ps: u64,
}

/// In-memory waveform trace database implementing [`WaveSink`].
///
/// Signals are registered by dot-separated hierarchical name
/// (`cpu.i_core`, `pdn.v_die`, `inst.band_dbm`); samples are
/// change-compressed (a sample equal to the signal's previous value is
/// dropped) and timestamped in integer picoseconds. [`WaveDb::dump_vcd`]
/// renders the scope tree and sorted change stream as VCD;
/// [`WaveDb::dump_rtt`] writes the same content as a compact binary.
#[derive(Debug, Default)]
pub struct WaveDb {
    inner: Mutex<DbInner>,
    stride: usize,
    /// Signal-name prefixes to keep; empty keeps everything.
    filters: Vec<String>,
}

impl WaveDb {
    /// An unfiltered database recording every sample (stride 1).
    pub fn new() -> Self {
        WaveDb::with_config(1, Vec::new())
    }

    /// A database advertising decimation `stride` and keeping only
    /// signals whose name starts with one of `filters` (all signals when
    /// `filters` is empty). Stride 0 is treated as 1.
    pub fn with_config(stride: usize, filters: Vec<String>) -> Self {
        WaveDb {
            inner: Mutex::new(DbInner::default()),
            stride: stride.max(1),
            filters,
        }
    }

    /// Whether a signal named `name` passes the prefix filters (an empty
    /// filter list keeps everything).
    pub fn keeps(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.starts_with(f.as_str()))
    }

    /// Number of registered (unfiltered) signals.
    pub fn signal_count(&self) -> usize {
        self.inner.lock().signals.len()
    }

    /// Number of retained (change-compressed) samples.
    pub fn samples_written(&self) -> u64 {
        self.inner.lock().changes.len() as u64
    }

    fn record(&self, id: WaveId, t_s: f64, bits: u64) {
        if id.is_none() {
            return;
        }
        let mut inner = self.inner.lock();
        let base = inner.epoch_ps;
        self.push_change(
            &mut inner,
            id.0,
            base.saturating_add(to_ps(t_s.max(0.0))),
            bits,
        );
    }

    fn push_change(&self, inner: &mut DbInner, id: u32, t_ps: u64, bits: u64) {
        let sig = &mut inner.signals[id as usize];
        let t_ps = t_ps.max(sig.last_t_ps);
        if sig.last_bits == Some(bits) {
            return;
        }
        sig.last_bits = Some(bits);
        sig.last_t_ps = t_ps;
        inner.changes.push((t_ps, id, bits));
        inner.cursor_ps = inner.cursor_ps.max(t_ps);
    }

    /// Sorted change stream: stable by timestamp, so equal-time changes
    /// keep insertion order (the later one is the VCD-final value, which
    /// matches how they were recorded).
    fn sorted_changes(inner: &DbInner) -> Vec<(u64, u32, u64)> {
        let mut changes = inner.changes.clone();
        changes.sort_by_key(|&(t, _, _)| t);
        changes
    }

    /// Writes the database as a Value Change Dump (`$timescale 1ps`).
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn dump_vcd(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = self.inner.lock();
        writeln!(w, "$comment emvolt wavetrace $end")?;
        writeln!(w, "$timescale 1ps $end")?;
        write_scope_tree(w, &inner.signals)?;
        writeln!(w, "$enddefinitions $end")?;
        let mut current_t = None;
        for (t, id, bits) in Self::sorted_changes(&inner) {
            if current_t != Some(t) {
                writeln!(w, "#{t}")?;
                current_t = Some(t);
            }
            let code = id_code(id);
            match inner.signals[id as usize].kind {
                WaveKind::Real => writeln!(w, "r{} {code}", f64::from_bits(bits))?,
                WaveKind::Int => writeln!(w, "b{bits:b} {code}")?,
                WaveKind::Bool => writeln!(w, "{}{code}", if bits != 0 { '1' } else { '0' })?,
            }
        }
        Ok(())
    }

    /// The VCD dump as a string (tests and in-memory comparisons).
    pub fn to_vcd_string(&self) -> String {
        let mut buf = Vec::new();
        self.dump_vcd(&mut buf)
            .expect("Vec<u8> writes are infallible");
        String::from_utf8(buf).expect("VCD output is ASCII")
    }

    /// Writes the compact binary form: magic, signal table, then the
    /// sorted change stream as fixed-size little-endian records.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn dump_rtt(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = self.inner.lock();
        w.write_all(RTT_MAGIC)?;
        w.write_all(&(inner.signals.len() as u32).to_le_bytes())?;
        for sig in &inner.signals {
            w.write_all(&[sig.kind.tag()])?;
            w.write_all(&(sig.name.len() as u32).to_le_bytes())?;
            w.write_all(sig.name.as_bytes())?;
        }
        let changes = Self::sorted_changes(&inner);
        w.write_all(&(changes.len() as u64).to_le_bytes())?;
        for (t, id, bits) in changes {
            w.write_all(&t.to_le_bytes())?;
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&bits.to_le_bytes())?;
        }
        Ok(())
    }

    /// Dumps to `path`, picking the format from the extension: `.rtt`
    /// writes the binary form, anything else VCD.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn dump_to_path(&self, path: &Path) -> io::Result<()> {
        let mut out = io::BufWriter::new(std::fs::File::create(path)?);
        if path.extension().is_some_and(|e| e == "rtt") {
            self.dump_rtt(&mut out)?;
        } else {
            self.dump_vcd(&mut out)?;
        }
        out.flush()
    }
}

impl WaveSink for WaveDb {
    fn is_enabled(&self) -> bool {
        true
    }

    fn stride(&self) -> usize {
        self.stride
    }

    fn register(&self, name: &str, kind: WaveKind) -> WaveId {
        if !self.keeps(name) {
            return WaveId::NONE;
        }
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.index.get(name) {
            return id;
        }
        let id = WaveId(inner.signals.len() as u32);
        inner.signals.push(Signal {
            name: name.to_string(),
            kind,
            last_bits: None,
            last_t_ps: 0,
        });
        inner.index.insert(name.to_string(), id);
        id
    }

    fn begin_epoch(&self, sim_seconds: f64) {
        let mut inner = self.inner.lock();
        let floor = if inner.changes.is_empty() {
            0
        } else {
            inner.cursor_ps + 1
        };
        inner.epoch_ps = to_ps(sim_seconds.max(0.0)).max(floor);
    }

    fn sample_real(&self, id: WaveId, t_s: f64, value: f64) {
        self.record(id, t_s, value.to_bits());
    }

    fn sample_int(&self, id: WaveId, t_s: f64, value: u64) {
        self.record(id, t_s, value);
    }

    fn sample_bool(&self, id: WaveId, t_s: f64, value: bool) {
        self.record(id, t_s, value as u64);
    }

    fn append_real(&self, id: WaveId, value: f64) {
        if id.is_none() {
            return;
        }
        let mut inner = self.inner.lock();
        let t_ps = inner.cursor_ps + u64::from(!inner.changes.is_empty());
        self.push_change(&mut inner, id.0, t_ps, value.to_bits());
    }
}

const RTT_MAGIC: &[u8; 8] = b"emvoltRT";

/// Parsed content of an `.rtt` binary dump (testing / tooling).
#[derive(Debug, Clone, PartialEq)]
pub struct RttDump {
    /// `(name, kind)` in id order.
    pub signals: Vec<(String, WaveKind)>,
    /// `(t_ps, signal id, value bits)` sorted by time.
    pub changes: Vec<(u64, u32, u64)>,
}

/// Reads back an `.rtt` dump written by [`WaveDb::dump_rtt`].
///
/// # Errors
///
/// Returns a description of the first structural problem (bad magic,
/// truncated table, unknown kind tag, non-UTF-8 name).
pub fn read_rtt(r: &mut dyn Read) -> Result<RttDump, String> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(|e| e.to_string())?;
    let mut at = 0usize;
    let mut take = |n: usize| -> Result<&[u8], String> {
        let slice = bytes
            .get(at..at + n)
            .ok_or_else(|| format!("truncated at byte {at}: wanted {n} more"))?;
        at += n;
        Ok(slice)
    };
    if take(8)? != RTT_MAGIC {
        return Err("bad magic: not an emvolt rtt dump".to_string());
    }
    let n_signals = u32::from_le_bytes(take(4)?.try_into().unwrap());
    let mut signals = Vec::with_capacity(n_signals as usize);
    for i in 0..n_signals {
        let tag = take(1)?[0];
        let kind = WaveKind::from_tag(tag).ok_or_else(|| format!("signal {i}: bad kind {tag}"))?;
        let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(len)?)
            .map_err(|_| format!("signal {i}: name is not UTF-8"))?
            .to_string();
        signals.push((name, kind));
    }
    let n_changes = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let mut changes = Vec::with_capacity(n_changes as usize);
    for _ in 0..n_changes {
        let t = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let id = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let bits = u64::from_le_bytes(take(8)?.try_into().unwrap());
        changes.push((t, id, bits));
    }
    if at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after change stream",
            bytes.len() - at
        ));
    }
    Ok(RttDump { signals, changes })
}

/// VCD identifier code for signal `id`: base-94 over the printable ASCII
/// range `!`..`~`, matching standard dumpers.
fn id_code(mut id: u32) -> String {
    let mut code = String::new();
    loop {
        code.push((b'!' + (id % 94) as u8) as char);
        id /= 94;
        if id == 0 {
            break;
        }
    }
    code
}

/// Ordered scope tree node built from dot-separated signal names.
#[derive(Default)]
struct ScopeNode {
    /// Subscopes in first-appearance order (determinism: registration
    /// order drives the header layout).
    subs: Vec<(String, ScopeNode)>,
    /// Signal ids whose leaf variable lives directly in this scope.
    vars: Vec<u32>,
}

fn write_scope_tree(w: &mut dyn Write, signals: &[Signal]) -> io::Result<()> {
    let mut root = ScopeNode::default();
    for (id, sig) in signals.iter().enumerate() {
        let mut node = &mut root;
        let mut parts = sig.name.split('.').peekable();
        while let Some(part) = parts.next() {
            if parts.peek().is_none() {
                node.vars.push(id as u32);
            } else {
                let pos = match node.subs.iter().position(|(n, _)| n == part) {
                    Some(p) => p,
                    None => {
                        node.subs.push((part.to_string(), ScopeNode::default()));
                        node.subs.len() - 1
                    }
                };
                node = &mut node.subs[pos].1;
            }
        }
    }
    write_scope_node(w, &root, signals, 0)
}

fn write_scope_node(
    w: &mut dyn Write,
    node: &ScopeNode,
    signals: &[Signal],
    depth: usize,
) -> io::Result<()> {
    let pad = "  ".repeat(depth);
    for &id in &node.vars {
        let sig = &signals[id as usize];
        let leaf = sig.name.rsplit('.').next().unwrap_or(&sig.name);
        let (ty, width) = match sig.kind {
            WaveKind::Real => ("real", 64),
            WaveKind::Int => ("integer", 64),
            WaveKind::Bool => ("wire", 1),
        };
        writeln!(w, "{pad}$var {ty} {width} {} {leaf} $end", id_code(id))?;
    }
    for (name, sub) in &node.subs {
        writeln!(w, "{pad}$scope module {name} $end")?;
        write_scope_node(w, sub, signals, depth + 1)?;
        writeln!(w, "{pad}$upscope $end")?;
    }
    Ok(())
}

/// Summary statistics from a successful [`validate_vcd_text`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcdCheck {
    /// Declared `$var` count.
    pub signals: usize,
    /// Value-change lines seen.
    pub changes: u64,
    /// Last timestamp in the dump, picoseconds.
    pub end_time_ps: u64,
}

/// Structural VCD validation in the `validate_telemetry` style: the
/// header must be well-formed (balanced scopes, a `$timescale`, ending in
/// `$enddefinitions`), every value change must reference a declared
/// identifier code, and timestamps must be strictly increasing. Errors
/// name the offending line number.
///
/// # Errors
///
/// Returns `"line N: <problem>"` for the first violation.
pub fn validate_vcd_text(text: &str) -> Result<VcdCheck, String> {
    let mut codes: HashMap<&str, usize> = HashMap::new();
    let mut in_header = true;
    let mut saw_timescale = false;
    let mut scope_depth = 0usize;
    let mut last_t: Option<u64> = None;
    let mut changes = 0u64;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if in_header {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.last() != Some(&"$end") {
                return Err(format!(
                    "line {line_no}: header directive not closed by $end"
                ));
            }
            match tokens[0] {
                "$timescale" => saw_timescale = true,
                "$comment" | "$date" | "$version" => {}
                "$scope" => scope_depth += 1,
                "$upscope" => {
                    scope_depth = scope_depth
                        .checked_sub(1)
                        .ok_or_else(|| format!("line {line_no}: $upscope without open scope"))?;
                }
                "$var" => {
                    // $var <type> <width> <code> <ref...> $end
                    if tokens.len() < 6 {
                        return Err(format!("line {line_no}: malformed $var declaration"));
                    }
                    if tokens[2].parse::<u32>().is_err() {
                        return Err(format!(
                            "line {line_no}: $var width `{}` is not an integer",
                            tokens[2]
                        ));
                    }
                    if codes.insert(tokens[3], line_no).is_some() {
                        return Err(format!(
                            "line {line_no}: identifier code `{}` declared twice",
                            tokens[3]
                        ));
                    }
                }
                "$enddefinitions" => {
                    if scope_depth != 0 {
                        return Err(format!(
                            "line {line_no}: $enddefinitions with {scope_depth} unclosed scope(s)"
                        ));
                    }
                    if !saw_timescale {
                        return Err(format!(
                            "line {line_no}: no $timescale before definitions end"
                        ));
                    }
                    in_header = false;
                }
                other => {
                    return Err(format!(
                        "line {line_no}: unknown header directive `{other}`"
                    ));
                }
            }
            continue;
        }
        // Body: timestamps and value changes.
        if let Some(ts) = line.strip_prefix('#') {
            let t: u64 = ts
                .parse()
                .map_err(|_| format!("line {line_no}: bad timestamp `#{ts}`"))?;
            if let Some(prev) = last_t {
                if t <= prev {
                    return Err(format!(
                        "line {line_no}: timestamp #{t} not after previous #{prev}"
                    ));
                }
            }
            last_t = Some(t);
            continue;
        }
        let code = if let Some(rest) = line.strip_prefix('r').or_else(|| line.strip_prefix('b')) {
            let (value, code) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: vector change without identifier"))?;
            let ok = if line.starts_with('r') {
                value.parse::<f64>().is_ok()
            } else {
                !value.is_empty() && value.chars().all(|c| c == '0' || c == '1')
            };
            if !ok {
                return Err(format!("line {line_no}: bad value `{value}`"));
            }
            code
        } else if let Some(code) = line.strip_prefix('0').or_else(|| line.strip_prefix('1')) {
            if code.is_empty() {
                return Err(format!("line {line_no}: scalar change without identifier"));
            }
            code
        } else {
            return Err(format!("line {line_no}: unrecognized line `{line}`"));
        };
        if !codes.contains_key(code) {
            return Err(format!(
                "line {line_no}: undeclared identifier code `{code}`"
            ));
        }
        changes += 1;
    }
    if in_header {
        return Err("line 1: no $enddefinitions — not a VCD body".to_string());
    }
    Ok(VcdCheck {
        signals: codes.len(),
        changes,
        end_time_ps: last_t.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let db = WaveDb::new();
        let a = db.register("cpu.i_core", WaveKind::Real);
        let b = db.register("pdn.v_die", WaveKind::Real);
        let a2 = db.register("cpu.i_core", WaveKind::Real);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(db.signal_count(), 2);
    }

    #[test]
    fn change_only_compression_drops_repeats() {
        let db = WaveDb::new();
        let id = db.register("cpu.issue_slots", WaveKind::Int);
        db.begin_epoch(0.0);
        db.sample_int(id, 0.0, 2);
        db.sample_int(id, 1e-9, 2);
        db.sample_int(id, 2e-9, 3);
        db.sample_int(id, 3e-9, 3);
        assert_eq!(db.samples_written(), 2);
    }

    #[test]
    fn noop_sink_registers_nothing() {
        let sink = NoopWaveSink;
        assert!(!sink.is_enabled());
        let id = sink.register("cpu.i_core", WaveKind::Real);
        assert!(id.is_none());
        sink.sample_real(id, 0.0, 1.0);
        sink.append_real(id, 1.0);
        sink.begin_epoch(5.0);
    }

    #[test]
    fn prefix_filters_drop_unlisted_signals() {
        let db = WaveDb::with_config(1, vec!["cpu".to_string()]);
        let kept = db.register("cpu.i_core", WaveKind::Real);
        let dropped = db.register("pdn.v_die", WaveKind::Real);
        assert!(!kept.is_none());
        assert!(dropped.is_none());
        db.sample_real(dropped, 0.0, 1.0);
        assert_eq!(db.signal_count(), 1);
        assert_eq!(db.samples_written(), 0);
    }

    #[test]
    fn epochs_never_move_time_backwards() {
        let db = WaveDb::new();
        let id = db.register("pdn.v_die", WaveKind::Real);
        db.begin_epoch(1e-6);
        db.sample_real(id, 2e-6, 1.0);
        // Stalled sim clock: the next epoch still lands past the cursor.
        db.begin_epoch(0.0);
        db.sample_real(id, 0.0, 2.0);
        let vcd = db.to_vcd_string();
        let check = validate_vcd_text(&vcd).unwrap();
        assert_eq!(check.changes, 2);
        assert!(check.end_time_ps > 3_000_000);
    }

    #[test]
    fn appends_land_past_the_high_water_mark() {
        let db = WaveDb::new();
        let wave = db.register("pdn.v_die", WaveKind::Real);
        let point = db.register("inst.band_dbm", WaveKind::Real);
        db.begin_epoch(0.0);
        db.sample_real(wave, 1e-9, 1.0);
        db.append_real(point, -60.0);
        db.append_real(point, -61.0);
        let vcd = db.to_vcd_string();
        let check = validate_vcd_text(&vcd).unwrap();
        assert_eq!(check.end_time_ps, 1002);
        assert_eq!(check.changes, 3);
    }

    #[test]
    fn vcd_dump_validates_and_scopes_hierarchically() {
        let db = WaveDb::new();
        let i = db.register("cpu.i_core", WaveKind::Real);
        let s = db.register("cpu.issue_slots", WaveKind::Int);
        let g = db.register("pdn.gated", WaveKind::Bool);
        db.begin_epoch(0.0);
        db.sample_real(i, 0.0, 0.75);
        db.sample_int(s, 0.0, 3);
        db.sample_bool(g, 0.0, true);
        db.sample_bool(g, 1e-9, false);
        let vcd = db.to_vcd_string();
        assert!(vcd.contains("$scope module cpu $end"));
        assert!(vcd.contains("$scope module pdn $end"));
        assert!(vcd.contains("$var real 64 ! i_core $end"));
        assert!(vcd.contains("$var integer 64 \" issue_slots $end"));
        assert!(vcd.contains("r0.75 !"));
        assert!(vcd.contains("b11 \""));
        let check = validate_vcd_text(&vcd).unwrap();
        assert_eq!(check.signals, 3);
        assert_eq!(check.changes, 4);
        assert_eq!(check.end_time_ps, 1000);
    }

    #[test]
    fn rtt_round_trips() {
        let db = WaveDb::new();
        let i = db.register("cpu.i_core", WaveKind::Real);
        let s = db.register("cpu.issue_slots", WaveKind::Int);
        db.begin_epoch(0.0);
        db.sample_real(i, 0.0, -0.0);
        db.sample_int(s, 1e-9, 7);
        db.sample_real(i, 2e-9, f64::NAN.copysign(-1.0));
        let mut buf = Vec::new();
        db.dump_rtt(&mut buf).unwrap();
        let dump = read_rtt(&mut &buf[..]).unwrap();
        assert_eq!(
            dump.signals,
            vec![
                ("cpu.i_core".to_string(), WaveKind::Real),
                ("cpu.issue_slots".to_string(), WaveKind::Int),
            ]
        );
        assert_eq!(dump.changes.len(), 3);
        assert_eq!(dump.changes[0], (0, 0, (-0.0f64).to_bits()));
        assert_eq!(dump.changes[1], (1000, 1, 7));
        // NaN bits survive exactly — the binary format stores raw bits.
        assert_eq!(dump.changes[2].2, f64::NAN.copysign(-1.0).to_bits());
    }

    #[test]
    fn rtt_rejects_corruption() {
        let db = WaveDb::new();
        db.register("cpu.i_core", WaveKind::Real);
        let mut buf = Vec::new();
        db.dump_rtt(&mut buf).unwrap();
        let err = read_rtt(&mut &buf[..4]).unwrap_err();
        assert!(err.contains("truncated"));
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_rtt(&mut &bad[..]).unwrap_err().contains("magic"));
    }

    #[test]
    fn validator_flags_unsorted_timestamps_with_line_numbers() {
        let text = "$timescale 1ps $end\n$var real 64 ! v $end\n$enddefinitions $end\n#10\nr1 !\n#5\nr2 !\n";
        let err = validate_vcd_text(text).unwrap_err();
        assert!(err.starts_with("line 6:"), "{err}");
        assert!(err.contains("#5"), "{err}");
    }

    #[test]
    fn validator_flags_undeclared_codes() {
        let text = "$timescale 1ps $end\n$var real 64 ! v $end\n$enddefinitions $end\n#0\nr1 \"\n";
        let err = validate_vcd_text(text).unwrap_err();
        assert!(err.starts_with("line 5:"), "{err}");
        assert!(err.contains("undeclared"), "{err}");
    }

    #[test]
    fn validator_flags_unbalanced_scopes() {
        let text = "$timescale 1ps $end\n$scope module cpu $end\n$enddefinitions $end\n";
        let err = validate_vcd_text(text).unwrap_err();
        assert!(err.contains("unclosed scope"), "{err}");
    }

    #[test]
    fn id_codes_cover_multi_char_range() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!\"");
        let db = WaveDb::new();
        for k in 0..200 {
            db.register(&format!("s.n{k}"), WaveKind::Real);
        }
        let vcd = db.to_vcd_string();
        assert_eq!(validate_vcd_text(&vcd).unwrap().signals, 200);
    }
}
