//! The JSONL event schema.
//!
//! One event is one JSON object on one line, with a fixed key order so
//! that identical campaigns serialize to identical bytes:
//!
//! ```json
//! {"k":"span","name":"eval","layer":"core","t":40.0,"fields":{"gen":0,"idx":3,"fitness":-52.1}}
//! ```
//!
//! | key      | type   | meaning                                              |
//! |----------|--------|------------------------------------------------------|
//! | `k`      | string | event kind: `span` / `counter` / `hist`              |
//! | `name`   | string | span name, counter name, or histogram name           |
//! | `layer`  | string | originating subsystem (`circuit`, `dsp`, ...)        |
//! | `t`      | number | simulated campaign seconds (`SimClock`)              |
//! | `wall`   | number | optional wall-clock seconds (injected closure only)  |
//! | `fields` | object | numeric payload, in emission order                   |
//!
//! `counter` events carry `{"value": <total>}`; `hist` events carry
//! `{"count","sum","min","max","p50","p90","p99"}`; `span` fields are
//! span-specific attributes. The vendored `serde` derive cannot express
//! optional keys or this tagged layout, so the impls are hand-written.

use serde::{DeError, Deserialize, Serialize, Value};

/// The subsystem an event originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// MNA transient solver (`emvolt-circuit`).
    Circuit,
    /// FFT / spectrum estimation (`emvolt-dsp`).
    Dsp,
    /// EM propagation channel (`emvolt-em`).
    Em,
    /// Voltage domains and the bench protocol (`emvolt-platform`).
    Platform,
    /// Genetic-algorithm engine (`emvolt-ga`).
    Ga,
    /// Campaign orchestration (`emvolt-core`).
    Core,
    /// Command-line / experiment drivers.
    Cli,
}

impl Layer {
    /// Every layer, in schema order.
    pub const ALL: [Layer; 7] = [
        Layer::Circuit,
        Layer::Dsp,
        Layer::Em,
        Layer::Platform,
        Layer::Ga,
        Layer::Core,
        Layer::Cli,
    ];

    /// Wire name used in the `layer` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Circuit => "circuit",
            Layer::Dsp => "dsp",
            Layer::Em => "em",
            Layer::Platform => "platform",
            Layer::Ga => "ga",
            Layer::Core => "core",
            Layer::Cli => "cli",
        }
    }

    /// Parses a wire name back into a layer.
    pub fn parse(s: &str) -> Option<Layer> {
        Layer::ALL.into_iter().find(|l| l.as_str() == s)
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Event kind discriminator (the `k` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A point-in-time mark with span-specific attributes.
    Span,
    /// A monotonic counter snapshot.
    Counter,
    /// A value-histogram summary (count + percentiles).
    Hist,
}

impl EventKind {
    /// Every kind, in schema order.
    pub const ALL: [EventKind; 3] = [EventKind::Span, EventKind::Counter, EventKind::Hist];

    /// Wire name used in the `k` field.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Hist => "hist",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// Payload fields a `hist` event must carry, in order.
pub(crate) const HIST_FIELDS: [&str; 7] = ["count", "sum", "min", "max", "p50", "p90", "p99"];

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Kind discriminator.
    pub kind: EventKind,
    /// Span / counter / histogram name.
    pub name: String,
    /// Originating subsystem.
    pub layer: Layer,
    /// Simulated campaign time, seconds.
    pub t_s: f64,
    /// Optional wall-clock seconds; `None` in deterministic runs.
    pub wall_s: Option<f64>,
    /// Numeric payload, in emission order.
    pub fields: Vec<(String, f64)>,
}

impl Event {
    /// Checks the per-kind schema contract documented in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("event has an empty name".to_string());
        }
        if !self.t_s.is_finite() || self.t_s < 0.0 {
            return Err(format!("event `{}` has invalid t {}", self.name, self.t_s));
        }
        let has = |key: &str| self.fields.iter().any(|(k, _)| k == key);
        match self.kind {
            EventKind::Span => Ok(()),
            EventKind::Counter => {
                let Some(id) = crate::metrics::CounterId::ALL
                    .into_iter()
                    .find(|c| c.name() == self.name)
                else {
                    return Err(format!(
                        "counter `{}` is not in the counter registry",
                        self.name
                    ));
                };
                if id.layer() != self.layer {
                    return Err(format!(
                        "counter `{}` belongs to layer `{}`, event says `{}`",
                        self.name,
                        id.layer(),
                        self.layer
                    ));
                }
                if self.fields.len() == 1 && has("value") {
                    Ok(())
                } else {
                    Err(format!(
                        "counter `{}` must carry exactly a `value` field",
                        self.name
                    ))
                }
            }
            EventKind::Hist => {
                for key in HIST_FIELDS {
                    if !has(key) {
                        return Err(format!("hist `{}` is missing field `{key}`", self.name));
                    }
                }
                Ok(())
            }
        }
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut obj = Vec::with_capacity(6);
        obj.push(("k".to_string(), Value::Str(self.kind.as_str().to_string())));
        obj.push(("name".to_string(), Value::Str(self.name.clone())));
        obj.push((
            "layer".to_string(),
            Value::Str(self.layer.as_str().to_string()),
        ));
        obj.push(("t".to_string(), Value::Num(self.t_s)));
        if let Some(w) = self.wall_s {
            obj.push(("wall".to_string(), Value::Num(w)));
        }
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v)))
            .collect();
        obj.push(("fields".to_string(), Value::Obj(fields)));
        Value::Obj(obj)
    }
}

impl Deserialize for Event {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind_str = String::from_value(v.field_value("k")?)?;
        let kind = EventKind::parse(&kind_str)
            .ok_or_else(|| DeError::new(format!("unknown event kind `{kind_str}`")))?;
        let name = String::from_value(v.field_value("name")?)?;
        let layer_str = String::from_value(v.field_value("layer")?)?;
        let layer = Layer::parse(&layer_str)
            .ok_or_else(|| DeError::new(format!("unknown layer `{layer_str}`")))?;
        let t_s = f64::from_value(v.field_value("t")?)?;
        let wall_s = match v.field_value("wall") {
            Ok(w) => Some(f64::from_value(w)?),
            Err(_) => None,
        };
        let fields = match v.field_value("fields")? {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, fv)| Ok((k.clone(), f64::from_value(fv)?)))
                .collect::<Result<Vec<_>, DeError>>()?,
            other => {
                return Err(DeError::new(format!(
                    "expected object for `fields`, found {}",
                    other.kind()
                )))
            }
        };
        Ok(Event {
            kind,
            name,
            layer,
            t_s,
            wall_s,
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> Event {
        Event {
            kind: EventKind::Span,
            name: "eval".to_string(),
            layer: Layer::Core,
            t_s: 40.5,
            wall_s: None,
            fields: vec![("gen".to_string(), 0.0), ("fitness".to_string(), -52.25)],
        }
    }

    #[test]
    fn round_trips_through_vendored_serde_json() {
        for event in [
            sample_span(),
            Event {
                kind: EventKind::Counter,
                name: "lu_factorizations".to_string(),
                layer: Layer::Circuit,
                t_s: 0.0,
                wall_s: Some(1.25),
                fields: vec![("value".to_string(), 3.0)],
            },
        ] {
            let line = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn wall_key_is_omitted_when_absent() {
        let line = serde_json::to_string(&sample_span()).unwrap();
        assert!(
            !line.contains("wall"),
            "deterministic event leaked a wall clock: {line}"
        );
    }

    #[test]
    fn serialization_is_byte_stable() {
        let a = serde_json::to_string(&sample_span()).unwrap();
        let b = serde_json::to_string(&sample_span()).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"k\":\"span\",\"name\":\"eval\",\"layer\":\"core\",\"t\":40.5"));
    }

    #[test]
    fn validate_enforces_per_kind_fields() {
        assert!(sample_span().validate().is_ok());
        let bad_counter = Event {
            kind: EventKind::Counter,
            fields: vec![],
            ..sample_span()
        };
        assert!(bad_counter.validate().is_err());
        let bad_hist = Event {
            kind: EventKind::Hist,
            fields: vec![("count".to_string(), 1.0)],
            ..sample_span()
        };
        assert!(bad_hist.validate().unwrap_err().contains("sum"));
    }

    /// Counter events must name a registered counter on its owning layer
    /// — including the batch-lane occupancy counters the lane-major GA
    /// path emits at each generation barrier.
    #[test]
    fn counter_events_are_checked_against_the_registry() {
        use crate::metrics::CounterId;
        for id in [CounterId::BatchLanes, CounterId::BatchLaneOccupancy] {
            let event = Event {
                kind: EventKind::Counter,
                name: id.name().to_string(),
                layer: id.layer(),
                t_s: 1.0,
                wall_s: None,
                fields: vec![("value".to_string(), 8.0)],
            };
            event.validate().unwrap();
            let wrong_layer = Event {
                layer: Layer::Dsp,
                ..event.clone()
            };
            assert!(wrong_layer.validate().unwrap_err().contains("layer"));
        }
        let unregistered = Event {
            kind: EventKind::Counter,
            name: "not_a_counter".to_string(),
            layer: Layer::Core,
            t_s: 0.0,
            wall_s: None,
            fields: vec![("value".to_string(), 1.0)],
        };
        assert!(unregistered.validate().unwrap_err().contains("registry"));
    }

    #[test]
    fn layer_and_kind_parse_inverse_as_str() {
        for layer in Layer::ALL {
            assert_eq!(Layer::parse(layer.as_str()), Some(layer));
        }
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(Layer::parse("kernel"), None);
    }
}
