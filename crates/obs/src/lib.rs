//! Campaign telemetry: deterministic spans, counters and JSONL traces.
//!
//! The measurement chain simulates multi-hour physical campaigns (§5.1,
//! §5.3 of the paper), and this crate is how those campaigns stop running
//! dark. It is deliberately dependency-free beyond the vendored offline
//! subsets: counters are plain atomics, histograms sit behind
//! `parking_lot` mutexes, and the sink renders through the vendored
//! `serde_json`.
//!
//! Three pieces:
//!
//! - [`Recorder`]: the sink trait. [`NoopRecorder`] is the zero-cost
//!   default; [`JsonlRecorder`] writes one [`Event`] per line.
//! - [`Telemetry`]: the cheap cloneable handle threaded through the
//!   measurement chain. Counters accumulate from any thread; span and
//!   histogram *emission* happens only from single-threaded coordinator
//!   contexts so traces are byte-identical regardless of worker count
//!   (see [`Telemetry::quiet`]).
//! - [`CampaignSummary`]: end-of-run aggregation (counter totals +
//!   histogram percentiles) appended to `results/`.
//!
//! A fourth piece records *waveforms* rather than events: [`WaveSink`] /
//! [`WaveDb`] capture timed hierarchical signals (per-cycle core
//! current, die voltage, instrument readings) behind the same zero-cost
//! noop discipline and dump VCD or a compact binary.
//!
//! Timestamps come from the simulated campaign clock (`emvolt-platform`'s
//! `SimClock`, propagated via [`Telemetry::set_sim_time`]); an optional
//! caller-injected wall-clock closure adds a `wall` field when real-time
//! latencies are wanted. The deterministic path never reads the host
//! clock.

#![forbid(unsafe_code)]

mod event;
mod metrics;
mod recorder;
mod summary;
mod telemetry;
mod wavetrace;

pub use event::{Event, EventKind, Layer};
pub use metrics::{CounterId, HistId, HistSummary};
pub use recorder::{JsonlRecorder, NoopRecorder, Recorder};
pub use summary::{CampaignSummary, CounterTotal, HistTotal};
pub use telemetry::Telemetry;
pub use wavetrace::{
    read_rtt, validate_vcd_text, NoopWaveSink, RttDump, VcdCheck, WaveDb, WaveId, WaveKind,
    WaveSink,
};
