//! Proves the disabled telemetry path is free: no events, and no heap
//! allocations on the hot path (counter adds, span emission attempts,
//! histogram recording) once the shared noop handle exists.
//!
//! Lives in an integration test because the counting allocator needs
//! `unsafe impl GlobalAlloc`, which the library forbids for itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use emvolt_obs::{CounterId, HistId, Layer, Telemetry, WaveKind};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn noop_hot_path_allocates_nothing() {
    // Constructing the shared handle may allocate once; do it first.
    let tel = Telemetry::noop();
    let quiet = tel.quiet();

    // The counter is process-global, so an unrelated harness thread can
    // allocate inside the measurement window and produce a false
    // positive. A genuine allocation on the noop path would fire on
    // every one of the 10k iterations in every window, so one clean
    // window out of several attempts proves the path allocation-free.
    let mut cleanest = usize::MAX;
    for _attempt in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..10_000u64 {
            tel.count(CounterId::SolverSteps, 17);
            tel.count(CounterId::FftInvocations, 1);
            tel.span(
                "transient_solve",
                Layer::Circuit,
                &[("steps", 17.0), ("dim", 24.0)],
            );
            tel.record_value(HistId::EvalSeconds, i as f64);
            tel.set_sim_time(i as f64);
            quiet.count(CounterId::Evaluations, 1);
            quiet.span("eval", Layer::Core, &[("idx", i as f64)]);
            // The disabled wave-sink path must be equally free: every
            // emission site funnels through these calls when tracing is
            // off.
            let wid = tel.wave_register("cpu.i_core", WaveKind::Real);
            tel.wave_epoch();
            tel.wave_real(wid, 1e-9, i as f64);
            tel.wave_int(wid, 1e-9, i);
            tel.wave_append(wid, i as f64);
            quiet.wave_real(wid, 1e-9, i as f64);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }

    assert_eq!(
        cleanest, 0,
        "noop telemetry hot path performed heap allocations in every window"
    );
    // And no events were buffered anywhere: the sink reports disabled.
    assert!(!tel.enabled());
    assert!(!tel.sink_enabled());
}
