//! Property-based tests for the circuit substrate.

use emvolt_circuit::{AcExcitation, Circuit, NodeId, Stimulus, TransientConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ohm's law at arbitrary R and I: v = i * r at the DC operating point.
    #[test]
    fn dc_ohms_law(r in 1e-3..1e6f64, i in -10.0..10.0f64) {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(i)).unwrap();
        c.resistor(n, NodeId::GROUND, r).unwrap();
        let op = c.dc_operating_point().unwrap();
        let v = op.voltage(n);
        prop_assert!((v - i * r).abs() <= 1e-9 * (1.0 + (i * r).abs()));
    }

    /// Voltage-divider ratio holds for any positive resistor pair.
    #[test]
    fn dc_divider_ratio(r1 in 1e-2..1e5f64, r2 in 1e-2..1e5f64, vs in 0.1..100.0f64) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(vs)).unwrap();
        c.resistor(vin, mid, r1).unwrap();
        c.resistor(mid, NodeId::GROUND, r2).unwrap();
        let op = c.dc_operating_point().unwrap();
        let expected = vs * r2 / (r1 + r2);
        prop_assert!((op.voltage(mid) - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    /// AC impedance magnitude of a series RC is sqrt(R^2 + (1/wC)^2).
    #[test]
    fn ac_series_rc_impedance(
        r in 1e-2..1e4f64,
        cap in 1e-12..1e-6f64,
        f in 1e3..1e9f64,
    ) {
        let mut c = Circuit::new();
        let port = c.node("port");
        let mid = c.node("mid");
        let src = c.current_source(port, NodeId::GROUND, Stimulus::Dc(0.0)).unwrap();
        c.resistor(port, mid, r).unwrap();
        c.capacitor(mid, NodeId::GROUND, cap).unwrap();
        let z = c.driving_point_impedance(src, &[f]).unwrap();
        let xc = 1.0 / (2.0 * std::f64::consts::PI * f * cap);
        let expected = (r * r + xc * xc).sqrt();
        prop_assert!(
            (z[0].1.norm() - expected).abs() / expected < 1e-6,
            "got {}, expected {}", z[0].1.norm(), expected
        );
    }

    /// Passivity: a transient of a source-free damped RLC never grows.
    #[test]
    fn transient_passive_network_is_bounded(
        l in 1e-12..1e-9f64,
        cap in 1e-9..1e-6f64,
        r in 1e-3..10.0f64,
    ) {
        let mut c = Circuit::new();
        let n = c.node("tank");
        let mid = c.node("mid");
        c.inductor(n, mid, l).unwrap();
        c.resistor(mid, NodeId::GROUND, r).unwrap();
        c.capacitor(n, NodeId::GROUND, cap).unwrap();
        c.resistor(n, NodeId::GROUND, 1e7).unwrap();
        c.current_source(NodeId::GROUND, n, Stimulus::Step {
            t0: 0.0, before: 0.0, after: 1.0,
        }).unwrap();
        let f_res = 1.0 / (2.0 * std::f64::consts::PI * (l * cap).sqrt());
        let dt = 1.0 / (64.0 * f_res);
        let cfg = TransientConfig::new(dt, 2000.0 * dt);
        let res = c.transient(&cfg).unwrap();
        let v = res.voltage(n);
        // The worst possible excursion of a passive RLC to a 1 A step is
        // bounded by the peak impedance; use a loose envelope.
        let z_char = (l / cap).sqrt();
        let bound = 10.0 * (r + z_char + 1.0);
        prop_assert!(v.max().abs() < bound, "max {} exceeded bound {}", v.max(), bound);
        prop_assert!(v.min().abs() < bound);
    }

    /// The AC solution must be linear in the excitation: solving the same
    /// network twice gives identical results (determinism).
    #[test]
    fn ac_is_deterministic(f in 1e4..1e9f64) {
        let mut c = Circuit::new();
        let n = c.node("n");
        let src = c.current_source(n, NodeId::GROUND, Stimulus::Dc(0.0)).unwrap();
        c.resistor(n, NodeId::GROUND, 5.0).unwrap();
        c.capacitor(n, NodeId::GROUND, 1e-9).unwrap();
        let a = c.ac_solve(AcExcitation::Current(src), f).unwrap().voltage(n);
        let b = c.ac_solve(AcExcitation::Current(src), f).unwrap().voltage(n);
        prop_assert_eq!(a, b);
    }

    /// The state-space transient kernel agrees with LU back-substitution
    /// on random PDN-style ladder networks (VRM source, package RL, die
    /// RC stages, arbitrary load stimulus) — the equivalence that lets
    /// `KernelChoice::Auto` default to the fused kernel.
    #[test]
    fn state_space_kernel_matches_lu_on_random_ladders(
        stages in 1usize..4,
        r_pkg in 1e-3..0.1f64,
        l_pkg in 1e-12..1e-10f64,
        r_die in 1e-3..0.5f64,
        c_die in 1e-9..1e-7f64,
        v_s in 0.5..1.5f64,
        amp in 0.1..2.0f64,
        freq in 2e7..2e8f64,
        phase in 0.0..1.0f64,
    ) {
        use emvolt_circuit::{KernelChoice, TransientProbes, TransientScratch};

        let mut c = Circuit::new();
        let vrm = c.node("vrm");
        c.voltage_source(vrm, NodeId::GROUND, Stimulus::Dc(v_s)).unwrap();
        let mut prev = vrm;
        let mut die = vrm;
        for s in 0..stages {
            let a = c.node(format!("a{s}"));
            let b = c.node(format!("b{s}"));
            c.resistor(prev, a, r_pkg * (1.0 + s as f64 * 0.3)).unwrap();
            c.inductor(a, b, l_pkg * (1.0 + s as f64 * 0.5)).unwrap();
            c.resistor(b, NodeId::GROUND, 1e5).unwrap();
            let cn = c.node(format!("c{s}"));
            c.resistor(b, cn, r_die).unwrap();
            c.capacitor(cn, NodeId::GROUND, c_die).unwrap();
            prev = b;
            die = b;
        }
        c.current_source(die, NodeId::GROUND, Stimulus::Sine {
            offset: amp * 0.5, amplitude: amp, freq, phase,
        }).unwrap();

        let dt = 0.5e-9;
        let cfg = TransientConfig::new(dt, 1500.0 * dt).with_warmup(500.0 * dt);
        let probes = TransientProbes::none().with_node(die);

        let plan_lu = c.plan_transient_kernel(dt, KernelChoice::Lu).unwrap();
        let plan_ss = c.plan_transient_kernel(dt, KernelChoice::StateSpace).unwrap();
        prop_assert!(!plan_lu.uses_state_kernel());
        prop_assert!(plan_ss.uses_state_kernel());

        let mut s_lu = TransientScratch::new();
        let mut s_ss = TransientScratch::new();
        let v_lu = {
            let view = c.transient_scoped(&plan_lu, &cfg, &probes, &mut s_lu).unwrap();
            view.voltage_samples(die).to_vec()
        };
        let view = c.transient_scoped(&plan_ss, &cfg, &probes, &mut s_ss).unwrap();
        let v_ss = view.voltage_samples(die);

        prop_assert_eq!(v_lu.len(), v_ss.len());
        let scale = v_lu.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-9);
        for (i, (a, b)) in v_lu.iter().zip(v_ss).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-8 * scale,
                "sample {}: lu={}, statespace={}", i, a, b
            );
        }
    }

    /// The lane-major SoA batch fold must reproduce serial state-space
    /// runs `to_bits`-identically on random PDN-style ladders, for lane
    /// counts exercising the 8/4/scalar lane blocks — the contract that
    /// lets GA generations evaluate in lanes without changing fitness.
    #[test]
    fn batched_soa_fold_matches_serial_state_space_on_random_ladders(
        stages in 1usize..4,
        r_pkg in 1e-3..0.1f64,
        l_pkg in 1e-12..1e-10f64,
        c_die in 1e-9..1e-7f64,
        v_s in 0.5..1.5f64,
        amp in 0.1..2.0f64,
        freq in 2e7..2e8f64,
        n_lanes in 1usize..10,
    ) {
        use emvolt_circuit::{
            BatchTransientScratch, KernelChoice, TransientProbes, TransientScratch,
        };

        let mut c = Circuit::new();
        let vrm = c.node("vrm");
        c.voltage_source(vrm, NodeId::GROUND, Stimulus::Dc(v_s)).unwrap();
        let mut prev = vrm;
        let mut die = vrm;
        for s in 0..stages {
            let a = c.node(format!("a{s}"));
            let b = c.node(format!("b{s}"));
            c.resistor(prev, a, r_pkg * (1.0 + s as f64 * 0.3)).unwrap();
            c.inductor(a, b, l_pkg * (1.0 + s as f64 * 0.5)).unwrap();
            let cn = c.node(format!("c{s}"));
            c.resistor(b, cn, 0.05).unwrap();
            c.capacitor(cn, NodeId::GROUND, c_die).unwrap();
            prev = b;
            die = b;
        }
        let load = c.current_source(die, NodeId::GROUND, Stimulus::Dc(0.0)).unwrap();

        let loads: Vec<Stimulus> = (0..n_lanes)
            .map(|l| Stimulus::Sine {
                offset: amp * 0.5,
                amplitude: amp * (1.0 + l as f64 * 0.1),
                freq: freq * (1.0 + l as f64 * 0.05),
                phase: l as f64 * 0.2,
            })
            .collect();

        let dt = 0.5e-9;
        let cfg = TransientConfig::new(dt, 600.0 * dt).with_warmup(200.0 * dt);
        let probes = TransientProbes::none().with_node(die);
        let plan = c.plan_transient_kernel(dt, KernelChoice::StateSpace).unwrap();

        let mut batch = BatchTransientScratch::new();
        c.transient_batch_scoped(&plan, &cfg, &probes, load, &loads, &mut batch).unwrap();

        let mut single = TransientScratch::new();
        for (i, stim) in loads.iter().enumerate() {
            c.set_current_stimulus(load, stim.clone());
            let view = c.transient_scoped(&plan, &cfg, &probes, &mut single).unwrap();
            let lane = batch.lane(i);
            prop_assert_eq!(view.len(), lane.len());
            for (s, (a, b)) in view
                .voltage_samples(die)
                .iter()
                .zip(lane.voltage_samples(die))
                .enumerate()
            {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "lane {} of {} diverged at sample {}", i, n_lanes, s
                );
            }
        }
    }

    /// Stimulus::Pulse is periodic: f(t) == f(t + k*period).
    #[test]
    fn pulse_periodicity(
        period in 1e-9..1e-3f64,
        duty in 0.05..0.95f64,
        t in 0.0..1e-3f64,
        k in 1u32..50,
    ) {
        let s = Stimulus::Pulse { lo: 0.0, hi: 1.0, period, duty, t0: 0.0 };
        let a = s.value_at(t);
        let b = s.value_at(t + k as f64 * period);
        // Floating-point phase wrap can disagree exactly at the edge;
        // tolerate the edge case by re-checking slightly inside.
        if a != b {
            let eps = period * 1e-6;
            prop_assert_eq!(s.value_at(t + eps), s.value_at(t + k as f64 * period + eps));
        }
    }
}
