//! Fixed-step trapezoidal transient analysis.
//!
//! The trapezoidal rule is A-stable and preserves the energy of LC tanks —
//! essential here, because the whole point of the simulation is resonant
//! ringing of the power-delivery network; a dissipative integrator (e.g.
//! backward Euler) would artificially damp the very oscillations the paper
//! measures. The system matrix is constant for a fixed step, so it is
//! LU-factored once and only the right-hand side is rebuilt each step.

use crate::dc::{stamp_branch, stamp_conductance};
use crate::error::{CircuitError, Result};
use crate::linalg::{LuFactors, Matrix};
use crate::netlist::{Circuit, InductorId, NodeId};
use crate::trace::Trace;

/// Configuration for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientConfig {
    /// Integration step in seconds.
    pub dt: f64,
    /// Total simulated duration in seconds.
    pub duration: f64,
    /// Time before which samples are discarded (settling/warm-up). The
    /// returned traces start at this time.
    pub record_from: f64,
}

impl TransientConfig {
    /// Creates a configuration recording the entire run.
    pub fn new(dt: f64, duration: f64) -> Self {
        TransientConfig {
            dt,
            duration,
            record_from: 0.0,
        }
    }

    /// Discards the first `warmup` seconds from the recorded traces.
    #[must_use]
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.record_from = warmup;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.dt.is_nan() || self.dt <= 0.0 || !self.dt.is_finite() {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("non-positive time step {}", self.dt),
            });
        }
        if self.duration.is_nan() || self.duration <= 0.0 || self.duration < self.dt {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("duration {} shorter than one step", self.duration),
            });
        }
        if self.record_from < 0.0 || self.record_from >= self.duration {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("record_from {} outside (0, duration)", self.record_from),
            });
        }
        Ok(())
    }
}

/// Result of a transient analysis: one [`Trace`] per node voltage and per
/// inductor current.
#[derive(Debug, Clone)]
pub struct TransientResult {
    dt: f64,
    t0: f64,
    node_voltages: Vec<Vec<f64>>,
    inductor_currents: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Voltage waveform at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analysed circuit.
    pub fn voltage(&self, node: NodeId) -> Trace {
        Trace::with_start(self.dt, self.t0, self.node_voltages[node.index()].clone())
    }

    /// Current waveform through inductor `id` (positive `a -> b`).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analysed circuit.
    pub fn inductor_current(&self, id: InductorId) -> Trace {
        Trace::with_start(self.dt, self.t0, self.inductor_currents[id.index()].clone())
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.node_voltages.first().map_or(0, Vec::len)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Precomputed constant part of a fixed-step transient analysis: the
/// LU-factored MNA system matrix and the trapezoidal companion
/// conductances for a given step size.
///
/// The system matrix depends only on the netlist topology, element values
/// and the step `dt` — not on stimulus waveforms, which enter through the
/// right-hand side. A plan can therefore be built once and reused across
/// many [`Circuit::transient_with_plan`] calls whose stimuli differ (the
/// hot path of repeated PDN evaluations), skipping the rebuild and
/// refactorization that [`Circuit::transient`] pays on every call.
///
/// A plan is only meaningful for the circuit it was built from; element
/// counts are checked on use so a topology change is caught, but swapping
/// element *values* silently yields results for the old values.
#[derive(Debug, Clone)]
pub struct TransientPlan {
    dt: f64,
    n_nodes: usize,
    n_vs: usize,
    lu: LuFactors<f64>,
    cap_g: Vec<f64>,
    ind_g: Vec<f64>,
    n_resistors: usize,
}

impl TransientPlan {
    /// The step size this plan was factored for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    fn check_compatible(&self, circuit: &Circuit, config: &TransientConfig) -> Result<()> {
        if config.dt != self.dt {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!(
                    "transient plan was built for dt {} but config uses dt {}",
                    self.dt, config.dt
                ),
            });
        }
        let same_shape = self.n_nodes == circuit.node_count() - 1
            && self.n_vs == circuit.vsources.len()
            && self.cap_g.len() == circuit.capacitors.len()
            && self.ind_g.len() == circuit.inductors.len()
            && self.n_resistors == circuit.resistors.len();
        if !same_shape {
            return Err(CircuitError::InvalidAnalysis {
                reason: "transient plan does not match circuit topology".to_string(),
            });
        }
        Ok(())
    }
}

impl Circuit {
    /// Builds the reusable constant part of a transient analysis for step
    /// `dt`: stamps the MNA system matrix and LU-factors it once.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn plan_transient(&self, dt: f64) -> Result<TransientPlan> {
        if dt.is_nan() || dt <= 0.0 || !dt.is_finite() {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("non-positive time step {dt}"),
            });
        }
        let n_nodes = self.node_count() - 1;
        let n_vs = self.vsources.len();
        let dim = n_nodes + n_vs;
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        let mut g = Matrix::<f64>::zeros(dim);
        for r in &self.resistors {
            stamp_conductance(&mut g, row(r.a), row(r.b), 1.0 / r.ohms);
        }
        // Trapezoidal companion conductances.
        let cap_g: Vec<f64> = self
            .capacitors
            .iter()
            .map(|c| 2.0 * c.farads / dt)
            .collect();
        for (c, &gc) in self.capacitors.iter().zip(cap_g.iter()) {
            stamp_conductance(&mut g, row(c.a), row(c.b), gc);
        }
        let ind_g: Vec<f64> = self
            .inductors
            .iter()
            .map(|l| dt / (2.0 * l.henries))
            .collect();
        for (l, &gl) in self.inductors.iter().zip(ind_g.iter()) {
            stamp_conductance(&mut g, row(l.a), row(l.b), gl);
        }
        for (k, vs) in self.vsources.iter().enumerate() {
            stamp_branch(&mut g, row(vs.pos), row(vs.neg), n_nodes + k);
        }
        let lu = g.lu()?;

        Ok(TransientPlan {
            dt,
            n_nodes,
            n_vs,
            lu,
            cap_g,
            ind_g,
            n_resistors: self.resistors.len(),
        })
    }

    /// Runs a trapezoidal transient analysis starting from the DC operating
    /// point.
    ///
    /// Builds a throwaway [`TransientPlan`] internally; callers running the
    /// same circuit repeatedly should build one with
    /// [`Circuit::plan_transient`] and use
    /// [`Circuit::transient_with_plan`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn transient(&self, config: &TransientConfig) -> Result<TransientResult> {
        config.validate()?;
        let plan = self.plan_transient(config.dt)?;
        self.transient_with_plan(&plan, config)
    }

    /// Runs a trapezoidal transient analysis reusing a prebuilt
    /// [`TransientPlan`] (no matrix stamping or LU refactorization).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations, a plan built for a
    /// different step size or topology, or an ill-posed DC operating point.
    pub fn transient_with_plan(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
    ) -> Result<TransientResult> {
        config.validate()?;
        plan.check_compatible(self, config)?;
        let h = config.dt;
        let n_nodes = plan.n_nodes;
        let n_vs = plan.n_vs;
        let dim = n_nodes + n_vs;
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };
        let lu = &plan.lu;
        let cap_g = &plan.cap_g;
        let ind_g = &plan.ind_g;

        // --- Initial conditions from the DC operating point --------------
        let op = self.dc_operating_point()?;
        let mut v: Vec<f64> = op.node_voltages.clone(); // indexed by raw node id
                                                        // Capacitor state: (voltage across, current through).
        let mut cap_v: Vec<f64> = self.capacitors.iter().map(|c| v[c.a] - v[c.b]).collect();
        let mut cap_i: Vec<f64> = vec![0.0; self.capacitors.len()];
        let mut ind_i: Vec<f64> = op.inductor_currents.clone();
        let mut ind_v: Vec<f64> = vec![0.0; self.inductors.len()];

        let n_steps = (config.duration / h).round() as usize;
        let record_start_idx = (config.record_from / h).ceil() as usize;
        let capacity = n_steps.saturating_sub(record_start_idx) + 1;

        let mut node_voltages: Vec<Vec<f64>> =
            vec![Vec::with_capacity(capacity); self.node_count()];
        let mut inductor_currents: Vec<Vec<f64>> =
            vec![Vec::with_capacity(capacity); self.inductors.len()];

        let record = |v: &[f64],
                      ind_i: &[f64],
                      node_voltages: &mut Vec<Vec<f64>>,
                      inductor_currents: &mut Vec<Vec<f64>>| {
            for (store, &val) in node_voltages.iter_mut().zip(v.iter()) {
                store.push(val);
            }
            for (store, &val) in inductor_currents.iter_mut().zip(ind_i.iter()) {
                store.push(val);
            }
        };

        if record_start_idx == 0 {
            record(&v, &ind_i, &mut node_voltages, &mut inductor_currents);
        }

        let mut b = vec![0.0; dim];
        for step in 1..=n_steps {
            let t_next = step as f64 * h;
            b.iter_mut().for_each(|x| *x = 0.0);

            // Capacitor history sources: i_{n+1} = g*v_{n+1} - (g*v_n + i_n).
            for ((c, &gc), (&vc, &ic)) in self
                .capacitors
                .iter()
                .zip(cap_g)
                .zip(cap_v.iter().zip(cap_i.iter()))
            {
                let hist = gc * vc + ic;
                if let Some(a) = row(c.a) {
                    b[a] += hist;
                }
                if let Some(bb) = row(c.b) {
                    b[bb] -= hist;
                }
            }
            // Inductor history sources: i_{n+1} = g*v_{n+1} + (i_n + g*v_n).
            for ((l, &gl), (&vl, &il)) in self
                .inductors
                .iter()
                .zip(ind_g)
                .zip(ind_v.iter().zip(ind_i.iter()))
            {
                let hist = il + gl * vl;
                if let Some(a) = row(l.a) {
                    b[a] -= hist;
                }
                if let Some(bb) = row(l.b) {
                    b[bb] += hist;
                }
            }
            // Independent sources evaluated at the new time point.
            for is in &self.isources {
                let i = is.stimulus.value_at(t_next);
                if let Some(rf) = row(is.from) {
                    b[rf] -= i;
                }
                if let Some(rt) = row(is.to) {
                    b[rt] += i;
                }
            }
            for (k, vs) in self.vsources.iter().enumerate() {
                b[n_nodes + k] = vs.stimulus.value_at(t_next);
            }

            let x = lu.solve(&b);
            v[1..=n_nodes].copy_from_slice(&x[..n_nodes]);

            // Update element states.
            for (k, (c, &gc)) in self.capacitors.iter().zip(cap_g).enumerate() {
                let vc_new = v[c.a] - v[c.b];
                let hist = gc * cap_v[k] + cap_i[k];
                cap_i[k] = gc * vc_new - hist;
                cap_v[k] = vc_new;
            }
            for (k, (l, &gl)) in self.inductors.iter().zip(ind_g).enumerate() {
                let vl_new = v[l.a] - v[l.b];
                let hist = ind_i[k] + gl * ind_v[k];
                ind_i[k] = gl * vl_new + hist;
                ind_v[k] = vl_new;
            }

            if step >= record_start_idx {
                record(&v, &ind_i, &mut node_voltages, &mut inductor_currents);
            }
        }

        Ok(TransientResult {
            dt: h,
            t0: record_start_idx as f64 * h,
            node_voltages,
            inductor_currents,
        })
    }
}

/// Convenience re-exports for transient consumers.
pub use crate::trace::Trace as TransientTrace;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;

    /// RC charge curve: v(t) = V*(1 - exp(-t/RC)).
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1_000.0;
        let cap = 1e-9;
        let tau = r * cap;
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(
            vin,
            NodeId::GROUND,
            Stimulus::Step {
                t0: 0.0,
                before: 0.0,
                after: 1.0,
            },
        )
        .unwrap();
        c.resistor(vin, out, r).unwrap();
        c.capacitor(out, NodeId::GROUND, cap).unwrap();

        let cfg = TransientConfig::new(tau / 200.0, 5.0 * tau);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(out);
        for (t, v) in trace.iter().skip(1) {
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 5e-3,
                "t={t:.3e}: got {v}, expected {expected}"
            );
        }
    }

    /// Undamped LC tank rings at f = 1/(2*pi*sqrt(LC)).
    #[test]
    fn lc_tank_rings_at_resonance() {
        let l: f64 = 50e-12; // 50 pH
        let cap = 100e-9; // 100 nF  => f ~ 71.2 MHz
        let f_expected = 1.0 / (2.0 * std::f64::consts::PI * (l * cap).sqrt());

        let mut c = Circuit::new();
        let n = c.node("tank");
        c.inductor(n, NodeId::GROUND, l).unwrap();
        c.capacitor(n, NodeId::GROUND, cap).unwrap();
        // Small damping resistor so the DC operating point is well-posed.
        c.resistor(n, NodeId::GROUND, 1e6).unwrap();
        // Kick the tank with a current step.
        c.current_source(
            NodeId::GROUND,
            n,
            Stimulus::Step {
                t0: 0.0,
                before: 0.0,
                after: 0.1,
            },
        )
        .unwrap();

        let period = 1.0 / f_expected;
        let cfg = TransientConfig::new(period / 256.0, 20.0 * period);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(n);

        // Count zero crossings of (v - mean) to estimate the frequency.
        let mean = trace.mean();
        let samples = trace.samples();
        let mut crossings = 0usize;
        for w in samples.windows(2) {
            if (w[0] - mean) * (w[1] - mean) < 0.0 {
                crossings += 1;
            }
        }
        let measured_f = crossings as f64 / 2.0 / trace.duration();
        assert!(
            (measured_f - f_expected).abs() / f_expected < 0.02,
            "measured {measured_f:.3e}, expected {f_expected:.3e}"
        );
    }

    /// Trapezoidal integration must not pump energy into a passive network.
    #[test]
    fn damped_rlc_decays() {
        let mut c = Circuit::new();
        let n = c.node("tank");
        let mid = c.node("mid");
        c.inductor(n, mid, 50e-12).unwrap();
        c.resistor(mid, NodeId::GROUND, 0.05).unwrap();
        c.capacitor(n, NodeId::GROUND, 100e-9).unwrap();
        c.resistor(n, NodeId::GROUND, 1e6).unwrap();
        c.current_source(
            NodeId::GROUND,
            n,
            Stimulus::Step {
                t0: 0.0,
                before: 0.0,
                after: 1.0,
            },
        )
        .unwrap();
        let cfg = TransientConfig::new(0.2e-9, 3e-6);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(n);
        let first_half = trace.window(0.0, 1.5e-6);
        let second_half = trace.window(1.5e-6, 3e-6);
        assert!(second_half.peak_to_peak() < first_half.peak_to_peak());
        assert!(trace.max().abs() < 10.0, "unbounded growth detected");
    }

    #[test]
    fn warmup_discards_early_samples() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, NodeId::GROUND, 1.0).unwrap();
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(1.0))
            .unwrap();
        let cfg = TransientConfig::new(1e-9, 100e-9).with_warmup(50e-9);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(n);
        assert!(trace.start_time() >= 50e-9);
        assert!(trace.len() <= 52);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, NodeId::GROUND, 1.0).unwrap();
        assert!(c.transient(&TransientConfig::new(0.0, 1.0)).is_err());
        assert!(c.transient(&TransientConfig::new(1.0, 0.5)).is_err());
        let bad = TransientConfig::new(1e-9, 1e-6).with_warmup(2e-6);
        assert!(c.transient(&bad).is_err());
    }

    /// A reused plan must reproduce `transient` exactly, including across
    /// stimulus swaps (the repeated-evaluation hot path).
    #[test]
    fn plan_reuse_is_bit_identical_across_stimulus_changes() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        c.resistor(vin, out, 1_000.0).unwrap();
        c.capacitor(out, NodeId::GROUND, 1e-9).unwrap();
        let load = c
            .current_source(NodeId::GROUND, out, Stimulus::Dc(0.0))
            .unwrap();

        let cfg = TransientConfig::new(1e-9, 2e-6).with_warmup(0.5e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        for amps in [0.0, 0.3, 1.2] {
            c.set_current_stimulus(load, Stimulus::Dc(amps));
            let fresh = c.transient(&cfg).unwrap();
            let planned = c.transient_with_plan(&plan, &cfg).unwrap();
            assert_eq!(
                fresh.voltage(out).samples(),
                planned.voltage(out).samples(),
                "plan diverged at load {amps}"
            );
        }
    }

    #[test]
    fn plan_rejects_mismatched_dt_and_topology() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, NodeId::GROUND, 1.0).unwrap();
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(1.0))
            .unwrap();
        let plan = c.plan_transient(1e-9).unwrap();
        assert!(c
            .transient_with_plan(&plan, &TransientConfig::new(2e-9, 1e-6))
            .is_err());
        c.capacitor(n, NodeId::GROUND, 1e-9).unwrap();
        assert!(c
            .transient_with_plan(&plan, &TransientConfig::new(1e-9, 1e-6))
            .is_err());
        assert!(c.plan_transient(0.0).is_err());
    }

    #[test]
    fn inductor_current_is_recorded() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        let l = c.inductor(vin, out, 1e-9).unwrap();
        c.resistor(out, NodeId::GROUND, 1.0).unwrap();
        let cfg = TransientConfig::new(0.05e-9, 50e-9);
        let res = c.transient(&cfg).unwrap();
        let i = res.inductor_current(l);
        // Settles to 1 A through the 1 ohm resistor.
        let tail = i.window(40e-9, 50e-9);
        assert!((tail.mean() - 1.0).abs() < 1e-3);
    }
}
