//! Fixed-step trapezoidal transient analysis.
//!
//! The trapezoidal rule is A-stable and preserves the energy of LC tanks —
//! essential here, because the whole point of the simulation is resonant
//! ringing of the power-delivery network; a dissipative integrator (e.g.
//! backward Euler) would artificially damp the very oscillations the paper
//! measures. The system matrix is constant for a fixed step, so it is
//! LU-factored once and only the right-hand side is rebuilt each step.

use crate::dc::{stamp_branch, stamp_conductance, DcPlan};
use crate::error::{CircuitError, Result};
use crate::kernel::{KernelChoice, StateKernel};
use crate::linalg::{LuFactors, Matrix};
use crate::netlist::{Circuit, ISourceId, InductorId, NodeId};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use emvolt_obs::{CounterId, Layer, Telemetry, WaveKind};

/// Configuration for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientConfig {
    /// Integration step in seconds.
    pub dt: f64,
    /// Total simulated duration in seconds.
    pub duration: f64,
    /// Time before which samples are discarded (settling/warm-up). The
    /// returned traces start at this time.
    pub record_from: f64,
}

impl TransientConfig {
    /// Creates a configuration recording the entire run.
    pub fn new(dt: f64, duration: f64) -> Self {
        TransientConfig {
            dt,
            duration,
            record_from: 0.0,
        }
    }

    /// Discards the first `warmup` seconds from the recorded traces.
    #[must_use]
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.record_from = warmup;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.dt.is_nan() || self.dt <= 0.0 || !self.dt.is_finite() {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("non-positive time step {}", self.dt),
            });
        }
        if self.duration.is_nan() || self.duration <= 0.0 || self.duration < self.dt {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("duration {} shorter than one step", self.duration),
            });
        }
        if self.record_from < 0.0 || self.record_from >= self.duration {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("record_from {} outside [0, duration)", self.record_from),
            });
        }
        Ok(())
    }
}

/// Result of a transient analysis: one recorded waveform per probed node
/// voltage and inductor current (all of them by default).
#[derive(Debug, Clone)]
pub struct TransientResult {
    dt: f64,
    t0: f64,
    len: usize,
    node_slots: Vec<usize>,
    ind_slots: Vec<usize>,
    node_voltages: Vec<Vec<f64>>,
    inductor_currents: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Voltage waveform at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node was not recorded by this analysis.
    pub fn voltage(&self, node: NodeId) -> Trace {
        Trace::with_start(self.dt, self.t0, self.voltage_samples(node).to_vec())
    }

    /// Borrowed voltage samples at `node` — no copy, unlike
    /// [`TransientResult::voltage`].
    ///
    /// # Panics
    ///
    /// Panics if the node was not recorded by this analysis.
    pub fn voltage_samples(&self, node: NodeId) -> &[f64] {
        let slot = self
            .node_slots
            .iter()
            .position(|&i| i == node.index())
            .expect("node was not recorded by this transient analysis");
        &self.node_voltages[slot]
    }

    /// Current waveform through inductor `id` (positive `a -> b`).
    ///
    /// # Panics
    ///
    /// Panics if the inductor was not recorded by this analysis.
    pub fn inductor_current(&self, id: InductorId) -> Trace {
        Trace::with_start(self.dt, self.t0, self.inductor_current_samples(id).to_vec())
    }

    /// Borrowed current samples through inductor `id` — no copy, unlike
    /// [`TransientResult::inductor_current`].
    ///
    /// # Panics
    ///
    /// Panics if the inductor was not recorded by this analysis.
    pub fn inductor_current_samples(&self, id: InductorId) -> &[f64] {
        let slot = self
            .ind_slots
            .iter()
            .position(|&i| i == id.index())
            .expect("inductor was not recorded by this transient analysis");
        &self.inductor_currents[slot]
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Selects which waveforms a transient run records.
///
/// The default ([`TransientProbes::all`]) records every node voltage —
/// including ground — and every inductor current, matching the historic
/// behaviour of [`Circuit::transient_with_plan`]. A scoped selection
/// records only the requested waveforms, skipping the per-step stores
/// for everything the caller never reads; adding the first explicit
/// probe switches the corresponding category from "everything" to "only
/// the listed ones".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransientProbes {
    nodes: Option<Vec<NodeId>>,
    inductors: Option<Vec<InductorId>>,
    /// Waveform-trace signal names per probed node / inductor index.
    /// Unlabeled probes fall back to generic `circuit.*` names when a
    /// wave-enabled telemetry handle is attached to the run's scratch.
    node_labels: Vec<(usize, String)>,
    ind_labels: Vec<(usize, String)>,
}

impl TransientProbes {
    /// Records everything: all node voltages (including ground) and all
    /// inductor currents.
    pub fn all() -> Self {
        TransientProbes::default()
    }

    /// Records nothing until probes are added with
    /// [`TransientProbes::with_node`] / [`TransientProbes::with_inductor`].
    pub fn none() -> Self {
        TransientProbes {
            nodes: Some(Vec::new()),
            inductors: Some(Vec::new()),
            node_labels: Vec::new(),
            ind_labels: Vec::new(),
        }
    }

    /// Adds a node-voltage probe (restricting the node selection to the
    /// explicitly listed nodes).
    #[must_use]
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.nodes.get_or_insert_with(Vec::new).push(node);
        self
    }

    /// Adds an inductor-current probe (restricting the inductor selection
    /// to the explicitly listed inductors).
    #[must_use]
    pub fn with_inductor(mut self, id: InductorId) -> Self {
        self.inductors.get_or_insert_with(Vec::new).push(id);
        self
    }

    /// Like [`TransientProbes::with_node`], additionally naming the
    /// probe's waveform-trace signal (e.g. `pdn.v_die`) instead of the
    /// generic `circuit.n<i>.v` fallback.
    #[must_use]
    pub fn with_node_labeled(mut self, node: NodeId, label: impl Into<String>) -> Self {
        self.node_labels.push((node.index(), label.into()));
        self.with_node(node)
    }

    /// Like [`TransientProbes::with_inductor`], additionally naming the
    /// probe's waveform-trace signal (e.g. `pdn.i_pkg`) instead of the
    /// generic `circuit.l<i>.i` fallback.
    #[must_use]
    pub fn with_inductor_labeled(mut self, id: InductorId, label: impl Into<String>) -> Self {
        self.ind_labels.push((id.index(), label.into()));
        self.with_inductor(id)
    }

    fn node_label(&self, node_index: usize) -> Option<&str> {
        self.node_labels
            .iter()
            .find(|(i, _)| *i == node_index)
            .map(|(_, l)| l.as_str())
    }

    fn ind_label(&self, ind_index: usize) -> Option<&str> {
        self.ind_labels
            .iter()
            .find(|(i, _)| *i == ind_index)
            .map(|(_, l)| l.as_str())
    }
}

/// Reusable working memory for transient runs: solver vectors, element
/// state and recorded-output buffers.
///
/// A scratch checked out across repeated [`Circuit::transient_scoped`]
/// calls makes the steady-state evaluation path allocation-free — every
/// buffer is cleared and refilled in place, keeping its capacity. The
/// scratch carries no results of its own; a [`TransientView`] borrows it
/// to expose the recorded samples, which the next run overwrites.
///
/// Buffer contents never leak between runs: everything the engine reads
/// is re-derived from the circuit, plan and stimulus before the step
/// loop starts.
#[derive(Debug, Clone, Default)]
pub struct TransientScratch {
    b: Vec<f64>,
    x: Vec<f64>,
    dc_b: Vec<f64>,
    dc_x: Vec<f64>,
    v: Vec<f64>,
    cap_v: Vec<f64>,
    cap_i: Vec<f64>,
    ind_i: Vec<f64>,
    ind_v: Vec<f64>,
    inputs: Vec<f64>,
    /// `[node_a, node_b]` row pairs per capacitor / inductor, the gather
    /// tables the dispatched companion-update kernels index node state
    /// with. Rebuilt each run in the setup (node counts fit `u32` by
    /// construction).
    cap_rows: Vec<[u32; 2]>,
    ind_rows: Vec<[u32; 2]>,
    node_slots: Vec<usize>,
    ind_slots: Vec<usize>,
    node_bufs: Vec<Vec<f64>>,
    ind_bufs: Vec<Vec<f64>>,
    dt: f64,
    t0: f64,
    len: usize,
    telemetry: Telemetry,
}

impl TransientScratch {
    /// Creates an empty scratch; buffers are sized on first use and
    /// reused afterwards.
    pub fn new() -> Self {
        TransientScratch::default()
    }

    /// Attaches a telemetry handle; every run through this scratch then
    /// charges solver counters and (for emitting handles) a
    /// `transient_solve` span. The default handle is inert.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// Borrowing view over the waveforms recorded by
/// [`Circuit::transient_scoped`].
///
/// The samples live inside the [`TransientScratch`] the run was given;
/// copy out (e.g. via [`TransientView::voltage`]) anything that must
/// outlive the next run reusing that scratch.
#[derive(Debug)]
pub struct TransientView<'a> {
    scratch: &'a TransientScratch,
}

impl TransientView<'_> {
    /// Integration step of the recorded samples.
    pub fn dt(&self) -> f64 {
        self.scratch.dt
    }

    /// Time of the first recorded sample.
    pub fn start_time(&self) -> f64 {
        self.scratch.t0
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.scratch.len
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.scratch.len == 0
    }

    /// Borrowed voltage samples at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node was not probed by this run.
    pub fn voltage_samples(&self, node: NodeId) -> &[f64] {
        let slot = self
            .scratch
            .node_slots
            .iter()
            .position(|&i| i == node.index())
            .expect("node was not probed by this transient run");
        &self.scratch.node_bufs[slot]
    }

    /// Borrowed current samples through inductor `id` (positive `a -> b`).
    ///
    /// # Panics
    ///
    /// Panics if the inductor was not probed by this run.
    pub fn inductor_current_samples(&self, id: InductorId) -> &[f64] {
        let slot = self
            .scratch
            .ind_slots
            .iter()
            .position(|&i| i == id.index())
            .expect("inductor was not probed by this transient run");
        &self.scratch.ind_bufs[slot]
    }

    /// Owned voltage trace at `node` (copies the samples out of the
    /// scratch).
    ///
    /// # Panics
    ///
    /// Panics if the node was not probed by this run.
    pub fn voltage(&self, node: NodeId) -> Trace {
        Trace::with_start(
            self.scratch.dt,
            self.scratch.t0,
            self.voltage_samples(node).to_vec(),
        )
    }

    /// Owned current trace through inductor `id` (copies the samples out
    /// of the scratch).
    ///
    /// # Panics
    ///
    /// Panics if the inductor was not probed by this run.
    pub fn inductor_current(&self, id: InductorId) -> Trace {
        Trace::with_start(
            self.scratch.dt,
            self.scratch.t0,
            self.inductor_current_samples(id).to_vec(),
        )
    }
}

/// Clears and re-zeroes a buffer in place, keeping its capacity.
fn resize_zeroed(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

/// Precomputed constant part of a fixed-step transient analysis: the
/// LU-factored MNA system matrix and the trapezoidal companion
/// conductances for a given step size.
///
/// The system matrix depends only on the netlist topology, element values
/// and the step `dt` — not on stimulus waveforms, which enter through the
/// right-hand side. A plan can therefore be built once and reused across
/// many [`Circuit::transient_with_plan`] calls whose stimuli differ (the
/// hot path of repeated PDN evaluations), skipping the rebuild and
/// refactorization that [`Circuit::transient`] pays on every call.
///
/// A plan is only meaningful for the circuit it was built from; element
/// counts are checked on use so a topology change is caught, but swapping
/// element *values* silently yields results for the old values.
#[derive(Debug, Clone)]
pub struct TransientPlan {
    dt: f64,
    n_nodes: usize,
    n_vs: usize,
    lu: LuFactors<f64>,
    /// Pre-factored DC system for the operating-point solve that seeds
    /// every run. The DC matrix is stimulus-independent (only its
    /// right-hand side changes), so it is factored once with the
    /// transient matrix instead of from scratch on every run.
    dc: DcPlan,
    cap_g: Vec<f64>,
    ind_g: Vec<f64>,
    n_resistors: usize,
    /// Precomputed state-update kernel, present when the
    /// [`KernelChoice`] the plan was built with resolves to the
    /// state-space path for this system size.
    state: Option<StateKernel>,
}

impl TransientPlan {
    /// The step size this plan was factored for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// `true` when runs through this plan use the precomputed
    /// state-space kernel instead of per-step LU substitution.
    pub fn uses_state_kernel(&self) -> bool {
        self.state.is_some()
    }

    fn check_compatible(&self, circuit: &Circuit, config: &TransientConfig) -> Result<()> {
        if config.dt != self.dt {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!(
                    "transient plan was built for dt {} but config uses dt {}",
                    self.dt, config.dt
                ),
            });
        }
        let same_shape = self.n_nodes == circuit.node_count() - 1
            && self.n_vs == circuit.vsources.len()
            && self.cap_g.len() == circuit.capacitors.len()
            && self.ind_g.len() == circuit.inductors.len()
            && self.n_resistors == circuit.resistors.len();
        if !same_shape {
            return Err(CircuitError::InvalidAnalysis {
                reason: "transient plan does not match circuit topology".to_string(),
            });
        }
        Ok(())
    }
}

impl Circuit {
    /// Builds the reusable constant part of a transient analysis for step
    /// `dt`: stamps the MNA system matrix and LU-factors it once, with
    /// the default kernel selection ([`KernelChoice::Auto`]).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn plan_transient(&self, dt: f64) -> Result<TransientPlan> {
        self.plan_transient_kernel(dt, KernelChoice::default())
    }

    /// Like [`Circuit::plan_transient`], with an explicit per-step
    /// [`KernelChoice`]. [`KernelChoice::Lu`] reproduces the historic
    /// forward/backward-substitution path bit-for-bit;
    /// [`KernelChoice::StateSpace`] embeds the precomputed state-update
    /// kernel (same math, different summation order — see DESIGN.md §9).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn plan_transient_kernel(&self, dt: f64, kernel: KernelChoice) -> Result<TransientPlan> {
        if dt.is_nan() || dt <= 0.0 || !dt.is_finite() {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("non-positive time step {dt}"),
            });
        }
        let n_nodes = self.node_count() - 1;
        let n_vs = self.vsources.len();
        let dim = n_nodes + n_vs;
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        let mut g = Matrix::<f64>::zeros(dim);
        for r in &self.resistors {
            stamp_conductance(&mut g, row(r.a), row(r.b), 1.0 / r.ohms);
        }
        // Trapezoidal companion conductances.
        let cap_g: Vec<f64> = self
            .capacitors
            .iter()
            .map(|c| 2.0 * c.farads / dt)
            .collect();
        for (c, &gc) in self.capacitors.iter().zip(cap_g.iter()) {
            stamp_conductance(&mut g, row(c.a), row(c.b), gc);
        }
        let ind_g: Vec<f64> = self
            .inductors
            .iter()
            .map(|l| dt / (2.0 * l.henries))
            .collect();
        for (l, &gl) in self.inductors.iter().zip(ind_g.iter()) {
            stamp_conductance(&mut g, row(l.a), row(l.b), gl);
        }
        for (k, vs) in self.vsources.iter().enumerate() {
            stamp_branch(&mut g, row(vs.pos), row(vs.neg), n_nodes + k);
        }
        let lu = g.lu()?;
        let dc = self.plan_dc()?;
        let state = kernel
            .picks_state_space(dim)
            .then(|| StateKernel::build(self, &lu, n_nodes));

        Ok(TransientPlan {
            dt,
            n_nodes,
            n_vs,
            lu,
            dc,
            cap_g,
            ind_g,
            n_resistors: self.resistors.len(),
            state,
        })
    }

    /// Like [`Circuit::plan_transient`], additionally charging the two LU
    /// factorizations it performs (transient system matrix + DC operating
    /// point) to `telemetry`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn plan_transient_with(&self, dt: f64, telemetry: &Telemetry) -> Result<TransientPlan> {
        self.plan_transient_kernel_with(dt, KernelChoice::default(), telemetry)
    }

    /// Like [`Circuit::plan_transient_kernel`], additionally charging the
    /// two LU factorizations it performs to `telemetry`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn plan_transient_kernel_with(
        &self,
        dt: f64,
        kernel: KernelChoice,
        telemetry: &Telemetry,
    ) -> Result<TransientPlan> {
        let plan = self.plan_transient_kernel(dt, kernel)?;
        telemetry.count(CounterId::LuFactorizations, 2);
        Ok(plan)
    }

    /// Runs a trapezoidal transient analysis starting from the DC operating
    /// point.
    ///
    /// Builds a throwaway [`TransientPlan`] internally; callers running the
    /// same circuit repeatedly should build one with
    /// [`Circuit::plan_transient`] and use
    /// [`Circuit::transient_with_plan`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations or an ill-posed netlist
    /// (singular MNA matrix).
    pub fn transient(&self, config: &TransientConfig) -> Result<TransientResult> {
        config.validate()?;
        let plan = self.plan_transient(config.dt)?;
        self.transient_with_plan(&plan, config)
    }

    /// Runs a trapezoidal transient analysis reusing a prebuilt
    /// [`TransientPlan`] (no matrix stamping or LU refactorization),
    /// recording every node voltage and inductor current.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations or a plan built for a
    /// different step size or topology.
    pub fn transient_with_plan(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
    ) -> Result<TransientResult> {
        let mut scratch = TransientScratch::new();
        self.transient_into(plan, config, &TransientProbes::all(), &mut scratch)?;
        Ok(TransientResult {
            dt: scratch.dt,
            t0: scratch.t0,
            len: scratch.len,
            node_slots: scratch.node_slots,
            ind_slots: scratch.ind_slots,
            node_voltages: scratch.node_bufs,
            inductor_currents: scratch.ind_bufs,
        })
    }

    /// Runs a trapezoidal transient analysis reusing a prebuilt
    /// [`TransientPlan`] and a caller-owned [`TransientScratch`],
    /// recording only the waveforms selected by `probes`.
    ///
    /// This is the allocation-free hot path: at steady state (scratch
    /// reused across runs of the same circuit shape) no heap allocation
    /// happens anywhere in the run, and the step loop performs none by
    /// construction. Results are bit-identical to
    /// [`Circuit::transient_with_plan`] for the probed waveforms.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations, a plan built for a
    /// different step size or topology, or probes that do not belong to
    /// this circuit.
    pub fn transient_scoped<'s>(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
        probes: &TransientProbes,
        scratch: &'s mut TransientScratch,
    ) -> Result<TransientView<'s>> {
        self.transient_into(plan, config, probes, scratch)?;
        Ok(TransientView { scratch })
    }

    /// The transient engine: integrates into `scratch`, reusing every
    /// buffer it holds. All public single-stimulus transient entry points
    /// funnel here; the batched path shares the same setup and step
    /// bodies via [`Circuit::transient_setup`] and
    /// [`Circuit::state_space_step`].
    fn transient_into(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
        probes: &TransientProbes,
        scratch: &mut TransientScratch,
    ) -> Result<()> {
        let sched = self.transient_setup(plan, config, probes, scratch, None)?;
        match &plan.state {
            Some(kernel) => {
                for step in 1..=sched.n_steps {
                    self.state_space_step(
                        plan,
                        kernel,
                        step,
                        sched.record_start_idx,
                        None,
                        scratch,
                    );
                }
            }
            None => self.lu_steps(plan, &sched, scratch),
        }
        let recorded = scratch.len;

        let tel = &scratch.telemetry;
        tel.count(CounterId::TransientRuns, 1);
        tel.count(CounterId::SolverSteps, sched.n_steps as u64);
        tel.span(
            "transient_solve",
            Layer::Circuit,
            &[
                ("steps", sched.n_steps as f64),
                ("dim", (plan.n_nodes + plan.n_vs) as f64),
                ("recorded", recorded as f64),
            ],
        );
        emit_probe_waves(scratch, probes, None);

        Ok(())
    }

    /// Steps a population of independent load stimuli through the plan's
    /// state-space kernel together, one scratch lane per stimulus.
    ///
    /// Every lane simulates this circuit with current source `source`
    /// driven by the corresponding entry of `loads` (the netlist itself is
    /// not mutated), advancing all lanes in lock-step so the kernel's
    /// response columns stay hot in cache across the whole batch. Each
    /// lane's arithmetic is exactly the single-run state-space sequence,
    /// so lane `i` is bit-identical to setting `loads[i]` on `source` and
    /// running [`Circuit::transient_scoped`] with the same plan.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations, a plan built for a
    /// different step size or topology, probes that do not belong to this
    /// circuit, an empty `loads`, a `source` outside the circuit, or a
    /// plan without the state-space kernel (built with
    /// [`KernelChoice::Lu`], or [`KernelChoice::Auto`] on a system too
    /// large for it).
    pub fn transient_batch_scoped(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
        probes: &TransientProbes,
        source: ISourceId,
        loads: &[Stimulus],
        batch: &mut BatchTransientScratch,
    ) -> Result<()> {
        let kernel = plan
            .state
            .as_ref()
            .ok_or_else(|| CircuitError::InvalidAnalysis {
                reason: format!(
                    "batched transient requires the state-space kernel, but this plan was \
                     built LU-only; rebuild it with KernelChoice::StateSpace (`--kernel \
                     statespace` on the CLI), or with KernelChoice::Auto (`--kernel auto`), \
                     which embeds the state-space kernel only for MNA dimensions <= {}",
                    KernelChoice::AUTO_DIM_LIMIT
                ),
            })?;
        if source.index() >= self.isources.len() {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("batched source {} outside circuit", source.index()),
            });
        }
        if loads.is_empty() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "batched transient needs at least one load stimulus".to_string(),
            });
        }

        batch.lanes.resize_with(loads.len(), TransientScratch::new);
        let mut sched = StepSchedule {
            n_steps: 0,
            record_start_idx: 0,
        };
        for (lane, load) in batch.lanes.iter_mut().zip(loads) {
            sched =
                self.transient_setup(plan, config, probes, lane, Some((source.index(), load)))?;
        }

        // Lane-major SoA step loop, run in monomorphized groups of at
        // most eight lanes. Within a group every per-step stage — the
        // input gather (capacitor/inductor histories), the response-
        // column fold, and the element-state update — operates on
        // lane-contiguous rows of compile-time width, so the stages the
        // serial path can only execute as scalar gathers (element node
        // indices are arbitrary) become straight-line vector code across
        // lanes. Lane-invariant stimuli (every source except the swept
        // load) are sampled once per step and broadcast. Per lane the
        // arithmetic sequence is exactly the single-run state-space
        // sequence, so every lane stays bit-identical to
        // `transient_scoped` with that load.
        let n_lanes = loads.len();
        let BatchTransientScratch {
            lanes,
            lane_inputs,
            lane_state,
            cap_v,
            cap_i,
            ind_v,
            ind_i,
            cap_rows,
            ind_rows,
            ..
        } = batch;
        let mut soa = BatchSoa {
            inputs: lane_inputs,
            state: lane_state,
            cap_v,
            cap_i,
            ind_v,
            ind_i,
            cap_rows,
            ind_rows,
        };
        let mut start = 0;
        while start < n_lanes {
            let width = (n_lanes - start).min(8);
            let group_loads = &loads[start..start + width];
            let group_lanes = &mut lanes[start..start + width];
            let src = source.index();
            match width {
                8 => self.batch_group_steps::<8>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                7 => self.batch_group_steps::<7>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                6 => self.batch_group_steps::<6>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                5 => self.batch_group_steps::<5>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                4 => self.batch_group_steps::<4>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                3 => self.batch_group_steps::<3>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                2 => self.batch_group_steps::<2>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
                _ => self.batch_group_steps::<1>(
                    plan,
                    kernel,
                    &sched,
                    src,
                    group_loads,
                    group_lanes,
                    &mut soa,
                ),
            }
            start += width;
        }

        let tel = &batch.telemetry;
        tel.count(CounterId::TransientRuns, loads.len() as u64);
        tel.count(CounterId::SolverSteps, (sched.n_steps * loads.len()) as u64);
        tel.span(
            "transient_batch",
            Layer::Circuit,
            &[
                ("steps", sched.n_steps as f64),
                ("lanes", loads.len() as f64),
                ("dim", (plan.n_nodes + plan.n_vs) as f64),
            ],
        );
        if tel.wave_enabled() {
            for (i, lane) in batch.lanes.iter().enumerate() {
                // Lane scratches carry quiet handles; route emission
                // through the batch's own (coordinator) handle.
                emit_probe_waves_with(tel, lane, probes, Some(i));
            }
        }

        Ok(())
    }

    /// Everything that happens before the step loop: validation, probe
    /// resolution, the DC operating-point seed (optionally with one
    /// current source's stimulus overridden for a batch lane), element
    /// state initialization and output-buffer recycling. Shared by the
    /// single and batched paths so their setup arithmetic is identical.
    fn transient_setup(
        &self,
        plan: &TransientPlan,
        config: &TransientConfig,
        probes: &TransientProbes,
        scratch: &mut TransientScratch,
        load_override: Option<(usize, &Stimulus)>,
    ) -> Result<StepSchedule> {
        config.validate()?;
        plan.check_compatible(self, config)?;
        let h = config.dt;
        let n_nodes = plan.n_nodes;
        let n_vs = plan.n_vs;
        let dim = n_nodes + n_vs;

        // Resolve probe selections to raw storage indices.
        scratch.node_slots.clear();
        match &probes.nodes {
            None => scratch.node_slots.extend(0..self.node_count()),
            Some(list) => {
                for n in list {
                    if n.index() >= self.node_count() {
                        return Err(CircuitError::InvalidAnalysis {
                            reason: format!("probed node {} outside circuit", n.index()),
                        });
                    }
                    scratch.node_slots.push(n.index());
                }
            }
        }
        scratch.ind_slots.clear();
        match &probes.inductors {
            None => scratch.ind_slots.extend(0..self.inductors.len()),
            Some(list) => {
                for id in list {
                    if id.index() >= self.inductors.len() {
                        return Err(CircuitError::InvalidAnalysis {
                            reason: format!("probed inductor {} outside circuit", id.index()),
                        });
                    }
                    scratch.ind_slots.push(id.index());
                }
            }
        }

        // --- Initial conditions via the plan's cached DC factorization ---
        // Same matrix, same LU, same solve arithmetic as a fresh
        // `dc_operating_point`, so the seeded state is bit-identical.
        let dc_dim = plan.dc.dim();
        resize_zeroed(&mut scratch.dc_b, dc_dim);
        self.dc_rhs_into_with(&mut scratch.dc_b, load_override);
        resize_zeroed(&mut scratch.dc_x, dc_dim);
        plan.dc.lu.solve_into(&scratch.dc_b, &mut scratch.dc_x);

        resize_zeroed(&mut scratch.v, self.node_count());
        scratch.v[1..=n_nodes].copy_from_slice(&scratch.dc_x[..n_nodes]);
        scratch.ind_i.clear();
        scratch
            .ind_i
            .extend_from_slice(&scratch.dc_x[n_nodes + n_vs..]);

        // Node-row tables for the dispatched companion-update kernels.
        scratch.cap_rows.clear();
        scratch
            .cap_rows
            .extend(self.capacitors.iter().map(|c| [c.a as u32, c.b as u32]));
        scratch.ind_rows.clear();
        scratch
            .ind_rows
            .extend(self.inductors.iter().map(|l| [l.a as u32, l.b as u32]));

        let TransientScratch {
            b,
            x,
            v,
            cap_v,
            cap_i,
            ind_i,
            ind_v,
            inputs,
            node_slots,
            ind_slots,
            node_bufs,
            ind_bufs,
            dt,
            t0,
            len,
            ..
        } = scratch;

        // Capacitor state: (voltage across, current through).
        cap_v.clear();
        cap_v.extend(self.capacitors.iter().map(|c| v[c.a] - v[c.b]));
        resize_zeroed(cap_i, self.capacitors.len());
        resize_zeroed(ind_v, self.inductors.len());
        resize_zeroed(b, dim);
        resize_zeroed(x, dim);
        resize_zeroed(inputs, plan.state.as_ref().map_or(0, |k| k.n_inputs()));

        let n_steps = (config.duration / h).round() as usize;
        let record_start_idx = (config.record_from / h).ceil() as usize;
        let capacity = n_steps.saturating_sub(record_start_idx) + 1;

        // Recycle output buffers: the outer list is resized to the probe
        // count; inner sample buffers keep their capacity across runs.
        node_bufs.resize_with(node_slots.len(), Vec::new);
        for buf in node_bufs.iter_mut() {
            buf.clear();
            buf.reserve(capacity);
        }
        ind_bufs.resize_with(ind_slots.len(), Vec::new);
        for buf in ind_bufs.iter_mut() {
            buf.clear();
            buf.reserve(capacity);
        }

        *dt = h;
        *t0 = record_start_idx as f64 * h;
        *len = 0;

        if record_start_idx == 0 {
            record_into(v, ind_i, node_slots, ind_slots, node_bufs, ind_bufs);
            *len += 1;
        }

        Ok(StepSchedule {
            n_steps,
            record_start_idx,
        })
    }

    /// The historic per-step body: rebuild the sparse right-hand side and
    /// forward/backward-substitute through the plan's LU factors. Kept
    /// verbatim as the exact reference kernel — scoped runs through it
    /// remain bit-identical to every release since the plan API landed.
    fn lu_steps(&self, plan: &TransientPlan, sched: &StepSchedule, scratch: &mut TransientScratch) {
        let h = plan.dt;
        let n_nodes = plan.n_nodes;
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };
        let lu = &plan.lu;
        let cap_g = &plan.cap_g;
        let ind_g = &plan.ind_g;
        let TransientScratch {
            b,
            x,
            v,
            cap_v,
            cap_i,
            ind_i,
            ind_v,
            node_slots,
            ind_slots,
            node_bufs,
            ind_bufs,
            len,
            ..
        } = scratch;

        // The step loop: no heap allocation from here to the end of the
        // run — `b`/`x` are reused, and the output buffers were reserved
        // to their final length in the setup.
        for step in 1..=sched.n_steps {
            let t_next = step as f64 * h;
            b.iter_mut().for_each(|e| *e = 0.0);

            // Capacitor history sources: i_{n+1} = g*v_{n+1} - (g*v_n + i_n).
            for ((c, &gc), (&vc, &ic)) in self
                .capacitors
                .iter()
                .zip(cap_g)
                .zip(cap_v.iter().zip(cap_i.iter()))
            {
                let hist = gc * vc + ic;
                if let Some(a) = row(c.a) {
                    b[a] += hist;
                }
                if let Some(bb) = row(c.b) {
                    b[bb] -= hist;
                }
            }
            // Inductor history sources: i_{n+1} = g*v_{n+1} + (i_n + g*v_n).
            for ((l, &gl), (&vl, &il)) in self
                .inductors
                .iter()
                .zip(ind_g)
                .zip(ind_v.iter().zip(ind_i.iter()))
            {
                let hist = il + gl * vl;
                if let Some(a) = row(l.a) {
                    b[a] -= hist;
                }
                if let Some(bb) = row(l.b) {
                    b[bb] += hist;
                }
            }
            // Independent sources evaluated at the new time point.
            for is in &self.isources {
                let i = is.stimulus.value_at(t_next);
                if let Some(rf) = row(is.from) {
                    b[rf] -= i;
                }
                if let Some(rt) = row(is.to) {
                    b[rt] += i;
                }
            }
            for (k, vs) in self.vsources.iter().enumerate() {
                b[n_nodes + k] = vs.stimulus.value_at(t_next);
            }

            lu.solve_into(b, x);
            v[1..=n_nodes].copy_from_slice(&x[..n_nodes]);

            // Update element states.
            for (k, (c, &gc)) in self.capacitors.iter().zip(cap_g).enumerate() {
                let vc_new = v[c.a] - v[c.b];
                let hist = gc * cap_v[k] + cap_i[k];
                cap_i[k] = gc * vc_new - hist;
                cap_v[k] = vc_new;
            }
            for (k, (l, &gl)) in self.inductors.iter().zip(ind_g).enumerate() {
                let vl_new = v[l.a] - v[l.b];
                let hist = ind_i[k] + gl * ind_v[k];
                ind_i[k] = gl * vl_new + hist;
                ind_v[k] = vl_new;
            }

            if step >= sched.record_start_idx {
                record_into(v, ind_i, node_slots, ind_slots, node_bufs, ind_bufs);
                *len += 1;
            }
        }
    }

    /// One state-space step for one lane: gather the input scalars in the
    /// kernel's fixed order (capacitor histories, inductor histories,
    /// current sources, voltage sources), fold them through the
    /// precomputed response columns, then run the same element-state
    /// update and recording as the LU path. Used by both the single-run
    /// and batched paths, so a batch lane and a single run execute the
    /// identical arithmetic sequence.
    fn state_space_step(
        &self,
        plan: &TransientPlan,
        kernel: &StateKernel,
        step: usize,
        record_start_idx: usize,
        load_override: Option<(usize, &Stimulus)>,
        scratch: &mut TransientScratch,
    ) {
        let h = plan.dt;
        let t_next = step as f64 * h;
        let n_nodes = plan.n_nodes;
        let cap_g = &plan.cap_g;
        let ind_g = &plan.ind_g;
        let TransientScratch {
            x,
            v,
            cap_v,
            cap_i,
            ind_i,
            ind_v,
            inputs,
            cap_rows,
            ind_rows,
            node_slots,
            ind_slots,
            node_bufs,
            ind_bufs,
            len,
            ..
        } = scratch;

        // History gathers on the dispatched SIMD level (`lanes == 1`
        // vectorizes across the element dimension); fused `mul_add`
        // arithmetic at every level, bit-identical across levels.
        let lv = emvolt_simd::level();
        let nc = cap_g.len();
        let nl = ind_g.len();
        lv.gather_hist(cap_g, cap_v, cap_i, 1, &mut inputs[..nc]);
        lv.gather_hist(ind_g, ind_v, ind_i, 1, &mut inputs[nc..nc + nl]);
        let mut j = nc + nl;
        for (si, is) in self.isources.iter().enumerate() {
            let stim = match load_override {
                Some((idx, s)) if idx == si => s,
                _ => &is.stimulus,
            };
            inputs[j] = stim.value_at(t_next);
            j += 1;
        }
        for vs in &self.vsources {
            inputs[j] = vs.stimulus.value_at(t_next);
            j += 1;
        }
        debug_assert_eq!(j, inputs.len());

        kernel.fold(inputs, &mut x[..n_nodes]);
        v[1..=n_nodes].copy_from_slice(&x[..n_nodes]);

        // Companion updates on the dispatched level — the fused form of
        // the LU path's trapezoidal update (`v` row 0 is ground, zero).
        lv.cap_updates(cap_g, cap_rows, v, 1, cap_v, cap_i);
        lv.ind_updates(ind_g, ind_rows, v, 1, ind_v, ind_i);

        if step >= record_start_idx {
            record_into(v, ind_i, node_slots, ind_slots, node_bufs, ind_bufs);
            *len += 1;
        }
    }

    /// The batched step loop for one lane group of compile-time width
    /// `L`. Element state lives in lane-contiguous SoA rows
    /// (`buf[k*L + l]` is lane `l`'s value for element `k`), so the
    /// history gather and the post-fold element update become vector
    /// loops over the lane dimension — the serial path can only do them
    /// as scalar chains, because element node indices are arbitrary
    /// gathers there. Node voltages live in the node-major
    /// `[node_count x L]` state (row 0 = ground, always zero) that
    /// [`StateKernel::fold_lanes`] writes, and recording reads the lane
    /// columns straight out of those rows in [`record_into`]'s order.
    /// Lane state is packed from / unpacked to each lane's
    /// [`TransientScratch`] around the loop, so a finished lane's
    /// scratch is indistinguishable from a serial run's.
    #[allow(clippy::too_many_arguments)]
    fn batch_group_steps<const L: usize>(
        &self,
        plan: &TransientPlan,
        kernel: &StateKernel,
        sched: &StepSchedule,
        source_idx: usize,
        loads: &[Stimulus],
        lanes: &mut [TransientScratch],
        soa: &mut BatchSoa<'_>,
    ) {
        debug_assert_eq!(loads.len(), L);
        debug_assert_eq!(lanes.len(), L);
        let h = plan.dt;
        let n_rows = self.node_count();
        debug_assert_eq!(n_rows, plan.n_nodes + 1);
        let cap_g = &plan.cap_g;
        let ind_g = &plan.ind_g;
        let n_inputs = kernel.n_inputs();

        resize_zeroed(soa.inputs, n_inputs * L);
        resize_zeroed(soa.state, n_rows * L);
        resize_zeroed(soa.cap_v, self.capacitors.len() * L);
        resize_zeroed(soa.cap_i, self.capacitors.len() * L);
        resize_zeroed(soa.ind_v, self.inductors.len() * L);
        resize_zeroed(soa.ind_i, self.inductors.len() * L);
        soa.cap_rows.clear();
        soa.cap_rows
            .extend(self.capacitors.iter().map(|c| [c.a as u32, c.b as u32]));
        soa.ind_rows.clear();
        soa.ind_rows
            .extend(self.inductors.iter().map(|l| [l.a as u32, l.b as u32]));
        let lv = emvolt_simd::level();

        // Pack the setup-seeded lane state into the SoA rows. The ground
        // row comes from `v[0]`, which is zero by construction.
        for (l, lane) in lanes.iter().enumerate() {
            for (i, &vi) in lane.v.iter().enumerate() {
                soa.state[i * L + l] = vi;
            }
            for (k, &x) in lane.cap_v.iter().enumerate() {
                soa.cap_v[k * L + l] = x;
            }
            for (k, &x) in lane.cap_i.iter().enumerate() {
                soa.cap_i[k * L + l] = x;
            }
            for (k, &x) in lane.ind_v.iter().enumerate() {
                soa.ind_v[k * L + l] = x;
            }
            for (k, &x) in lane.ind_i.iter().enumerate() {
                soa.ind_i[k * L + l] = x;
            }
        }

        for step in 1..=sched.n_steps {
            let t_next = step as f64 * h;

            // Input gather: one lane row per kernel input, in the
            // kernel's fixed order (same as `state_space_step`), on the
            // dispatched SIMD level vectorized across the lane rows.
            let nc = cap_g.len();
            let nl = ind_g.len();
            lv.gather_hist(cap_g, soa.cap_v, soa.cap_i, L, &mut soa.inputs[..nc * L]);
            lv.gather_hist(
                ind_g,
                soa.ind_v,
                soa.ind_i,
                L,
                &mut soa.inputs[nc * L..(nc + nl) * L],
            );
            let mut j = nc + nl;
            for (si, is) in self.isources.iter().enumerate() {
                let out = &mut soa.inputs[j * L..j * L + L];
                if si == source_idx {
                    for (o, load) in out.iter_mut().zip(loads) {
                        *o = load.value_at(t_next);
                    }
                } else {
                    // Lane-invariant source: sample once, broadcast.
                    out.fill(is.stimulus.value_at(t_next));
                }
                j += 1;
            }
            for vs in &self.vsources {
                soa.inputs[j * L..j * L + L].fill(vs.stimulus.value_at(t_next));
                j += 1;
            }
            debug_assert_eq!(j, n_inputs);

            kernel.fold_lanes(soa.inputs, L, &mut soa.state[L..]);

            // Element-state update: per lane the same arithmetic as the
            // serial kernel path, vectorized across the lane rows.
            lv.cap_updates(cap_g, soa.cap_rows, soa.state, L, soa.cap_v, soa.cap_i);
            lv.ind_updates(ind_g, soa.ind_rows, soa.state, L, soa.ind_v, soa.ind_i);

            if step >= sched.record_start_idx {
                // Same per-lane push order as `record_into`, reading the
                // lane columns of the SoA state.
                for (l, lane) in lanes.iter_mut().enumerate() {
                    for (buf, &idx) in lane.node_bufs.iter_mut().zip(&lane.node_slots) {
                        buf.push(soa.state[idx * L + l]);
                    }
                    for (buf, &idx) in lane.ind_bufs.iter_mut().zip(&lane.ind_slots) {
                        buf.push(soa.ind_i[idx * L + l]);
                    }
                    lane.len += 1;
                }
            }
        }

        // Unpack so each lane's scratch ends exactly as a serial run's.
        for (l, lane) in lanes.iter_mut().enumerate() {
            for (i, vi) in lane.v.iter_mut().enumerate() {
                *vi = soa.state[i * L + l];
            }
            for (k, x) in lane.cap_v.iter_mut().enumerate() {
                *x = soa.cap_v[k * L + l];
            }
            for (k, x) in lane.cap_i.iter_mut().enumerate() {
                *x = soa.cap_i[k * L + l];
            }
            for (k, x) in lane.ind_v.iter_mut().enumerate() {
                *x = soa.ind_v[k * L + l];
            }
            for (k, x) in lane.ind_i.iter_mut().enumerate() {
                *x = soa.ind_i[k * L + l];
            }
        }
    }
}

/// How many steps a run takes and from which step recording starts —
/// computed once in the setup and shared by every step path.
#[derive(Debug, Clone, Copy)]
struct StepSchedule {
    n_steps: usize,
    record_start_idx: usize,
}

/// Pushes the probed node voltages and inductor currents for one step.
fn record_into(
    v: &[f64],
    ind_i: &[f64],
    node_slots: &[usize],
    ind_slots: &[usize],
    node_bufs: &mut [Vec<f64>],
    ind_bufs: &mut [Vec<f64>],
) {
    for (buf, &idx) in node_bufs.iter_mut().zip(node_slots) {
        buf.push(v[idx]);
    }
    for (buf, &idx) in ind_bufs.iter_mut().zip(ind_slots) {
        buf.push(ind_i[idx]);
    }
}

/// Per-lane working memory for [`Circuit::transient_batch_scoped`]: one
/// [`TransientScratch`] per population member, recycled across batches
/// exactly like a single scratch is recycled across runs.
///
/// After a batch run, [`BatchTransientScratch::lane`] exposes each lane's
/// recorded waveforms as a [`TransientView`]; the next batch through the
/// same scratch overwrites them.
#[derive(Debug, Clone, Default)]
pub struct BatchTransientScratch {
    lanes: Vec<TransientScratch>,
    /// Input-major `[n_inputs x L]` gather buffer for the SoA step loop:
    /// `lane_inputs[j*L + l]` is lane `l`'s weight for response column
    /// `j`. Recycled across batches like every other scratch buffer.
    lane_inputs: Vec<f64>,
    /// Node-major `[node_count x L]` solved state: `lane_state[i*L + l]`
    /// is lane `l`'s voltage at node `i`, with row 0 the ground row
    /// (always zero) so probe slots index it exactly like a serial
    /// scratch's `v`.
    lane_state: Vec<f64>,
    /// SoA element state for the group step loop, `[n_elems x L]` each:
    /// `cap_v[k*L + l]` is lane `l`'s voltage across capacitor `k`, and
    /// likewise for the capacitor currents and inductor state. Packed
    /// from / unpacked to the per-lane scratches around the step loop.
    cap_v: Vec<f64>,
    cap_i: Vec<f64>,
    ind_v: Vec<f64>,
    ind_i: Vec<f64>,
    /// `[node_a, node_b]` row pairs per element for the dispatched
    /// companion-update kernels; rebuilt per batch group.
    cap_rows: Vec<[u32; 2]>,
    ind_rows: Vec<[u32; 2]>,
    telemetry: Telemetry,
}

/// Emits the probed waveforms a finished run left in `scratch` through
/// its attached telemetry handle's wave sink — the `transient_scoped` /
/// state-kernel emission site. Runs entirely *after* the step loop, from
/// the already-recorded buffers, so solver arithmetic (and its SIMD
/// dispatch) stays byte-identical whether or not tracing is on; with
/// tracing off this is one branch.
fn emit_probe_waves(scratch: &TransientScratch, probes: &TransientProbes, lane: Option<usize>) {
    emit_probe_waves_with(&scratch.telemetry, scratch, probes, lane);
}

/// [`emit_probe_waves`] routed through an explicit handle: the lane-major
/// batch path reports every lane through the batch scratch's coordinator
/// handle (lane scratches hold quiet clones). `lane` suffixes signal
/// names (`pdn.v_die.lane3`) so lanes stay distinct.
fn emit_probe_waves_with(
    telemetry: &Telemetry,
    scratch: &TransientScratch,
    probes: &TransientProbes,
    lane: Option<usize>,
) {
    if !telemetry.wave_enabled() || scratch.len == 0 {
        return;
    }
    let stride = telemetry.wave_stride();
    let suffixed = |base: &str| match lane {
        Some(i) => format!("{base}.lane{i}"),
        None => base.to_string(),
    };
    let emit = |name: String, samples: &[f64]| {
        let id = telemetry.wave_register(&name, WaveKind::Real);
        for (k, &v) in samples.iter().step_by(stride).enumerate() {
            let t = scratch.t0 + (k * stride) as f64 * scratch.dt;
            telemetry.wave_real(id, t, v);
        }
    };
    for (slot, &node) in scratch.node_slots.iter().enumerate() {
        let base = match probes.node_label(node) {
            Some(label) => label.to_string(),
            None => format!("circuit.n{node}.v"),
        };
        emit(suffixed(&base), &scratch.node_bufs[slot]);
    }
    for (slot, &ind) in scratch.ind_slots.iter().enumerate() {
        let base = match probes.ind_label(ind) {
            Some(label) => label.to_string(),
            None => format!("circuit.l{ind}.i"),
        };
        emit(suffixed(&base), &scratch.ind_bufs[slot]);
    }
}

/// Borrow-split view over the SoA buffers of a
/// [`BatchTransientScratch`], so the group driver can hand them to the
/// monomorphized step body while the per-lane scratches stay
/// independently borrowed.
struct BatchSoa<'a> {
    inputs: &'a mut Vec<f64>,
    state: &'a mut Vec<f64>,
    cap_v: &'a mut Vec<f64>,
    cap_i: &'a mut Vec<f64>,
    ind_v: &'a mut Vec<f64>,
    ind_i: &'a mut Vec<f64>,
    cap_rows: &'a mut Vec<[u32; 2]>,
    ind_rows: &'a mut Vec<[u32; 2]>,
}

impl BatchTransientScratch {
    /// Creates an empty batch scratch; lanes are created on first use and
    /// reused afterwards.
    pub fn new() -> Self {
        BatchTransientScratch::default()
    }

    /// Attaches a telemetry handle; every batch through this scratch then
    /// charges solver counters and (for emitting handles) a
    /// `transient_batch` span. The default handle is inert.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of lanes recorded by the most recent batch run.
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Borrowing view over lane `i`'s recorded waveforms.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the most recent batch.
    pub fn lane(&self, i: usize) -> TransientView<'_> {
        TransientView {
            scratch: &self.lanes[i],
        }
    }
}

/// Convenience re-exports for transient consumers.
pub use crate::trace::Trace as TransientTrace;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;

    /// RC charge curve: v(t) = V*(1 - exp(-t/RC)).
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1_000.0;
        let cap = 1e-9;
        let tau = r * cap;
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(
            vin,
            NodeId::GROUND,
            Stimulus::Step {
                t0: 0.0,
                before: 0.0,
                after: 1.0,
            },
        )
        .unwrap();
        c.resistor(vin, out, r).unwrap();
        c.capacitor(out, NodeId::GROUND, cap).unwrap();

        let cfg = TransientConfig::new(tau / 200.0, 5.0 * tau);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(out);
        for (t, v) in trace.iter().skip(1) {
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v - expected).abs() < 5e-3,
                "t={t:.3e}: got {v}, expected {expected}"
            );
        }
    }

    /// Undamped LC tank rings at f = 1/(2*pi*sqrt(LC)).
    #[test]
    fn lc_tank_rings_at_resonance() {
        let l: f64 = 50e-12; // 50 pH
        let cap = 100e-9; // 100 nF  => f ~ 71.2 MHz
        let f_expected = 1.0 / (2.0 * std::f64::consts::PI * (l * cap).sqrt());

        let mut c = Circuit::new();
        let n = c.node("tank");
        c.inductor(n, NodeId::GROUND, l).unwrap();
        c.capacitor(n, NodeId::GROUND, cap).unwrap();
        // Small damping resistor so the DC operating point is well-posed.
        c.resistor(n, NodeId::GROUND, 1e6).unwrap();
        // Kick the tank with a current step.
        c.current_source(
            NodeId::GROUND,
            n,
            Stimulus::Step {
                t0: 0.0,
                before: 0.0,
                after: 0.1,
            },
        )
        .unwrap();

        let period = 1.0 / f_expected;
        let cfg = TransientConfig::new(period / 256.0, 20.0 * period);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(n);

        // Count zero crossings of (v - mean) to estimate the frequency.
        let mean = trace.mean();
        let samples = trace.samples();
        let mut crossings = 0usize;
        for w in samples.windows(2) {
            if (w[0] - mean) * (w[1] - mean) < 0.0 {
                crossings += 1;
            }
        }
        let measured_f = crossings as f64 / 2.0 / trace.duration();
        assert!(
            (measured_f - f_expected).abs() / f_expected < 0.02,
            "measured {measured_f:.3e}, expected {f_expected:.3e}"
        );
    }

    /// Trapezoidal integration must not pump energy into a passive network.
    #[test]
    fn damped_rlc_decays() {
        let mut c = Circuit::new();
        let n = c.node("tank");
        let mid = c.node("mid");
        c.inductor(n, mid, 50e-12).unwrap();
        c.resistor(mid, NodeId::GROUND, 0.05).unwrap();
        c.capacitor(n, NodeId::GROUND, 100e-9).unwrap();
        c.resistor(n, NodeId::GROUND, 1e6).unwrap();
        c.current_source(
            NodeId::GROUND,
            n,
            Stimulus::Step {
                t0: 0.0,
                before: 0.0,
                after: 1.0,
            },
        )
        .unwrap();
        let cfg = TransientConfig::new(0.2e-9, 3e-6);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(n);
        let first_half = trace.window(0.0, 1.5e-6);
        let second_half = trace.window(1.5e-6, 3e-6);
        assert!(second_half.peak_to_peak() < first_half.peak_to_peak());
        assert!(trace.max().abs() < 10.0, "unbounded growth detected");
    }

    #[test]
    fn warmup_discards_early_samples() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, NodeId::GROUND, 1.0).unwrap();
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(1.0))
            .unwrap();
        let cfg = TransientConfig::new(1e-9, 100e-9).with_warmup(50e-9);
        let res = c.transient(&cfg).unwrap();
        let trace = res.voltage(n);
        assert!(trace.start_time() >= 50e-9);
        assert!(trace.len() <= 52);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, NodeId::GROUND, 1.0).unwrap();
        assert!(c.transient(&TransientConfig::new(0.0, 1.0)).is_err());
        assert!(c.transient(&TransientConfig::new(1.0, 0.5)).is_err());
        let bad = TransientConfig::new(1e-9, 1e-6).with_warmup(2e-6);
        assert!(c.transient(&bad).is_err());
    }

    /// A reused plan must reproduce `transient` exactly, including across
    /// stimulus swaps (the repeated-evaluation hot path).
    #[test]
    fn plan_reuse_is_bit_identical_across_stimulus_changes() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        c.resistor(vin, out, 1_000.0).unwrap();
        c.capacitor(out, NodeId::GROUND, 1e-9).unwrap();
        let load = c
            .current_source(NodeId::GROUND, out, Stimulus::Dc(0.0))
            .unwrap();

        let cfg = TransientConfig::new(1e-9, 2e-6).with_warmup(0.5e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        for amps in [0.0, 0.3, 1.2] {
            c.set_current_stimulus(load, Stimulus::Dc(amps));
            let fresh = c.transient(&cfg).unwrap();
            let planned = c.transient_with_plan(&plan, &cfg).unwrap();
            assert_eq!(
                fresh.voltage(out).samples(),
                planned.voltage(out).samples(),
                "plan diverged at load {amps}"
            );
        }
    }

    #[test]
    fn plan_rejects_mismatched_dt_and_topology() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, NodeId::GROUND, 1.0).unwrap();
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(1.0))
            .unwrap();
        let plan = c.plan_transient(1e-9).unwrap();
        assert!(c
            .transient_with_plan(&plan, &TransientConfig::new(2e-9, 1e-6))
            .is_err());
        c.capacitor(n, NodeId::GROUND, 1e-9).unwrap();
        assert!(c
            .transient_with_plan(&plan, &TransientConfig::new(1e-9, 1e-6))
            .is_err());
        assert!(c.plan_transient(0.0).is_err());
    }

    #[test]
    fn inductor_current_is_recorded() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        let l = c.inductor(vin, out, 1e-9).unwrap();
        c.resistor(out, NodeId::GROUND, 1.0).unwrap();
        let cfg = TransientConfig::new(0.05e-9, 50e-9);
        let res = c.transient(&cfg).unwrap();
        let i = res.inductor_current(l);
        // Settles to 1 A through the 1 ohm resistor.
        let tail = i.window(40e-9, 50e-9);
        assert!((tail.mean() - 1.0).abs() < 1e-3);
    }

    /// An RLC circuit with every element type, used by the probe/scratch
    /// bit-identity tests below.
    fn probe_test_circuit() -> (
        Circuit,
        NodeId,
        NodeId,
        InductorId,
        crate::netlist::ISourceId,
    ) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        let l = c.inductor(vin, out, 2e-9).unwrap();
        c.resistor(out, NodeId::GROUND, 0.5).unwrap();
        c.capacitor(out, NodeId::GROUND, 5e-9).unwrap();
        let load = c
            .current_source(
                NodeId::GROUND,
                out,
                Stimulus::Sine {
                    offset: 0.1,
                    amplitude: 0.2,
                    freq: 80e6,
                    phase: 0.0,
                },
            )
            .unwrap();
        (c, vin, out, l, load)
    }

    /// Probe-scoped runs must reproduce full-record runs bit-for-bit on
    /// the probed waveforms, even while the scratch is reused.
    #[test]
    fn probe_scoped_matches_full_record_bit_for_bit() {
        let (c, _vin, out, l, _load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 1e-6).with_warmup(0.2e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        let full = c.transient_with_plan(&plan, &cfg).unwrap();

        let probes = TransientProbes::none().with_node(out).with_inductor(l);
        let mut scratch = TransientScratch::new();
        for _ in 0..3 {
            let view = c
                .transient_scoped(&plan, &cfg, &probes, &mut scratch)
                .unwrap();
            assert_eq!(view.len(), full.len());
            assert_eq!(view.dt(), full.voltage(out).dt());
            let fv = full.voltage_samples(out);
            let sv = view.voltage_samples(out);
            for (a, b) in fv.iter().zip(sv.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let fi = full.inductor_current_samples(l);
            let si = view.inductor_current_samples(l);
            for (a, b) in fi.iter().zip(si.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// A wave-enabled telemetry handle on the scratch captures the probed
    /// waveforms (decimated by the sink's stride) without perturbing the
    /// solve, using probe labels where given and generic names elsewhere.
    #[test]
    fn scoped_run_emits_probed_waveforms_to_wave_sink() {
        use emvolt_obs::{validate_vcd_text, NoopRecorder, WaveDb};
        use std::sync::Arc;

        let (c, _vin, out, l, _load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.1e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        let probes = TransientProbes::none()
            .with_node_labeled(out, "pdn.v_die")
            .with_inductor(l);

        // Baseline without tracing.
        let mut plain = TransientScratch::new();
        let baseline = c
            .transient_scoped(&plan, &cfg, &probes, &mut plain)
            .unwrap()
            .voltage_samples(out)
            .to_vec();

        let stride = 4;
        let db = Arc::new(WaveDb::with_config(stride, Vec::new()));
        let tel = Telemetry::with_waves(Arc::new(NoopRecorder), db.clone());
        let mut scratch = TransientScratch::new();
        scratch.set_telemetry(tel);
        let view = c
            .transient_scoped(&plan, &cfg, &probes, &mut scratch)
            .unwrap();
        for (a, b) in baseline.iter().zip(view.voltage_samples(out)) {
            assert_eq!(a.to_bits(), b.to_bits(), "tracing perturbed the solve");
        }

        assert_eq!(db.signal_count(), 2);
        let vcd = db.to_vcd_string();
        assert!(vcd.contains("$scope module pdn $end"), "{vcd}");
        assert!(vcd.contains(" v_die $end"), "{vcd}");
        // Unlabeled inductor probe falls back to the generic name.
        assert!(
            vcd.contains(&format!("$scope module l{} $end", l.index())),
            "{vcd}"
        );
        let check = validate_vcd_text(&vcd).unwrap();
        assert!(check.changes > 0);
        // Change compression can only drop samples, never add: per signal
        // at most ceil(len / stride) survive.
        let cap = 2 * view.len().div_ceil(stride) as u64;
        assert!(
            check.changes <= cap,
            "{} changes > cap {cap}",
            check.changes
        );
    }

    /// The lane-major batched path reports every lane's probed waveforms
    /// through the batch handle, suffixed per lane.
    #[test]
    fn batched_run_emits_lane_suffixed_waveforms() {
        use emvolt_obs::{NoopRecorder, WaveDb};
        use std::sync::Arc;

        let (c, _vin, out, l, load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.05e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        let probes = TransientProbes::none()
            .with_node_labeled(out, "pdn.v_die")
            .with_inductor_labeled(l, "pdn.i_pkg");
        let db = Arc::new(WaveDb::new());
        let tel = Telemetry::with_waves(Arc::new(NoopRecorder), db.clone());
        let mut batch = BatchTransientScratch::new();
        batch.set_telemetry(tel);
        let loads = [Stimulus::Dc(0.1), Stimulus::Dc(0.4), Stimulus::Dc(0.9)];
        c.transient_batch_scoped(&plan, &cfg, &probes, load, &loads, &mut batch)
            .unwrap();
        assert_eq!(db.signal_count(), 6);
        let vcd = db.to_vcd_string();
        for lane in 0..3 {
            assert!(vcd.contains(&format!("lane{lane}")), "{vcd}");
        }
    }

    /// A scratch carried across runs with differing stimuli must never
    /// leak state: each reused run matches a fresh-scratch run exactly.
    #[test]
    fn scratch_reuse_across_stimulus_swaps_is_bit_identical() {
        let (mut c, _vin, out, l, load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.5e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        let probes = TransientProbes::none().with_node(out).with_inductor(l);
        let mut reused = TransientScratch::new();
        for amps in [0.0, 0.45, -0.2, 1.3] {
            c.set_current_stimulus(load, Stimulus::Dc(amps));
            let mut fresh = TransientScratch::new();
            let a = c
                .transient_scoped(&plan, &cfg, &probes, &mut fresh)
                .unwrap();
            let (av, ai): (Vec<f64>, Vec<f64>) = (
                a.voltage_samples(out).to_vec(),
                a.inductor_current_samples(l).to_vec(),
            );
            let b = c
                .transient_scoped(&plan, &cfg, &probes, &mut reused)
                .unwrap();
            assert_eq!(av, b.voltage_samples(out), "leak at load {amps}");
            assert_eq!(ai, b.inductor_current_samples(l), "leak at load {amps}");
        }
    }

    #[test]
    fn out_of_range_probes_are_rejected() {
        let (c, _vin, out, _l, _load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.1e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        let mut other = Circuit::new();
        let far = (0..9).map(|i| other.node(format!("n{i}"))).last().unwrap();
        let mut scratch = TransientScratch::new();
        let probes = TransientProbes::none().with_node(far);
        assert!(c
            .transient_scoped(&plan, &cfg, &probes, &mut scratch)
            .is_err());
        // A valid probe still works afterwards.
        let probes = TransientProbes::none().with_node(out);
        assert!(c
            .transient_scoped(&plan, &cfg, &probes, &mut scratch)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "not probed")]
    fn view_panics_on_unprobed_node() {
        let (c, vin, out, _l, _load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.1e-6);
        let plan = c.plan_transient(cfg.dt).unwrap();
        let mut scratch = TransientScratch::new();
        let probes = TransientProbes::none().with_node(out);
        let view = c
            .transient_scoped(&plan, &cfg, &probes, &mut scratch)
            .unwrap();
        let _ = view.voltage_samples(vin);
    }

    #[test]
    fn auto_default_embeds_state_kernel_for_small_systems() {
        let (c, ..) = probe_test_circuit();
        assert!(c.plan_transient(1e-9).unwrap().uses_state_kernel());
        assert!(!c
            .plan_transient_kernel(1e-9, KernelChoice::Lu)
            .unwrap()
            .uses_state_kernel());
        assert!(c
            .plan_transient_kernel(1e-9, KernelChoice::StateSpace)
            .unwrap()
            .uses_state_kernel());
    }

    /// The state-space kernel sums the same solution in a different
    /// order, so it must agree with the LU reference to rounding — the
    /// documented tolerance contract of DESIGN.md §9.
    #[test]
    fn state_space_matches_lu_within_tolerance() {
        let (c, _vin, out, l, _load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 1e-6).with_warmup(0.2e-6);
        let lu_plan = c.plan_transient_kernel(cfg.dt, KernelChoice::Lu).unwrap();
        let ss_plan = c
            .plan_transient_kernel(cfg.dt, KernelChoice::StateSpace)
            .unwrap();
        let probes = TransientProbes::none().with_node(out).with_inductor(l);
        let mut s_lu = TransientScratch::new();
        let mut s_ss = TransientScratch::new();
        c.transient_scoped(&lu_plan, &cfg, &probes, &mut s_lu)
            .unwrap();
        let reference: Vec<f64> = {
            let view = TransientView { scratch: &s_lu };
            view.voltage_samples(out).to_vec()
        };
        let view = c
            .transient_scoped(&ss_plan, &cfg, &probes, &mut s_ss)
            .unwrap();
        let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (step, (a, b)) in reference.iter().zip(view.voltage_samples(out)).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * scale,
                "kernels diverged at sample {step}: lu={a}, statespace={b}"
            );
        }
    }

    /// A batch lane must reproduce the single-run state-space path
    /// bit-for-bit: same kernel, same per-lane arithmetic sequence.
    #[test]
    fn batch_lanes_match_single_runs_bit_for_bit() {
        let (mut c, _vin, out, l, load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.5e-6).with_warmup(0.1e-6);
        let plan = c
            .plan_transient_kernel(cfg.dt, KernelChoice::StateSpace)
            .unwrap();
        let probes = TransientProbes::none().with_node(out).with_inductor(l);
        let loads = [
            Stimulus::Dc(0.25),
            Stimulus::Sine {
                offset: 0.1,
                amplitude: 0.3,
                freq: 120e6,
                phase: 0.5,
            },
            Stimulus::Step {
                t0: 0.2e-6,
                before: 0.0,
                after: 0.8,
            },
        ];

        let mut batch = BatchTransientScratch::new();
        c.transient_batch_scoped(&plan, &cfg, &probes, load, &loads, &mut batch)
            .unwrap();
        assert_eq!(batch.n_lanes(), loads.len());

        let mut single = TransientScratch::new();
        for (i, stim) in loads.iter().enumerate() {
            c.set_current_stimulus(load, stim.clone());
            let view = c
                .transient_scoped(&plan, &cfg, &probes, &mut single)
                .unwrap();
            let lane = batch.lane(i);
            assert_eq!(lane.len(), view.len());
            for (a, b) in view
                .voltage_samples(out)
                .iter()
                .zip(lane.voltage_samples(out))
            {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {i} voltage diverged");
            }
            for (a, b) in view
                .inductor_current_samples(l)
                .iter()
                .zip(lane.inductor_current_samples(l))
            {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {i} current diverged");
            }
        }
    }

    #[test]
    fn batch_rejects_lu_plans_and_bad_inputs() {
        let (c, _vin, out, _l, load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.1e-6);
        let probes = TransientProbes::none().with_node(out);
        let mut batch = BatchTransientScratch::new();
        let lu_plan = c.plan_transient_kernel(cfg.dt, KernelChoice::Lu).unwrap();
        assert!(c
            .transient_batch_scoped(
                &lu_plan,
                &cfg,
                &probes,
                load,
                &[Stimulus::Dc(0.1)],
                &mut batch
            )
            .is_err());
        let plan = c.plan_transient(cfg.dt).unwrap();
        assert!(c
            .transient_batch_scoped(&plan, &cfg, &probes, load, &[], &mut batch)
            .is_err());
    }

    /// The LU-only batch error must tell the user how to fix it: the
    /// `--kernel` CLI flag and the Auto dimension threshold.
    #[test]
    fn lu_only_batch_error_names_the_kernel_flag_and_auto_limit() {
        let (c, _vin, out, _l, load) = probe_test_circuit();
        let cfg = TransientConfig::new(0.1e-9, 0.1e-6);
        let probes = TransientProbes::none().with_node(out);
        let mut batch = BatchTransientScratch::new();
        let lu_plan = c.plan_transient_kernel(cfg.dt, KernelChoice::Lu).unwrap();
        let err = c
            .transient_batch_scoped(
                &lu_plan,
                &cfg,
                &probes,
                load,
                &[Stimulus::Dc(0.1)],
                &mut batch,
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--kernel"), "missing CLI flag hint: {msg}");
        assert!(msg.contains("statespace"), "missing kernel name: {msg}");
        assert!(
            msg.contains(&KernelChoice::AUTO_DIM_LIMIT.to_string()),
            "missing Auto dimension threshold: {msg}"
        );
    }
}
