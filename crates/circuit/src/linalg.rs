//! Dense LU factorization with partial pivoting, generic over the scalar
//! field so a single implementation serves both the real (transient) and
//! complex (AC phasor) solvers.
//!
//! MNA systems for the power-delivery networks in this workspace are tiny
//! (tens of unknowns), so a dense direct solver is both the simplest and the
//! fastest appropriate choice; the transient loop factors once and performs
//! only forward/backward substitution per time step.

use crate::complex::Complex;
use crate::error::{CircuitError, Result};
use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Scalar field usable by the LU solver.
///
/// Implemented for `f64` and [`Complex`]. The trait is sealed in spirit —
/// downstream crates have no reason to implement it — but is left open for
/// testing convenience.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection and singularity detection.
    fn pivot_magnitude(self) -> f64;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn pivot_magnitude(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex {
    fn zero() -> Self {
        Complex::ZERO
    }
    fn one() -> Self {
        Complex::ONE
    }
    fn pivot_magnitude(self) -> f64 {
        self.norm()
    }
}

/// A dense square matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![T::zero(); n * n],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `value` to entry `(row, col)` — the natural operation for MNA
    /// stamping.
    #[inline]
    pub fn stamp(&mut self, row: usize, col: usize, value: T) {
        let v = self[(row, col)] + value;
        self[(row, col)] = v;
    }

    /// Computes `self * x` for a vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "dimension mismatch in mul_vec");
        let mut y = vec![T::zero(); self.n];
        for i in 0..self.n {
            let mut acc = T::zero();
            for j in 0..self.n {
                acc = acc + self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Factors the matrix as `P*A = L*U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] when a pivot smaller than
    /// an absolute threshold is encountered, which for MNA systems means a
    /// floating node or an ill-posed netlist.
    pub fn lu(&self) -> Result<LuFactors<T>> {
        let n = self.n;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Select pivot row.
            let mut p = k;
            let mut best = lu[k * n + k].pivot_magnitude();
            for r in (k + 1)..n {
                let mag = lu[r * n + k].pivot_magnitude();
                if mag > best {
                    best = mag;
                    p = r;
                }
            }
            if best < 1e-300 || !best.is_finite() {
                return Err(CircuitError::SingularMatrix { pivot_index: k });
            }
            if p != k {
                perm.swap(p, k);
                for c in 0..n {
                    lu.swap(p * n + c, k * n + c);
                }
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    let upd = lu[r * n + c] - factor * lu[k * n + c];
                    lu[r * n + c] = upd;
                }
            }
        }
        Ok(LuFactors { n, lu, perm })
    }

    /// Convenience: factor and solve in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError::SingularMatrix`] from the factorization.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        Ok(self.lu()?.solve(b))
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.n + c]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.n + c]
    }
}

/// The result of [`Matrix::lu`]: a packed LU factorization plus the row
/// permutation, reusable across many right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors<T> {
    n: usize,
    lu: Vec<T>,
    perm: Vec<usize>,
}

impl<T: Scalar> LuFactors<T> {
    /// Solves `A*x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = vec![T::zero(); self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A*x = b` into a caller-provided buffer — the allocation-free
    /// form used by the transient step loop. Performs the same arithmetic
    /// in the same order as [`LuFactors::solve`], so results are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differs from the factored
    /// dimension.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) {
        assert_eq!(b.len(), self.n, "dimension mismatch in solve");
        assert_eq!(x.len(), self.n, "output dimension mismatch in solve");
        let n = self.n;
        // Apply the row permutation while loading the right-hand side.
        for (xi, &p) in x.iter_mut().zip(self.perm.iter()) {
            *xi = b[p];
        }
        // Forward substitution (L has implicit unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc = acc - self.lu[i * n + j] * xj;
            }
            x[i] = acc;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc = acc - self.lu[i * n + j] * xj;
            }
            x[i] = acc / self.lu[i * n + i];
        }
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_real_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [0.8, 1.4]
        let mut a = Matrix::zeros(2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Matrix::zeros(2);
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 0.0;
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::zeros(2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn complex_system() {
        // (1+j) * x = 2  => x = 1-j
        let mut a = Matrix::zeros(1);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        let x = a.solve(&[Complex::new(2.0, 0.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        let n = 8;
        let mut a = Matrix::zeros(n);
        // Deterministic pseudo-random fill (LCG) with diagonal dominance.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9, "residual too large at {i}");
        }
    }

    #[test]
    fn solve_into_is_bit_identical_to_solve() {
        let n = 6;
        let mut a = Matrix::zeros(n);
        let mut state: u64 = 0xDEADBEEFCAFE;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 3.0;
        }
        let lu = a.lu().unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let owned = lu.solve(&b);
        let mut buf = vec![7.0; n]; // stale contents must not matter
        lu.solve_into(&b, &mut buf);
        for (o, r) in owned.iter().zip(buf.iter()) {
            assert_eq!(o.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::<f64>::identity(5);
        let b = vec![1.0, -2.0, 3.0, -4.0, 5.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }
}
