//! Minimal complex-number arithmetic used by the AC (phasor) analysis.
//!
//! The workspace deliberately avoids an external `num` dependency; the AC
//! solver only needs basic field arithmetic, magnitude and argument, which
//! fit comfortably in this module.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use emvolt_circuit::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j` (electrical-engineering notation).
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * exp(j*theta)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use emvolt_circuit::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::norm`] when comparing.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns a non-finite value when `self` is zero, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}-{}j", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z * z.recip(), Complex::ONE));
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(close(Complex::J * Complex::J, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 4.0);
        assert!(close(a / b, a * b.recip()));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(3.0, 0.7);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < 1e-15);
    }

    #[test]
    fn display_format() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
