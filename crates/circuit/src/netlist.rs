//! Netlist construction: nodes, passive elements and independent sources.
//!
//! A [`Circuit`] is a passive linear network — resistors, capacitors,
//! inductors — driven by independent voltage and current sources. This is
//! exactly the class of networks needed to model a power-delivery network
//! (Fig. 1(a) of the paper) and is analysed by the [`crate::ac`] and
//! [`crate::transient`] modules.

use crate::error::{CircuitError, Result};
use crate::stimulus::Stimulus;

/// Handle to a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node within the netlist (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

macro_rules! element_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) usize);

        impl $name {
            /// Index of this element among elements of the same kind.
            pub fn index(self) -> usize {
                self.0
            }
        }
    };
}

element_id!(
    /// Handle to a resistor.
    ResistorId
);
element_id!(
    /// Handle to a capacitor.
    CapacitorId
);
element_id!(
    /// Handle to an inductor.
    InductorId
);
element_id!(
    /// Handle to an independent voltage source.
    VSourceId
);
element_id!(
    /// Handle to an independent current source.
    ISourceId
);

#[derive(Debug, Clone)]
pub(crate) struct Resistor {
    pub a: usize,
    pub b: usize,
    pub ohms: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Capacitor {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Inductor {
    pub a: usize,
    pub b: usize,
    pub henries: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VSource {
    /// Positive terminal.
    pub pos: usize,
    /// Negative terminal.
    pub neg: usize,
    pub stimulus: Stimulus,
}

#[derive(Debug, Clone)]
pub(crate) struct ISource {
    /// Current flows out of this node ...
    pub from: usize,
    /// ... and into this node (through the source).
    pub to: usize,
    pub stimulus: Stimulus,
}

/// A linear circuit netlist.
///
/// # Examples
///
/// Build a resistive divider and solve its DC operating point:
///
/// ```
/// use emvolt_circuit::{Circuit, NodeId, Stimulus};
///
/// # fn main() -> Result<(), emvolt_circuit::CircuitError> {
/// let mut c = Circuit::new();
/// let vin = c.node("vin");
/// let mid = c.node("mid");
/// c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(2.0))?;
/// c.resistor(vin, mid, 1.0)?;
/// c.resistor(mid, NodeId::GROUND, 1.0)?;
/// let op = c.dc_operating_point()?;
/// assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) node_names: Vec<String>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) capacitors: Vec<Capacitor>,
    pub(crate) inductors: Vec<Inductor>,
    pub(crate) vsources: Vec<VSource>,
    pub(crate) isources: Vec<ISource>,
}

impl Circuit {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["gnd".to_owned()],
            ..Default::default()
        }
    }

    /// Adds a named node and returns its handle.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        NodeId(self.node_names.len() - 1)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.0]
    }

    fn check_node(&self, n: NodeId) -> Result<()> {
        if n.0 < self.node_names.len() {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode { node: n.0 })
        }
    }

    fn check_positive(component: &'static str, value: f64) -> Result<()> {
        if value > 0.0 && value.is_finite() {
            Ok(())
        } else {
            Err(CircuitError::NonPositiveValue { component, value })
        }
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error if `ohms` is not strictly positive or a node is
    /// unknown.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<ResistorId> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("resistor", ohms)?;
        self.resistors.push(Resistor {
            a: a.0,
            b: b.0,
            ohms,
        });
        Ok(ResistorId(self.resistors.len() - 1))
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error if `farads` is not strictly positive or a node is
    /// unknown.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<CapacitorId> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("capacitor", farads)?;
        self.capacitors.push(Capacitor {
            a: a.0,
            b: b.0,
            farads,
        });
        Ok(CapacitorId(self.capacitors.len() - 1))
    }

    /// Adds an inductor between `a` and `b`; positive current flows `a -> b`.
    ///
    /// # Errors
    ///
    /// Returns an error if `henries` is not strictly positive or a node is
    /// unknown.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> Result<InductorId> {
        self.check_node(a)?;
        self.check_node(b)?;
        Self::check_positive("inductor", henries)?;
        self.inductors.push(Inductor {
            a: a.0,
            b: b.0,
            henries,
        });
        Ok(InductorId(self.inductors.len() - 1))
    }

    /// Adds an independent voltage source with `pos` as the positive
    /// terminal.
    ///
    /// # Errors
    ///
    /// Returns an error if a node is unknown.
    pub fn voltage_source(
        &mut self,
        pos: NodeId,
        neg: NodeId,
        stimulus: Stimulus,
    ) -> Result<VSourceId> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        self.vsources.push(VSource {
            pos: pos.0,
            neg: neg.0,
            stimulus,
        });
        Ok(VSourceId(self.vsources.len() - 1))
    }

    /// Adds an independent current source driving current from `from` to
    /// `to` *through the source* (i.e. it extracts current from `from` and
    /// injects it into `to`).
    ///
    /// A CPU load drawing current from a supply node is therefore
    /// `current_source(vdd, GROUND, load_waveform)`.
    ///
    /// # Errors
    ///
    /// Returns an error if a node is unknown.
    pub fn current_source(
        &mut self,
        from: NodeId,
        to: NodeId,
        stimulus: Stimulus,
    ) -> Result<ISourceId> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.isources.push(ISource {
            from: from.0,
            to: to.0,
            stimulus,
        });
        Ok(ISourceId(self.isources.len() - 1))
    }

    /// Replaces the stimulus of an existing current source — used by sweep
    /// harnesses that re-excite the same network many times.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn set_current_stimulus(&mut self, id: ISourceId, stimulus: Stimulus) {
        self.isources[id.0].stimulus = stimulus;
    }

    /// Replaces the stimulus of an existing voltage source.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn set_voltage_stimulus(&mut self, id: VSourceId, stimulus: Stimulus) {
        self.vsources[id.0].stimulus = stimulus;
    }

    /// Total number of elements of all kinds.
    pub fn element_count(&self) -> usize {
        self.resistors.len()
            + self.capacitors.len()
            + self.inductors.len()
            + self.vsources.len()
            + self.isources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_sequential_and_named() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_name(NodeId::GROUND), "gnd");
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn rejects_non_positive_values() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.resistor(a, NodeId::GROUND, 0.0).is_err());
        assert!(c.capacitor(a, NodeId::GROUND, -1e-9).is_err());
        assert!(c.inductor(a, NodeId::GROUND, f64::NAN).is_err());
    }

    #[test]
    fn rejects_unknown_nodes() {
        let mut c = Circuit::new();
        let bogus = NodeId(42);
        assert_eq!(
            c.resistor(bogus, NodeId::GROUND, 1.0),
            Err(CircuitError::UnknownNode { node: 42 })
        );
    }

    #[test]
    fn element_counts() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, NodeId::GROUND, 1.0).unwrap();
        c.capacitor(a, NodeId::GROUND, 1e-9).unwrap();
        c.current_source(a, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        assert_eq!(c.element_count(), 3);
    }
}
