//! Step-size convergence checking for transient analyses.
//!
//! The PDN transients in this workspace use fixed steps chosen by the
//! platform code. This module provides the validation tool behind those
//! choices: run the same transient at `dt` and `dt/2` and compare traces;
//! when the difference is below tolerance, the coarser step is accurate
//! enough (Richardson-style step-halving, the standard accuracy check for
//! trapezoidal integration).

use crate::error::Result;
use crate::netlist::{Circuit, NodeId};
use crate::transient::{TransientConfig, TransientProbes, TransientScratch};

/// Result of a step-halving convergence study.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// The steps tried, largest first.
    pub steps: Vec<f64>,
    /// RMS difference of the observed node voltage between each step and
    /// the next finer one, in volts.
    pub rms_errors: Vec<f64>,
    /// The largest step whose RMS error met the tolerance, if any.
    pub converged_dt: Option<f64>,
}

/// Runs `circuit`'s transient at successively halved steps (starting at
/// `config.dt`, `levels` halvings) and reports the step at which the
/// waveform at `observe` stops changing by more than `tol_v` RMS.
///
/// Each level runs through a [`crate::transient::TransientPlan`] with a
/// probe scoped to `observe`, reusing one scratch across levels — the
/// same planned, kernel-selected solve path the platform hot loop uses
/// (a new plan per level is unavoidable: `dt` enters the system matrix).
///
/// # Errors
///
/// Propagates transient-analysis failures.
pub fn converge_transient(
    circuit: &Circuit,
    config: &TransientConfig,
    observe: NodeId,
    levels: usize,
    tol_v: f64,
) -> Result<ConvergenceReport> {
    let mut steps = Vec::with_capacity(levels + 1);
    let mut traces: Vec<Vec<f64>> = Vec::with_capacity(levels + 1);
    let probes = TransientProbes::none().with_node(observe);
    let mut scratch = TransientScratch::new();
    let mut dt = config.dt;
    for _ in 0..=levels {
        let cfg = TransientConfig {
            dt,
            ..config.clone()
        };
        let plan = circuit.plan_transient(dt)?;
        let view = circuit.transient_scoped(&plan, &cfg, &probes, &mut scratch)?;
        steps.push(dt);
        traces.push(view.voltage_samples(observe).to_vec());
        dt /= 2.0;
    }

    let mut rms_errors = Vec::with_capacity(levels);
    let mut converged_dt = None;
    for i in 0..levels {
        let coarse = &traces[i];
        let fine = &traces[i + 1];
        // Compare on the coarse grid (the fine run has 2x samples).
        let n = coarse.len().min(fine.len() / 2);
        let mut acc = 0.0;
        for k in 0..n {
            let d = coarse[k] - fine[2 * k];
            acc += d * d;
        }
        let rms = (acc / n.max(1) as f64).sqrt();
        rms_errors.push(rms);
        if converged_dt.is_none() && rms <= tol_v {
            converged_dt = Some(steps[i]);
        }
    }
    Ok(ConvergenceReport {
        steps,
        rms_errors,
        converged_dt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;

    fn rlc() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let n = c.node("tank");
        let mid = c.node("mid");
        c.inductor(n, mid, 50e-12).unwrap();
        c.resistor(mid, NodeId::GROUND, 5e-3).unwrap();
        c.capacitor(n, NodeId::GROUND, 100e-9).unwrap();
        c.resistor(n, NodeId::GROUND, 1e6).unwrap();
        c.current_source(NodeId::GROUND, n, Stimulus::square(0.0, 0.5, 70e6))
            .unwrap();
        (c, n)
    }

    #[test]
    fn halving_the_step_converges() {
        let (c, n) = rlc();
        let cfg = TransientConfig::new(1e-9, 0.5e-6);
        // The square-wave edges quantize onto the sample grid, limiting
        // convergence to first order in dt near the edges; sub-mV RMS is
        // the practical floor for this excitation.
        let report = converge_transient(&c, &cfg, n, 4, 5e-4).unwrap();
        assert_eq!(report.steps.len(), 5);
        // Errors shrink as the step shrinks.
        assert!(
            report.rms_errors.windows(2).all(|w| w[1] < w[0]),
            "errors not decreasing: {:?}",
            report.rms_errors
        );
        assert!(report.converged_dt.is_some());
    }

    #[test]
    fn platform_step_choice_is_converged() {
        // The platform code integrates PDNs with dt = 0.25-0.5 ns; verify
        // that regime is converged to sub-millivolt accuracy for a
        // resonant excitation.
        let (c, n) = rlc();
        let cfg = TransientConfig::new(0.5e-9, 0.5e-6);
        let report = converge_transient(&c, &cfg, n, 2, 1e-3).unwrap();
        assert_eq!(
            report.converged_dt,
            Some(0.5e-9),
            "0.5 ns should already be converged: errors {:?}",
            report.rms_errors
        );
    }

    #[test]
    fn impossible_tolerance_reports_none() {
        let (c, n) = rlc();
        let cfg = TransientConfig::new(2e-9, 0.2e-6);
        let report = converge_transient(&c, &cfg, n, 1, 1e-30).unwrap();
        assert_eq!(report.converged_dt, None);
    }
}
