//! Uniformly-sampled waveform container returned by the transient analysis
//! and consumed by the instrument models.

/// A uniformly sampled real-valued waveform.
///
/// # Examples
///
/// ```
/// use emvolt_circuit::Trace;
/// let t = Trace::from_samples(1e-9, vec![1.0, 3.0, 2.0]);
/// assert_eq!(t.peak_to_peak(), 2.0);
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    dt: f64,
    t0: f64,
    values: Vec<f64>,
}

impl Trace {
    /// Creates a trace starting at `t = 0` with sample spacing `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn from_samples(dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "trace sample spacing must be positive");
        Trace {
            dt,
            t0: 0.0,
            values,
        }
    }

    /// Creates a trace with an explicit start time.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn with_start(dt: f64, t0: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "trace sample spacing must be positive");
        Trace { dt, t0, values }
    }

    /// Overwrites this trace in place, reusing its sample buffer's
    /// capacity — the allocation-free counterpart of
    /// [`Trace::with_start`] for hot loops that recycle traces.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn refill(&mut self, dt: f64, t0: f64, samples: &[f64]) {
        assert!(dt > 0.0, "trace sample spacing must be positive");
        self.dt = dt;
        self.t0 = t0;
        self.values.clear();
        self.values.extend_from_slice(samples);
    }

    /// Sample spacing in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        1.0 / self.dt
    }

    /// Time of the first sample.
    pub fn start_time(&self) -> f64 {
        self.t0
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 * self.dt
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the trace and returns the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.values
    }

    /// Time coordinate of sample `i`.
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.time_at(i), v))
    }

    /// Minimum sample value; `NaN` for an empty trace.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Maximum sample value; `NaN` for an empty trace.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Peak-to-peak excursion (`max - min`); `NaN` for an empty trace.
    pub fn peak_to_peak(&self) -> f64 {
        self.max() - self.min()
    }

    /// Arithmetic mean; `NaN` for an empty trace.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Root-mean-square value; `NaN` for an empty trace.
    pub fn rms(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        (self.values.iter().map(|v| v * v).sum::<f64>() / self.values.len() as f64).sqrt()
    }

    /// Worst undershoot below `nominal` (a positive number when the trace
    /// dips below `nominal`; zero otherwise). This is the paper's "maximum
    /// voltage droop" metric.
    pub fn max_droop_below(&self, nominal: f64) -> f64 {
        (nominal - self.min()).max(0.0)
    }

    /// Returns a sub-trace covering `[from, to)` seconds (relative to the
    /// trace start time), clamped to the available range.
    pub fn window(&self, from: f64, to: f64) -> Trace {
        let i0 = (((from - self.t0) / self.dt).ceil().max(0.0)) as usize;
        let i1 = ((((to - self.t0) / self.dt).floor()).max(0.0) as usize).min(self.values.len());
        let values = if i0 < i1 {
            self.values[i0..i1].to_vec()
        } else {
            Vec::new()
        };
        Trace {
            dt: self.dt,
            t0: self.time_at(i0),
            values,
        }
    }

    /// Resamples the trace onto a new grid with spacing `new_dt` using
    /// zero-order hold — how a piecewise-constant per-cycle current trace
    /// maps onto a finer integration grid.
    ///
    /// # Panics
    ///
    /// Panics if `new_dt` is not strictly positive.
    pub fn resample_hold(&self, new_dt: f64) -> Trace {
        assert!(new_dt > 0.0, "resample spacing must be positive");
        if self.values.is_empty() {
            return Trace {
                dt: new_dt,
                t0: self.t0,
                values: Vec::new(),
            };
        }
        let n = (self.duration() / new_dt).floor() as usize;
        let values = (0..n)
            .map(|i| {
                let t = i as f64 * new_dt;
                let idx = ((t / self.dt) as usize).min(self.values.len() - 1);
                self.values[idx]
            })
            .collect();
        Trace {
            dt: new_dt,
            t0: self.t0,
            values,
        }
    }

    /// Keeps every `stride`-th sample, starting from the first — the
    /// decimation the waveform-trace path applies before emitting dense
    /// transients, so `decimated(1)` is the identity and larger strides
    /// thin the trace without moving `t0`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn decimated(&self, stride: usize) -> Trace {
        assert!(stride > 0, "decimation stride must be positive");
        Trace {
            dt: self.dt * stride as f64,
            t0: self.t0,
            values: self.values.iter().copied().step_by(stride).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t123() -> Trace {
        Trace::from_samples(0.5, vec![1.0, 2.0, 3.0, 2.0])
    }

    #[test]
    fn statistics() {
        let t = t123();
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.peak_to_peak(), 2.0);
        assert_eq!(t.mean(), 2.0);
        let expected_rms = ((1.0 + 4.0 + 9.0 + 4.0) / 4.0f64).sqrt();
        assert!((t.rms() - expected_rms).abs() < 1e-12);
    }

    #[test]
    fn droop_metric() {
        let t = t123();
        assert!((t.max_droop_below(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(t.max_droop_below(0.5), 0.0);
    }

    #[test]
    fn windowing() {
        let t = t123();
        let w = t.window(0.5, 1.5);
        assert_eq!(w.samples(), &[2.0, 3.0]);
        assert_eq!(w.start_time(), 0.5);
        let empty = t.window(5.0, 6.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn time_iteration() {
        let t = t123();
        let pts: Vec<(f64, f64)> = t.iter().collect();
        assert_eq!(pts[2], (1.0, 3.0));
    }

    #[test]
    fn resample_hold_coarser_and_finer() {
        let t = Trace::from_samples(1.0, vec![1.0, 2.0]);
        let fine = t.resample_hold(0.5);
        assert_eq!(fine.samples(), &[1.0, 1.0, 2.0, 2.0]);
        let coarse = t.resample_hold(2.0);
        assert_eq!(coarse.samples(), &[1.0]);
    }

    #[test]
    fn empty_trace_stats_are_nan() {
        let t = Trace::from_samples(1.0, vec![]);
        assert!(t.min().is_nan());
        assert!(t.mean().is_nan());
        assert!(t.rms().is_nan());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        let _ = Trace::from_samples(0.0, vec![1.0]);
    }

    #[test]
    fn single_sample_trace_is_well_defined() {
        let t = Trace::from_samples(0.25, vec![7.0]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.duration(), 0.25);
        assert_eq!(t.min(), 7.0);
        assert_eq!(t.max(), 7.0);
        assert_eq!(t.mean(), 7.0);
        assert_eq!(t.rms(), 7.0);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0.0, 7.0)]);
        // Decimation of one sample keeps it, at any stride.
        assert_eq!(t.decimated(10).samples(), &[7.0]);
    }

    #[test]
    fn nonzero_t0_shifts_times_not_values() {
        let t = Trace::with_start(0.5, 3.0, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.start_time(), 3.0);
        assert_eq!(t.time_at(2), 4.0);
        let pts: Vec<(f64, f64)> = t.iter().collect();
        assert_eq!(pts[0], (3.0, 1.0));
        // Windowing and decimation preserve the shifted axis.
        let w = t.window(3.5, 4.5);
        assert_eq!(w.start_time(), 3.5);
        assert_eq!(w.samples(), &[2.0, 3.0]);
        let d = t.decimated(2);
        assert_eq!(d.start_time(), 3.0);
        assert_eq!(d.time_at(1), 4.0);
    }

    #[test]
    fn decimation_identity_and_stride() {
        let t = Trace::with_start(0.5, 1.0, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let id = t.decimated(1);
        assert_eq!(id.samples(), t.samples());
        assert_eq!(id.dt(), t.dt());
        assert_eq!(id.start_time(), t.start_time());
        let d2 = t.decimated(2);
        assert_eq!(d2.samples(), &[1.0, 3.0, 5.0]);
        assert_eq!(d2.dt(), 1.0);
        // The kept samples land at exactly their original timestamps —
        // the invariant the wavetrace stride path relies on.
        for (i, (td, vd)) in d2.iter().enumerate() {
            assert_eq!((td, vd), (t.time_at(2 * i), t.samples()[2 * i]));
        }
        // Over-long strides keep only the first sample.
        assert_eq!(t.decimated(100).samples(), &[1.0]);
    }

    #[test]
    fn decimation_round_trips_through_resample_hold() {
        // A piecewise-constant trace decimated then re-expanded by
        // zero-order hold reproduces itself when values change slower
        // than the stride.
        let t = Trace::from_samples(1.0, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let rt = t.decimated(2).resample_hold(1.0);
        assert_eq!(rt.samples(), t.samples());
        assert_eq!(rt.dt(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_panics() {
        let _ = t123().decimated(0);
    }
}
