//! DC operating-point analysis.
//!
//! Capacitors are treated as open circuits and inductors as ideal shorts
//! (implemented as 0 V sources so their branch currents come out of the
//! solve directly). The result seeds the transient analysis with a
//! steady-state initial condition, so a simulation excited by a periodic
//! load starts from the settled supply voltage rather than from zero.

use crate::error::Result;
use crate::linalg::Matrix;
use crate::netlist::{Circuit, InductorId, NodeId, VSourceId};

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    pub(crate) node_voltages: Vec<f64>,
    pub(crate) vsource_currents: Vec<f64>,
    pub(crate) inductor_currents: Vec<f64>,
}

impl OperatingPoint {
    /// Voltage at `node` relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analysed circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.index()]
    }

    /// Current delivered by voltage source `id` (flowing out of its
    /// positive terminal through the external circuit).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analysed circuit.
    pub fn vsource_current(&self, id: VSourceId) -> f64 {
        self.vsource_currents[id.index()]
    }

    /// Current through inductor `id`, positive from its `a` to its `b`
    /// terminal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analysed circuit.
    pub fn inductor_current(&self, id: InductorId) -> f64 {
        self.inductor_currents[id.index()]
    }
}

impl Circuit {
    /// Computes the DC operating point.
    ///
    /// All sources take their [`crate::Stimulus::dc_value`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::SingularMatrix`] if the network has a
    /// floating node once capacitors are opened, or another ill-posed
    /// topology.
    pub fn dc_operating_point(&self) -> Result<OperatingPoint> {
        let n_nodes = self.node_count() - 1; // excluding ground
        let n_vs = self.vsources.len();
        let n_ind = self.inductors.len();
        let dim = n_nodes + n_vs + n_ind;

        // Unknown layout: [node voltages (1..), vsource currents, inductor currents]
        let mut g = Matrix::<f64>::zeros(dim);
        let mut b = vec![0.0; dim];

        // Map node index -> matrix row (ground drops out).
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        for r in &self.resistors {
            let cond = 1.0 / r.ohms;
            stamp_conductance(&mut g, row(r.a), row(r.b), cond);
        }
        for (k, vs) in self.vsources.iter().enumerate() {
            let br = n_nodes + k;
            stamp_branch(&mut g, row(vs.pos), row(vs.neg), br);
            b[br] = vs.stimulus.dc_value();
        }
        for (k, l) in self.inductors.iter().enumerate() {
            // 0 V source between a and b.
            let br = n_nodes + n_vs + k;
            stamp_branch(&mut g, row(l.a), row(l.b), br);
            b[br] = 0.0;
        }
        for is in &self.isources {
            let i = is.stimulus.dc_value();
            if let Some(rf) = row(is.from) {
                b[rf] -= i;
            }
            if let Some(rt) = row(is.to) {
                b[rt] += i;
            }
        }

        let x = g.solve(&b)?;

        let mut node_voltages = vec![0.0; self.node_count()];
        node_voltages[1..=n_nodes].copy_from_slice(&x[..n_nodes]);
        let vsource_currents = (0..n_vs).map(|k| x[n_nodes + k]).collect();
        let inductor_currents = (0..n_ind).map(|k| x[n_nodes + n_vs + k]).collect();
        Ok(OperatingPoint {
            node_voltages,
            vsource_currents,
            inductor_currents,
        })
    }
}

/// Stamps a two-terminal conductance into the nodal block.
pub(crate) fn stamp_conductance(
    g: &mut Matrix<f64>,
    ra: Option<usize>,
    rb: Option<usize>,
    cond: f64,
) {
    if let Some(a) = ra {
        g.stamp(a, a, cond);
    }
    if let Some(b) = rb {
        g.stamp(b, b, cond);
    }
    if let (Some(a), Some(b)) = (ra, rb) {
        g.stamp(a, b, -cond);
        g.stamp(b, a, -cond);
    }
}

/// Stamps a branch-current unknown (ideal voltage source topology).
pub(crate) fn stamp_branch(
    g: &mut Matrix<f64>,
    rpos: Option<usize>,
    rneg: Option<usize>,
    br: usize,
) {
    if let Some(p) = rpos {
        g.stamp(p, br, 1.0);
        g.stamp(br, p, 1.0);
    }
    if let Some(n) = rneg {
        g.stamp(n, br, -1.0);
        g.stamp(br, n, -1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let src = c
            .voltage_source(vin, NodeId::GROUND, Stimulus::Dc(10.0))
            .unwrap();
        c.resistor(vin, mid, 3.0).unwrap();
        c.resistor(mid, NodeId::GROUND, 7.0).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(mid) - 7.0).abs() < 1e-9);
        // Source delivers 1 A; MNA convention: branch current flows from
        // + terminal through the source, so the solved value is -1 A.
        assert!((op.vsource_current(src) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn inductor_acts_as_short_at_dc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(5.0))
            .unwrap();
        let l = c.inductor(vin, out, 1e-9).unwrap();
        c.resistor(out, NodeId::GROUND, 5.0).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 5.0).abs() < 1e-9);
        assert!((op.inductor_current(l) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(2.0))
            .unwrap();
        c.resistor(n, NodeId::GROUND, 4.0).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(n) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_open_at_dc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(3.0))
            .unwrap();
        c.resistor(vin, out, 1.0).unwrap();
        // Without this resistor to ground, `out` would float; the cap does
        // not conduct at DC.
        c.resistor(out, NodeId::GROUND, 1e9).unwrap();
        c.capacitor(out, NodeId::GROUND, 1e-6).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(a, b, 1.0).unwrap();
        assert!(c.dc_operating_point().is_err());
    }
}
