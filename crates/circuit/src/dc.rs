//! DC operating-point analysis.
//!
//! Capacitors are treated as open circuits and inductors as ideal shorts
//! (implemented as 0 V sources so their branch currents come out of the
//! solve directly). The result seeds the transient analysis with a
//! steady-state initial condition, so a simulation excited by a periodic
//! load starts from the settled supply voltage rather than from zero.

use crate::error::Result;
use crate::linalg::{LuFactors, Matrix};
use crate::netlist::{Circuit, InductorId, NodeId, VSourceId};
use crate::stimulus::Stimulus;

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    pub(crate) node_voltages: Vec<f64>,
    pub(crate) vsource_currents: Vec<f64>,
    pub(crate) inductor_currents: Vec<f64>,
}

impl OperatingPoint {
    /// Voltage at `node` relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analysed circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.node_voltages[node.index()]
    }

    /// Current delivered by voltage source `id` (flowing out of its
    /// positive terminal through the external circuit).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analysed circuit.
    pub fn vsource_current(&self, id: VSourceId) -> f64 {
        self.vsource_currents[id.index()]
    }

    /// Current through inductor `id`, positive from its `a` to its `b`
    /// terminal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analysed circuit.
    pub fn inductor_current(&self, id: InductorId) -> f64 {
        self.inductor_currents[id.index()]
    }
}

/// The stimulus-independent half of a DC operating-point analysis: the
/// LU-factored DC MNA matrix. Capacitors are open at DC, so the matrix
/// holds only resistor conductances and source/inductor branch stamps —
/// none of which depend on stimulus waveforms. A plan built once can
/// therefore solve the operating point for any stimulus assignment by
/// refilling the right-hand side.
#[derive(Debug, Clone)]
pub struct DcPlan {
    pub(crate) n_nodes: usize,
    pub(crate) n_vs: usize,
    pub(crate) n_ind: usize,
    pub(crate) lu: LuFactors<f64>,
}

impl DcPlan {
    /// Dimension of the DC system: nodes (excluding ground) plus voltage
    /// source and inductor branch currents.
    pub fn dim(&self) -> usize {
        self.n_nodes + self.n_vs + self.n_ind
    }

    pub(crate) fn matches(&self, circuit: &Circuit) -> bool {
        self.n_nodes == circuit.node_count() - 1
            && self.n_vs == circuit.vsources.len()
            && self.n_ind == circuit.inductors.len()
    }
}

impl Circuit {
    /// Stamps the DC MNA matrix. Shared by the fresh and planned paths so
    /// both factor the exact same matrix (bit-identical results).
    fn stamp_dc_matrix(&self) -> Matrix<f64> {
        let n_nodes = self.node_count() - 1; // excluding ground
        let n_vs = self.vsources.len();
        let n_ind = self.inductors.len();
        let dim = n_nodes + n_vs + n_ind;

        // Unknown layout: [node voltages (1..), vsource currents, inductor currents]
        let mut g = Matrix::<f64>::zeros(dim);

        // Map node index -> matrix row (ground drops out).
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        for r in &self.resistors {
            let cond = 1.0 / r.ohms;
            stamp_conductance(&mut g, row(r.a), row(r.b), cond);
        }
        for (k, vs) in self.vsources.iter().enumerate() {
            stamp_branch(&mut g, row(vs.pos), row(vs.neg), n_nodes + k);
        }
        for (k, l) in self.inductors.iter().enumerate() {
            // 0 V source between a and b.
            stamp_branch(&mut g, row(l.a), row(l.b), n_nodes + n_vs + k);
        }
        g
    }

    /// Fills the DC right-hand side from the current stimulus values.
    /// `b` must be zeroed and sized to the plan dimension.
    pub(crate) fn dc_rhs_into(&self, b: &mut [f64]) {
        self.dc_rhs_into_with(b, None);
    }

    /// Like [`Circuit::dc_rhs_into`], but with one current source's
    /// stimulus substituted by `(index, stimulus)` — the batched-transient
    /// path seeds each lane this way without mutating the netlist. The
    /// accumulation order is identical to the non-override path, so a
    /// lane's seed is bit-identical to setting the stimulus and calling
    /// [`Circuit::dc_rhs_into`].
    pub(crate) fn dc_rhs_into_with(
        &self,
        b: &mut [f64],
        source_override: Option<(usize, &Stimulus)>,
    ) {
        let n_nodes = self.node_count() - 1;
        let n_vs = self.vsources.len();
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };
        for (k, vs) in self.vsources.iter().enumerate() {
            b[n_nodes + k] = vs.stimulus.dc_value();
        }
        for k in 0..self.inductors.len() {
            b[n_nodes + n_vs + k] = 0.0;
        }
        for (si, is) in self.isources.iter().enumerate() {
            let stim = match source_override {
                Some((idx, s)) if idx == si => s,
                _ => &is.stimulus,
            };
            let i = stim.dc_value();
            if let Some(rf) = row(is.from) {
                b[rf] -= i;
            }
            if let Some(rt) = row(is.to) {
                b[rt] += i;
            }
        }
    }

    /// Factors the stimulus-independent DC MNA matrix once for repeated
    /// operating-point solves via [`Circuit::dc_operating_point_with_plan`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::SingularMatrix`] for an ill-posed DC
    /// topology (e.g. a node floating once capacitors are opened).
    pub fn plan_dc(&self) -> Result<DcPlan> {
        let lu = self.stamp_dc_matrix().lu()?;
        Ok(DcPlan {
            n_nodes: self.node_count() - 1,
            n_vs: self.vsources.len(),
            n_ind: self.inductors.len(),
            lu,
        })
    }

    /// Computes the DC operating point.
    ///
    /// All sources take their [`crate::Stimulus::dc_value`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::SingularMatrix`] if the network has a
    /// floating node once capacitors are opened, or another ill-posed
    /// topology.
    pub fn dc_operating_point(&self) -> Result<OperatingPoint> {
        let plan = self.plan_dc()?;
        Ok(self.dc_operating_point_with_plan(&plan))
    }

    /// Computes the DC operating point through a prebuilt [`DcPlan`],
    /// skipping the matrix stamp and LU factorization. Bit-identical to
    /// [`Circuit::dc_operating_point`]: both solve the same factorization
    /// with the same right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different topology.
    pub fn dc_operating_point_with_plan(&self, plan: &DcPlan) -> OperatingPoint {
        assert!(
            plan.matches(self),
            "DC plan does not match circuit topology"
        );
        let n_nodes = plan.n_nodes;
        let mut b = vec![0.0; plan.dim()];
        self.dc_rhs_into(&mut b);
        let x = plan.lu.solve(&b);

        let mut node_voltages = vec![0.0; self.node_count()];
        node_voltages[1..=n_nodes].copy_from_slice(&x[..n_nodes]);
        let vsource_currents = (0..plan.n_vs).map(|k| x[n_nodes + k]).collect();
        let inductor_currents = (0..plan.n_ind)
            .map(|k| x[n_nodes + plan.n_vs + k])
            .collect();
        OperatingPoint {
            node_voltages,
            vsource_currents,
            inductor_currents,
        }
    }
}

/// Stamps a two-terminal conductance into the nodal block.
pub(crate) fn stamp_conductance(
    g: &mut Matrix<f64>,
    ra: Option<usize>,
    rb: Option<usize>,
    cond: f64,
) {
    if let Some(a) = ra {
        g.stamp(a, a, cond);
    }
    if let Some(b) = rb {
        g.stamp(b, b, cond);
    }
    if let (Some(a), Some(b)) = (ra, rb) {
        g.stamp(a, b, -cond);
        g.stamp(b, a, -cond);
    }
}

/// Stamps a branch-current unknown (ideal voltage source topology).
pub(crate) fn stamp_branch(
    g: &mut Matrix<f64>,
    rpos: Option<usize>,
    rneg: Option<usize>,
    br: usize,
) {
    if let Some(p) = rpos {
        g.stamp(p, br, 1.0);
        g.stamp(br, p, 1.0);
    }
    if let Some(n) = rneg {
        g.stamp(n, br, -1.0);
        g.stamp(br, n, -1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let src = c
            .voltage_source(vin, NodeId::GROUND, Stimulus::Dc(10.0))
            .unwrap();
        c.resistor(vin, mid, 3.0).unwrap();
        c.resistor(mid, NodeId::GROUND, 7.0).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(mid) - 7.0).abs() < 1e-9);
        // Source delivers 1 A; MNA convention: branch current flows from
        // + terminal through the source, so the solved value is -1 A.
        assert!((op.vsource_current(src) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn inductor_acts_as_short_at_dc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(5.0))
            .unwrap();
        let l = c.inductor(vin, out, 1e-9).unwrap();
        c.resistor(out, NodeId::GROUND, 5.0).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 5.0).abs() < 1e-9);
        assert!((op.inductor_current(l) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source(NodeId::GROUND, n, Stimulus::Dc(2.0))
            .unwrap();
        c.resistor(n, NodeId::GROUND, 4.0).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(n) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_open_at_dc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        c.voltage_source(vin, NodeId::GROUND, Stimulus::Dc(3.0))
            .unwrap();
        c.resistor(vin, out, 1.0).unwrap();
        // Without this resistor to ground, `out` would float; the cap does
        // not conduct at DC.
        c.resistor(out, NodeId::GROUND, 1e9).unwrap();
        c.capacitor(out, NodeId::GROUND, 1e-6).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage(out) - 3.0).abs() < 1e-6);
    }

    /// A cached DC plan must reproduce the fresh operating point
    /// bit-for-bit across stimulus swaps — only the right-hand side
    /// changes, and both paths factor the same matrix.
    #[test]
    fn dc_plan_is_bit_identical_across_stimulus_swaps() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let out = c.node("out");
        let src = c
            .voltage_source(vin, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        c.resistor(vin, out, 10.0).unwrap();
        let l = c.inductor(out, NodeId::GROUND, 1e-9).unwrap();
        let load = c
            .current_source(NodeId::GROUND, out, Stimulus::Dc(0.0))
            .unwrap();
        let plan = c.plan_dc().unwrap();
        for (v, i) in [(1.0, 0.0), (0.8, 0.25), (1.2, -0.5)] {
            c.set_voltage_stimulus(src, Stimulus::Dc(v));
            c.set_current_stimulus(load, Stimulus::Dc(i));
            let fresh = c.dc_operating_point().unwrap();
            let planned = c.dc_operating_point_with_plan(&plan);
            assert_eq!(fresh.node_voltages, planned.node_voltages);
            assert_eq!(fresh.vsource_currents, planned.vsource_currents);
            assert_eq!(
                fresh.inductor_current(l).to_bits(),
                planned.inductor_current(l).to_bits()
            );
        }
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(a, b, 1.0).unwrap();
        assert!(c.dc_operating_point().is_err());
    }
}
