//! # emvolt-circuit
//!
//! A compact linear-circuit simulation substrate: netlists of R/L/C
//! elements and independent sources, analysed with modified nodal analysis
//! (MNA).
//!
//! Three analyses are provided:
//!
//! * [`Circuit::dc_operating_point`] — steady-state solution (capacitors
//!   open, inductors short) used to initialise transients.
//! * [`Circuit::transient`] — fixed-step trapezoidal integration; A-stable
//!   and non-dissipative, so LC-tank resonances ring faithfully.
//! * [`Circuit::ac_solve`] / [`Circuit::ac_sweep`] /
//!   [`Circuit::driving_point_impedance`] — complex phasor analysis for
//!   impedance-versus-frequency plots.
//!
//! This crate is the stand-in for the physical power-delivery network and
//! the HSPICE simulations of the reproduced paper (Hadjilambrou et al.,
//! MICRO 2018); the `emvolt-pdn` crate builds the paper's die–package–PCB
//! model on top of it.
//!
//! # Examples
//!
//! Impedance of a parallel LC tank peaks at its resonance:
//!
//! ```
//! use emvolt_circuit::{Circuit, NodeId, Stimulus};
//!
//! # fn main() -> Result<(), emvolt_circuit::CircuitError> {
//! let mut c = Circuit::new();
//! let die = c.node("die");
//! let mid = c.node("mid");
//! let load = c.current_source(die, NodeId::GROUND, Stimulus::Dc(0.0))?;
//! c.capacitor(die, NodeId::GROUND, 100e-9)?;          // C_die
//! c.inductor(die, mid, 50e-12)?;                      // L_pkg
//! c.resistor(mid, NodeId::GROUND, 1e-3)?;             // R_pkg
//! let freqs = [50e6, 71.2e6, 100e6];
//! let z = c.driving_point_impedance(load, &freqs)?;
//! assert!(z[1].1.norm() > z[0].1.norm());
//! assert!(z[1].1.norm() > z[2].1.norm());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ac;
pub mod adaptive;
mod complex;
mod dc;
mod error;
pub mod kernel;
mod linalg;
mod netlist;
mod stimulus;
mod trace;
pub mod transient;

pub use ac::{AcExcitation, AcSolution};
pub use adaptive::{converge_transient, ConvergenceReport};
pub use complex::Complex;
pub use dc::{DcPlan, OperatingPoint};
pub use error::{CircuitError, Result};
pub use kernel::{KernelChoice, StateKernel};
pub use linalg::{LuFactors, Matrix, Scalar};
pub use netlist::{CapacitorId, Circuit, ISourceId, InductorId, NodeId, ResistorId, VSourceId};
pub use stimulus::Stimulus;
pub use trace::Trace;
pub use transient::{
    BatchTransientScratch, TransientConfig, TransientPlan, TransientProbes, TransientResult,
    TransientScratch, TransientView,
};
