//! Small-signal AC (phasor) analysis.
//!
//! Used to compute the input impedance of the power-delivery network as
//! seen from the die (Fig. 1(b) of the paper): a unit AC current is
//! injected at the load port and the resulting node voltage phasors are
//! solved at each frequency. All other independent sources are zeroed
//! (voltage sources shorted, current sources opened), as usual for
//! small-signal analysis.

use crate::complex::Complex;
use crate::error::{CircuitError, Result};
use crate::linalg::Matrix;
use crate::netlist::{Circuit, ISourceId, NodeId, VSourceId};

/// Which independent source provides the unit AC excitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcExcitation {
    /// Unit current phasor through the given current source (flowing from
    /// its `from` node to its `to` node through the source).
    Current(ISourceId),
    /// Unit voltage phasor across the given voltage source.
    Voltage(VSourceId),
}

/// Phasor solution at one frequency.
#[derive(Debug, Clone)]
pub struct AcSolution {
    /// Analysis frequency in Hz.
    pub freq: f64,
    node_voltages: Vec<Complex>,
}

impl AcSolution {
    /// Complex node voltage phasor relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the analysed circuit.
    pub fn voltage(&self, node: NodeId) -> Complex {
        self.node_voltages[node.index()]
    }
}

impl Circuit {
    /// Solves the phasor network at a single frequency.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive frequencies or a singular system.
    pub fn ac_solve(&self, excitation: AcExcitation, freq: f64) -> Result<AcSolution> {
        if freq <= 0.0 || !freq.is_finite() || freq.is_nan() {
            return Err(CircuitError::InvalidAnalysis {
                reason: format!("AC analysis requires positive frequency, got {freq}"),
            });
        }
        let omega = 2.0 * std::f64::consts::PI * freq;
        let n_nodes = self.node_count() - 1;
        let n_vs = self.vsources.len();
        let dim = n_nodes + n_vs;
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };

        let mut g = Matrix::<Complex>::zeros(dim);
        let mut b = vec![Complex::ZERO; dim];

        let stamp_admittance =
            |g: &mut Matrix<Complex>, ra: Option<usize>, rb: Option<usize>, y: Complex| {
                if let Some(a) = ra {
                    g.stamp(a, a, y);
                }
                if let Some(bb) = rb {
                    g.stamp(bb, bb, y);
                }
                if let (Some(a), Some(bb)) = (ra, rb) {
                    g.stamp(a, bb, -y);
                    g.stamp(bb, a, -y);
                }
            };

        for r in &self.resistors {
            stamp_admittance(&mut g, row(r.a), row(r.b), Complex::from_real(1.0 / r.ohms));
        }
        for c in &self.capacitors {
            stamp_admittance(
                &mut g,
                row(c.a),
                row(c.b),
                Complex::new(0.0, omega * c.farads),
            );
        }
        for l in &self.inductors {
            // Y = 1/(j*omega*L) = -j/(omega*L)
            stamp_admittance(
                &mut g,
                row(l.a),
                row(l.b),
                Complex::new(0.0, -1.0 / (omega * l.henries)),
            );
        }
        for (k, vs) in self.vsources.iter().enumerate() {
            let br = n_nodes + k;
            if let Some(p) = row(vs.pos) {
                g.stamp(p, br, Complex::ONE);
                g.stamp(br, p, Complex::ONE);
            }
            if let Some(n) = row(vs.neg) {
                g.stamp(n, br, -Complex::ONE);
                g.stamp(br, n, -Complex::ONE);
            }
            // Zero volts unless this is the excited source.
            b[br] = match excitation {
                AcExcitation::Voltage(id) if id.index() == k => Complex::ONE,
                _ => Complex::ZERO,
            };
        }
        if let AcExcitation::Current(id) = excitation {
            let is = &self.isources[id.index()];
            if let Some(rf) = row(is.from) {
                b[rf] -= Complex::ONE;
            }
            if let Some(rt) = row(is.to) {
                b[rt] += Complex::ONE;
            }
        }

        let x = g.solve(&b)?;
        let mut node_voltages = vec![Complex::ZERO; self.node_count()];
        node_voltages[1..=n_nodes].copy_from_slice(&x[..n_nodes]);
        Ok(AcSolution {
            freq,
            node_voltages,
        })
    }

    /// Solves the phasor network at each frequency in `freqs`.
    ///
    /// # Errors
    ///
    /// Propagates the first per-frequency error.
    pub fn ac_sweep(&self, excitation: AcExcitation, freqs: &[f64]) -> Result<Vec<AcSolution>> {
        if freqs.is_empty() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "empty frequency list".to_owned(),
            });
        }
        freqs
            .iter()
            .map(|&f| self.ac_solve(excitation, f))
            .collect()
    }

    /// Driving-point impedance of the port defined by current source
    /// `source`: the source is excited with a unit current phasor and
    /// `Z(f) = V(from) - V(to)` is returned per frequency.
    ///
    /// For a load source wired `current_source(vdd, GROUND, ...)` this is
    /// exactly the impedance the die sees looking into the PDN.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors (empty sweep, singular system).
    pub fn driving_point_impedance(
        &self,
        source: ISourceId,
        freqs: &[f64],
    ) -> Result<Vec<(f64, Complex)>> {
        let is = &self.isources[source.index()];
        let (from, to) = (NodeId(is.from), NodeId(is.to));
        let sols = self.ac_sweep(AcExcitation::Current(source), freqs)?;
        Ok(sols
            .into_iter()
            .map(|s| {
                // The unit excitation extracts current from `from`, so the
                // driving-point impedance with the passive sign convention
                // is V(to) - V(from); a lone resistor R yields Z = R + 0j.
                let z = s.voltage(to) - s.voltage(from);
                (s.freq, z)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;

    fn port_circuit() -> (Circuit, ISourceId, NodeId) {
        let mut c = Circuit::new();
        let n = c.node("port");
        let src = c
            .current_source(n, NodeId::GROUND, Stimulus::Dc(0.0))
            .unwrap();
        (c, src, n)
    }

    #[test]
    fn resistor_impedance_is_flat() {
        let (mut c, src, n) = port_circuit();
        c.resistor(n, NodeId::GROUND, 42.0).unwrap();
        let z = c.driving_point_impedance(src, &[1e3, 1e6, 1e9]).unwrap();
        for (_, zi) in z {
            assert!((zi.norm() - 42.0).abs() < 1e-9);
            assert!(zi.im.abs() < 1e-9);
        }
    }

    #[test]
    fn capacitor_impedance_follows_one_over_omega_c() {
        let (mut c, src, n) = port_circuit();
        let cap = 1e-9;
        c.capacitor(n, NodeId::GROUND, cap).unwrap();
        let f = 1e6;
        let z = c.driving_point_impedance(src, &[f]).unwrap();
        let expected = 1.0 / (2.0 * std::f64::consts::PI * f * cap);
        assert!((z[0].1.norm() - expected).abs() / expected < 1e-9);
        // Capacitive: negative reactance.
        assert!(z[0].1.im < 0.0);
    }

    #[test]
    fn inductor_impedance_follows_omega_l() {
        let (mut c, src, n) = port_circuit();
        let l = 1e-9;
        c.inductor(n, NodeId::GROUND, l).unwrap();
        let f = 1e8;
        let z = c.driving_point_impedance(src, &[f]).unwrap();
        let expected = 2.0 * std::f64::consts::PI * f * l;
        assert!((z[0].1.norm() - expected).abs() / expected < 1e-9);
        // Inductive: positive reactance.
        assert!(z[0].1.im > 0.0);
    }

    #[test]
    fn parallel_lc_peaks_at_resonance() {
        let (mut c, src, n) = port_circuit();
        let l = 50e-12;
        let cap = 100e-9;
        let mid = c.node("mid");
        c.inductor(n, mid, l).unwrap();
        c.resistor(mid, NodeId::GROUND, 1e-3).unwrap();
        c.capacitor(n, NodeId::GROUND, cap).unwrap();
        let f_res = 1.0 / (2.0 * std::f64::consts::PI * (l * cap).sqrt());
        let freqs: Vec<f64> = (1..200).map(|i| f_res * i as f64 / 100.0).collect();
        let z = c.driving_point_impedance(src, &freqs).unwrap();
        let (f_peak, _) = z
            .iter()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .copied()
            .unwrap();
        assert!(
            (f_peak - f_res).abs() / f_res < 0.03,
            "peak at {f_peak:.3e}, resonance {f_res:.3e}"
        );
    }

    #[test]
    fn voltage_sources_are_shorted_when_not_excited() {
        // Port resistor to a VDD rail held by a source: the source acts as
        // a short at AC, so the port sees R only.
        let (mut c, src, n) = port_circuit();
        let vdd = c.node("vdd");
        c.voltage_source(vdd, NodeId::GROUND, Stimulus::Dc(1.0))
            .unwrap();
        c.resistor(n, vdd, 10.0).unwrap();
        let z = c.driving_point_impedance(src, &[1e6]).unwrap();
        assert!((z[0].1.norm() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_frequencies() {
        let (c, src, _) = port_circuit();
        assert!(c.ac_solve(AcExcitation::Current(src), 0.0).is_err());
        assert!(c.ac_solve(AcExcitation::Current(src), -1.0).is_err());
        assert!(c.ac_sweep(AcExcitation::Current(src), &[]).is_err());
    }

    #[test]
    fn voltage_excitation_drives_divider() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        let vs = c
            .voltage_source(vin, NodeId::GROUND, Stimulus::Dc(0.0))
            .unwrap();
        c.resistor(vin, mid, 1.0).unwrap();
        c.resistor(mid, NodeId::GROUND, 1.0).unwrap();
        let sol = c.ac_solve(AcExcitation::Voltage(vs), 1e6).unwrap();
        assert!((sol.voltage(mid).norm() - 0.5).abs() < 1e-9);
    }
}
