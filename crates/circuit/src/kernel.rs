//! Precomputed state-update ("state-space") transient kernel.
//!
//! The trapezoidal MNA system solved each step is `A x = b(state, t)`
//! where `A` is constant per `(topology, dt)` and `b` is a sparse
//! superposition of one scalar per reactive element and source:
//!
//! * capacitor `c`:  `hist_c * (e_a - e_b)` with `hist_c = g_c v_c + i_c`
//! * inductor `l`:   `hist_l * (e_b - e_a)` with `hist_l = i_l + g_l v_l`
//! * current source: `i(t) * (e_to - e_from)`
//! * voltage source `k`: `V(t) * e_{n_nodes + k}`
//!
//! Because the solve is linear, `x = Σ_j w_j · A⁻¹ u_j` where `u_j` is
//! the unit injection pattern of input `j` and `w_j` its scalar value at
//! this step. The kernel precomputes the node-voltage part of each
//! response column `A⁻¹ u_j` once (via the plan's LU factors, at plan
//! build time), laid out row-major `[n_inputs x n_nodes]` so the per-step
//! work collapses to a fused multiply-accumulate over contiguous rows —
//! SIMD-friendly, no permutation indirection, no forward/backward
//! substitution. Branch currents are never materialized: the transient
//! engine only ever reads node voltages from the solve (inductor
//! currents come from the trapezoidal companion update).
//!
//! The result is mathematically identical to the LU path but sums in a
//! different order, so agreement is to rounding (see the equivalence
//! tests and DESIGN.md §9), not bit-exact. The LU path remains the
//! exact reference and is kept verbatim.

use crate::linalg::LuFactors;
use crate::netlist::Circuit;

/// Selects which per-step solver a [`crate::TransientPlan`] embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelChoice {
    /// Pick automatically: the state-space kernel for systems small
    /// enough that dense response columns pay off (dimension ≤
    /// [`KernelChoice::AUTO_DIM_LIMIT`]), the LU path otherwise.
    #[default]
    Auto,
    /// Always forward/backward substitution through the LU factors —
    /// the exact reference path.
    Lu,
    /// Always the precomputed state-update kernel.
    StateSpace,
}

impl KernelChoice {
    /// Largest MNA dimension for which [`KernelChoice::Auto`] picks the
    /// state-space kernel. Beyond this the O(dim²) per-input column
    /// build and cache footprint start to erode the per-step win.
    pub const AUTO_DIM_LIMIT: usize = 64;

    /// Whether this choice resolves to the state-space kernel for a
    /// system of `dim` unknowns.
    pub fn picks_state_space(self, dim: usize) -> bool {
        match self {
            KernelChoice::Auto => dim <= Self::AUTO_DIM_LIMIT,
            KernelChoice::Lu => false,
            KernelChoice::StateSpace => true,
        }
    }

    /// Parses a CLI-style name: `auto`, `lu` or `statespace`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(KernelChoice::Auto),
            "lu" => Some(KernelChoice::Lu),
            "statespace" => Some(KernelChoice::StateSpace),
            _ => None,
        }
    }

    /// The canonical name [`KernelChoice::parse`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Lu => "lu",
            KernelChoice::StateSpace => "statespace",
        }
    }
}

/// The precomputed response columns: node voltages per unit input, flat
/// row-major `[n_inputs x n_nodes]`. Input order is capacitors,
/// inductors, current sources, voltage sources — the same order
/// [`StateKernel::fold`] consumers fill the input vector in, fixed so
/// the floating-point summation order (and therefore the result) is
/// deterministic.
#[derive(Debug, Clone)]
pub struct StateKernel {
    n_nodes: usize,
    n_inputs: usize,
    cols: Vec<f64>,
}

impl StateKernel {
    /// Solves the unit-injection columns through `lu` (the plan's
    /// transient factorization) and stores their node-voltage parts.
    pub(crate) fn build(circuit: &Circuit, lu: &LuFactors<f64>, n_nodes: usize) -> StateKernel {
        let dim = lu.dim();
        let n_inputs = circuit.capacitors.len()
            + circuit.inductors.len()
            + circuit.isources.len()
            + circuit.vsources.len();
        let row = |node: usize| -> Option<usize> { node.checked_sub(1) };
        let mut cols = Vec::with_capacity(n_inputs * n_nodes);
        let mut e = vec![0.0; dim];
        let mut x = vec![0.0; dim];
        let mut push_col = |e: &mut [f64], x: &mut [f64]| {
            lu.solve_into(e, x);
            cols.extend_from_slice(&x[..n_nodes]);
            e.iter_mut().for_each(|v| *v = 0.0);
        };
        for c in &circuit.capacitors {
            if let Some(a) = row(c.a) {
                e[a] += 1.0;
            }
            if let Some(b) = row(c.b) {
                e[b] -= 1.0;
            }
            push_col(&mut e, &mut x);
        }
        for l in &circuit.inductors {
            if let Some(a) = row(l.a) {
                e[a] -= 1.0;
            }
            if let Some(b) = row(l.b) {
                e[b] += 1.0;
            }
            push_col(&mut e, &mut x);
        }
        for is in &circuit.isources {
            if let Some(rf) = row(is.from) {
                e[rf] -= 1.0;
            }
            if let Some(rt) = row(is.to) {
                e[rt] += 1.0;
            }
            push_col(&mut e, &mut x);
        }
        for k in 0..circuit.vsources.len() {
            e[n_nodes + k] = 1.0;
            push_col(&mut e, &mut x);
        }
        StateKernel {
            n_nodes,
            n_inputs,
            cols,
        }
    }

    /// Number of scalar inputs the kernel folds per step.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Accumulates `xn = Σ_j inputs[j] · cols[j]` over the contiguous
    /// response rows. `xn` must hold exactly `n_nodes` elements and
    /// `inputs` exactly `n_inputs`.
    ///
    /// Runs on the runtime-dispatched SIMD level; every level performs
    /// the identical fused (`mul_add`) per-element sequence, so results
    /// are bit-identical across levels (see `emvolt-simd`).
    #[inline]
    pub(crate) fn fold(&self, inputs: &[f64], xn: &mut [f64]) {
        debug_assert_eq!(inputs.len(), self.n_inputs);
        debug_assert_eq!(xn.len(), self.n_nodes);
        emvolt_simd::level().fold_cols(&self.cols, self.n_nodes, inputs, xn);
    }

    /// Lane-major batched fold: `lanes` independent input vectors folded
    /// through the response columns in one pass.
    ///
    /// `inputs` is input-major `[n_inputs x lanes]` (`inputs[j*lanes + l]`
    /// is lane `l`'s weight for column `j`) and `xn` node-major
    /// `[n_nodes x lanes]` (`xn[i*lanes + l]` is lane `l`'s voltage at
    /// node `i`). Each response column entry `c_ji` is loaded **once** and
    /// FMAed into every lane's accumulator — the memory traffic of one
    /// serial fold amortized over all lanes. Per lane the operation
    /// sequence (zero, then `x_i = w_j.mul_add(c_ji, x_i)` in `j` order)
    /// is exactly [`StateKernel::fold`]'s, so each lane's result is
    /// bit-identical to a serial fold of that lane alone — at every
    /// dispatched SIMD level.
    #[inline]
    pub(crate) fn fold_lanes(&self, inputs: &[f64], lanes: usize, xn: &mut [f64]) {
        debug_assert!(lanes > 0);
        debug_assert_eq!(inputs.len(), self.n_inputs * lanes);
        debug_assert_eq!(xn.len(), self.n_nodes * lanes);
        emvolt_simd::level().fold_cols_lanes(&self.cols, self.n_nodes, inputs, lanes, xn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_parsing_round_trips() {
        for c in [
            KernelChoice::Auto,
            KernelChoice::Lu,
            KernelChoice::StateSpace,
        ] {
            assert_eq!(KernelChoice::parse(c.as_str()), Some(c));
        }
        assert_eq!(KernelChoice::parse("bogus"), None);
    }

    /// Deterministic pseudo-random doubles in (-1, 1) for layout tests.
    fn lcg_doubles(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// Every lane of `fold_lanes` must reproduce a serial `fold` of that
    /// lane bit-for-bit, for lane counts on both sides of the 8/4 block
    /// widths (exercising full blocks plus every remainder shape).
    #[test]
    fn fold_lanes_is_bit_identical_to_serial_folds() {
        let n_nodes = 7;
        let n_inputs = 5;
        let kernel = StateKernel {
            n_nodes,
            n_inputs,
            cols: lcg_doubles(0xC01, n_inputs * n_nodes),
        };
        for lanes in 1..=13usize {
            let all_inputs = lcg_doubles(0xF00D + lanes as u64, n_inputs * lanes);
            // Lane-major layout: inputs[j*lanes + l].
            let mut batched = vec![0.0; n_nodes * lanes];
            kernel.fold_lanes(&all_inputs, lanes, &mut batched);
            for l in 0..lanes {
                let lane_inputs: Vec<f64> =
                    (0..n_inputs).map(|j| all_inputs[j * lanes + l]).collect();
                let mut serial = vec![0.0; n_nodes];
                kernel.fold(&lane_inputs, &mut serial);
                for i in 0..n_nodes {
                    assert_eq!(
                        serial[i].to_bits(),
                        batched[i * lanes + l].to_bits(),
                        "lane {l} of {lanes} diverged at node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_respects_the_dimension_limit() {
        assert!(KernelChoice::Auto.picks_state_space(KernelChoice::AUTO_DIM_LIMIT));
        assert!(!KernelChoice::Auto.picks_state_space(KernelChoice::AUTO_DIM_LIMIT + 1));
        assert!(!KernelChoice::Lu.picks_state_space(4));
        assert!(KernelChoice::StateSpace.picks_state_space(4096));
    }
}
