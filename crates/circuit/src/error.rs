//! Error type shared by all analyses in this crate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

/// Errors produced while building or analysing a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The MNA system matrix is singular — typically a floating node, a
    /// loop of ideal voltage sources, or a cut-set of current sources.
    SingularMatrix {
        /// Elimination step at which the zero pivot was found.
        pivot_index: usize,
    },
    /// A component was given a non-positive value where one is required
    /// (resistance, capacitance, inductance).
    NonPositiveValue {
        /// Component kind, e.g. `"resistor"`.
        component: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A node index referenced by an element does not exist in the netlist.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// An analysis was asked for an invalid configuration (empty frequency
    /// list, zero time step, zero duration, ...).
    InvalidAnalysis {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::SingularMatrix { pivot_index } => {
                write!(f, "singular MNA matrix at pivot {pivot_index} (floating node or ill-posed netlist)")
            }
            CircuitError::NonPositiveValue { component, value } => {
                write!(f, "non-positive {component} value {value}")
            }
            CircuitError::UnknownNode { node } => write!(f, "unknown node index {node}"),
            CircuitError::InvalidAnalysis { reason } => write!(f, "invalid analysis: {reason}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::SingularMatrix { pivot_index: 3 };
        assert!(e.to_string().contains("pivot 3"));
        let e = CircuitError::NonPositiveValue {
            component: "resistor",
            value: -1.0,
        };
        assert!(e.to_string().contains("resistor"));
        let e = CircuitError::UnknownNode { node: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
