//! Time-varying source waveforms.
//!
//! Every independent source in a netlist carries a [`Stimulus`] describing
//! its value over time. The CPU simulator produces per-cycle current samples
//! which enter the PDN simulation through [`Stimulus::Samples`], mirroring
//! how program activity loads the real power-delivery network.

use std::sync::Arc;

/// A deterministic waveform `f(t)` for an independent source.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// Constant value.
    Dc(f64),
    /// Ideal step: `before` for `t < t0`, `after` afterwards.
    Step {
        /// Switch time in seconds.
        t0: f64,
        /// Value before `t0`.
        before: f64,
        /// Value at and after `t0`.
        after: f64,
    },
    /// Periodic rectangular wave starting at `t0`; the paper's synthetic
    /// current load (SCL) injects exactly this shape.
    Pulse {
        /// Value during the low phase.
        lo: f64,
        /// Value during the high phase.
        hi: f64,
        /// Period in seconds.
        period: f64,
        /// Fraction of the period spent high, in `(0, 1)`.
        duty: f64,
        /// Start time; the wave is `lo` before `t0`.
        t0: f64,
    },
    /// Sinusoid `offset + amplitude * sin(2*pi*freq*t + phase)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Phase in radians.
        phase: f64,
    },
    /// Piecewise-linear interpolation through `(t, v)` points sorted by `t`.
    /// Clamps to the first/last value outside the covered range.
    Pwl(Arc<[(f64, f64)]>),
    /// Zero-order-hold samples spaced `dt` apart, optionally repeated
    /// (tiled) forever — the bridge from cycle-level CPU current traces.
    Samples {
        /// Sample spacing in seconds.
        dt: f64,
        /// Sample values; shared so cloning a netlist stays cheap.
        values: Arc<[f64]>,
        /// When `true` the trace wraps around; when `false` it clamps to
        /// the final sample.
        repeat: bool,
    },
}

impl Stimulus {
    /// Builds a square-wave pulse with 50% duty cycle starting at `t = 0`,
    /// toggling between `lo` and `hi` at frequency `freq`.
    pub fn square(lo: f64, hi: f64, freq: f64) -> Self {
        Stimulus::Pulse {
            lo,
            hi,
            period: 1.0 / freq,
            duty: 0.5,
            t0: 0.0,
        }
    }

    /// Builds a repeating sampled waveform (zero-order hold).
    pub fn repeating_samples(dt: f64, values: impl Into<Arc<[f64]>>) -> Self {
        Stimulus::Samples {
            dt,
            values: values.into(),
            repeat: true,
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    ///
    /// # Examples
    ///
    /// ```
    /// use emvolt_circuit::Stimulus;
    /// let sq = Stimulus::square(0.0, 1.0, 1e6);
    /// assert_eq!(sq.value_at(0.1e-6), 1.0);
    /// assert_eq!(sq.value_at(0.6e-6), 0.0);
    /// ```
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Step { t0, before, after } => {
                if t < *t0 {
                    *before
                } else {
                    *after
                }
            }
            Stimulus::Pulse {
                lo,
                hi,
                period,
                duty,
                t0,
            } => {
                if t < *t0 {
                    return *lo;
                }
                let phase = ((t - t0) / period).fract();
                if phase < *duty {
                    *hi
                } else {
                    *lo
                }
            }
            Stimulus::Sine {
                offset,
                amplitude,
                freq,
                phase,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * freq * t + phase).sin(),
            Stimulus::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                // Binary search for the surrounding segment.
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            Stimulus::Samples { dt, values, repeat } => {
                if values.is_empty() {
                    return 0.0;
                }
                let raw = (t / dt).floor();
                let idx = if raw < 0.0 { 0 } else { raw as usize };
                if *repeat {
                    values[idx % values.len()]
                } else {
                    values[idx.min(values.len() - 1)]
                }
            }
        }
    }

    /// The DC (t -> -inf steady) value used to initialise operating points.
    pub fn dc_value(&self) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Step { before, .. } => *before,
            Stimulus::Pulse { lo, .. } => *lo,
            Stimulus::Sine { offset, .. } => *offset,
            Stimulus::Pwl(points) => points.first().map_or(0.0, |p| p.1),
            Stimulus::Samples { values, .. } => values.first().copied().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = Stimulus::Dc(2.5);
        assert_eq!(s.value_at(0.0), 2.5);
        assert_eq!(s.value_at(1e9), 2.5);
        assert_eq!(s.dc_value(), 2.5);
    }

    #[test]
    fn step_switches_at_t0() {
        let s = Stimulus::Step {
            t0: 1.0,
            before: 0.0,
            after: 3.0,
        };
        assert_eq!(s.value_at(0.999), 0.0);
        assert_eq!(s.value_at(1.0), 3.0);
        assert_eq!(s.dc_value(), 0.0);
    }

    #[test]
    fn pulse_duty_cycle() {
        let s = Stimulus::Pulse {
            lo: 1.0,
            hi: 2.0,
            period: 1.0,
            duty: 0.25,
            t0: 0.0,
        };
        assert_eq!(s.value_at(0.1), 2.0);
        assert_eq!(s.value_at(0.3), 1.0);
        assert_eq!(s.value_at(1.1), 2.0); // periodic
        assert_eq!(s.value_at(-0.5), 1.0); // before start
    }

    #[test]
    fn sine_has_expected_extremes() {
        let s = Stimulus::Sine {
            offset: 1.0,
            amplitude: 0.5,
            freq: 1.0,
            phase: 0.0,
        };
        assert!((s.value_at(0.25) - 1.5).abs() < 1e-12);
        assert!((s.value_at(0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let s = Stimulus::Pwl(Arc::from(
            vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)].as_slice(),
        ));
        assert_eq!(s.value_at(-1.0), 0.0);
        assert!((s.value_at(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(s.value_at(5.0), 2.0);
    }

    #[test]
    fn samples_repeat_and_clamp() {
        let vals: Arc<[f64]> = Arc::from(vec![1.0, 2.0, 3.0].as_slice());
        let rep = Stimulus::Samples {
            dt: 1.0,
            values: vals.clone(),
            repeat: true,
        };
        assert_eq!(rep.value_at(0.5), 1.0);
        assert_eq!(rep.value_at(4.5), 2.0); // index 4 % 3 == 1
        let clamp = Stimulus::Samples {
            dt: 1.0,
            values: vals,
            repeat: false,
        };
        assert_eq!(clamp.value_at(10.0), 3.0);
    }

    #[test]
    fn square_constructor() {
        let s = Stimulus::square(0.0, 1.0, 2.0);
        assert_eq!(s.value_at(0.1), 1.0);
        assert_eq!(s.value_at(0.3), 0.0);
    }
}
