//! Property-based tests for the EM radiation channel.

use emvolt_dsp::Spectrum;
use emvolt_em::{EmChannel, LoopAntenna};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transfer magnitude is finite, non-negative and strictly
    /// increasing in coupling.
    #[test]
    fn transfer_scales_with_coupling(f in 1e6..3e9f64, c in 1e-6..1e-2f64, k in 1.1..10.0f64) {
        let mut ch = EmChannel { coupling: c, ..EmChannel::default() };
        let base = ch.transfer(f);
        prop_assert!(base.is_finite() && base >= 0.0);
        ch.coupling = c * k;
        prop_assert!(ch.transfer(f) > base);
    }

    /// Moving the antenna closer never reduces the received signal
    /// (cubic near-field law).
    #[test]
    fn transfer_monotone_in_distance(f in 1e6..1e9f64, d in 0.02..0.3f64, k in 1.1..4.0f64) {
        let near = EmChannel { distance_m: d, ..EmChannel::default() };
        let far = EmChannel { distance_m: d * k, ..EmChannel::default() };
        prop_assert!(near.transfer(f) > far.transfer(f));
        // And the law is cubic: tripling distance costs 27x.
        let ratio = near.transfer(f) / far.transfer(f);
        prop_assert!((ratio - k.powi(3)).abs() / k.powi(3) < 1e-9);
    }

    /// The received spectrum is linear in the source amplitude.
    #[test]
    fn received_is_linear_in_current(scale in 0.1..10.0f64) {
        let ch = EmChannel::default();
        let bins: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let scaled: Vec<f64> = bins.iter().map(|b| b * scale).collect();
        let a = ch.received_spectrum(&Spectrum::from_bins(1e6, bins));
        let b = ch.received_spectrum(&Spectrum::from_bins(1e6, scaled));
        for k in 0..a.len() {
            let expect = a.amplitude_at(k) * scale;
            prop_assert!((b.amplitude_at(k) - expect).abs() <= 1e-12 + 1e-9 * expect);
        }
    }

    /// Incoherent multi-source combining never produces less than the
    /// strongest single source nor more than the coherent sum.
    #[test]
    fn multi_source_bounds(a0 in 0.0..2.0f64, a1 in 0.0..2.0f64) {
        let ch = EmChannel::default();
        let sa = Spectrum::from_bins(1e6, vec![a0; 64]);
        let sb = Spectrum::from_bins(1e6, vec![a1; 64]);
        let combined = ch.received_multi(&[&sa, &sb]);
        let ra = ch.received_spectrum(&sa);
        let rb = ch.received_spectrum(&sb);
        for k in 1..combined.len() {
            let lo = ra.amplitude_at(k).max(rb.amplitude_at(k));
            let hi = ra.amplitude_at(k) + rb.amplitude_at(k);
            prop_assert!(combined.amplitude_at(k) >= lo - 1e-12);
            prop_assert!(combined.amplitude_at(k) <= hi + 1e-12);
        }
    }

    /// Antenna gain is positive and finite everywhere, and |S11| never
    /// exceeds 0 dB (passive one-port).
    #[test]
    fn antenna_physicality(f in 1e3..20e9f64, q in 2.0..30.0f64) {
        let a = LoopAntenna { q, ..LoopAntenna::default() };
        let g = a.gain(f);
        prop_assert!(g.is_finite() && g > 0.0);
        let s11 = a.s11_db(f);
        prop_assert!(s11 <= 1e-9, "|S11| {s11} dB above unity");
        prop_assert!(s11.is_finite());
    }
}
