//! # emvolt-em
//!
//! Electromagnetic-emanation physics: the receive loop antenna (with the
//! Fig. 6 self-resonance behaviour) and the radiation channel linking the
//! die-current spectrum to the voltage spectrum arriving at the spectrum
//! analyzer.
//!
//! The model follows §2.2 of the reproduced paper: radiated power at a
//! frequency is quadratic in the oscillatory die-current amplitude at that
//! frequency, so maximizing received EM amplitude maximizes resonant
//! current (and hence voltage) oscillations in the PDN.
//!
//! # Examples
//!
//! ```
//! use emvolt_em::{EmChannel, LoopAntenna};
//!
//! let channel = EmChannel::default();
//! // The antenna is flat where the first-order PDN resonance lives...
//! assert!(channel.antenna.is_flat_at(70e6));
//! // ...and transfers more signal from stronger current oscillations.
//! assert!(channel.transfer(70e6) > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod antenna;
mod channel;

pub use antenna::LoopAntenna;
pub use channel::EmChannel;
