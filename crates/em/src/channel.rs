//! The radiation link: die current spectrum -> received voltage spectrum.
//!
//! §2.2 of the paper: on-chip interconnect acts as a distributed
//! transmitting antenna whose radiated power at frequency `f` is
//! *quadratic* in the oscillatory feed-current amplitude at `f` (Hertzian
//! dipole, radiation resistance ∝ f²). The received *voltage* amplitude at
//! the spectrum-analyzer input is therefore proportional to
//! `f · |I_die(f)|`, scaled by near-field coupling and the receive
//! antenna's transfer gain.

use crate::antenna::LoopAntenna;
use emvolt_dsp::{BandSpectrum, Spectrum};

/// An EM measurement channel: emitter coupling + receive antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct EmChannel {
    /// Receive antenna.
    pub antenna: LoopAntenna,
    /// Antenna-to-die distance in metres (5–10 cm in the paper).
    pub distance_m: f64,
    /// Dimensionless emitter strength: captures die geometry, package
    /// shielding and probe orientation. Calibrated per platform so
    /// received levels land in a realistic dBm range.
    pub coupling: f64,
    /// Reference distance at which `coupling` is specified.
    pub reference_distance_m: f64,
}

impl Default for EmChannel {
    fn default() -> Self {
        EmChannel {
            antenna: LoopAntenna::default(),
            distance_m: 0.07,
            coupling: 1.0e-3,
            reference_distance_m: 0.07,
        }
    }
}

impl EmChannel {
    /// Frequency-dependent transfer magnitude from die-current amplitude
    /// (amps) to received voltage amplitude (volts) at `freq`.
    ///
    /// `|H(f)| = coupling * (f / 100 MHz) * gain(f) * (d_ref / d)^3`
    ///
    /// The `f` term is the Hertzian radiation-resistance slope expressed
    /// on the amplitude; the cubic distance law models magnetic near-field
    /// coupling at centimetre range.
    pub fn transfer(&self, freq: f64) -> f64 {
        if freq <= 0.0 {
            return 0.0;
        }
        let distance_factor = (self.reference_distance_m / self.distance_m).powi(3);
        self.coupling * (freq / 100e6) * self.antenna.gain(freq) * distance_factor
    }

    /// Maps a die-current amplitude spectrum (amps per bin) to the
    /// received voltage amplitude spectrum (volts per bin) at the analyzer
    /// input.
    pub fn received_spectrum(&self, die_current: &Spectrum) -> Spectrum {
        let mut out = Spectrum::default();
        self.received_spectrum_into(die_current, &mut out);
        out
    }

    /// Maps a die-current amplitude spectrum into an existing `Spectrum`,
    /// reusing its bin storage. Bit-identical to
    /// [`EmChannel::received_spectrum`].
    pub fn received_spectrum_into(&self, die_current: &Spectrum, out: &mut Spectrum) {
        self.received_spectrum_into_with(die_current, out, &emvolt_obs::Telemetry::noop());
    }

    /// Like [`EmChannel::received_spectrum_into`], additionally charging
    /// the propagation to `telemetry`'s received-spectrum counter.
    pub fn received_spectrum_into_with(
        &self,
        die_current: &Spectrum,
        out: &mut Spectrum,
        telemetry: &emvolt_obs::Telemetry,
    ) {
        out.refill_from_bins(
            die_current.freq_step(),
            (0..die_current.len())
                .map(|k| die_current.amplitude_at(k) * self.transfer(die_current.freq_at(k))),
        );
        telemetry.count(emvolt_obs::CounterId::RxSpectra, 1);
    }

    /// Maps a band-limited die-current spectrum to the received band at
    /// the analyzer input — the [`BandSpectrum`] counterpart of
    /// [`EmChannel::received_spectrum_into_with`], applying the identical
    /// per-bin transfer arithmetic to only the covered bins.
    pub fn received_band_into_with(
        &self,
        die_current: &BandSpectrum,
        out: &mut BandSpectrum,
        telemetry: &emvolt_obs::Telemetry,
    ) {
        use emvolt_dsp::SpectralBins;
        let first = die_current.first_bin();
        out.refill_from_bins(
            die_current.freq_step(),
            first,
            die_current.len(),
            (first..first + die_current.covered_bins())
                .map(|k| die_current.amplitude_at(k) * self.transfer(die_current.freq_at(k))),
        );
        telemetry.count(emvolt_obs::CounterId::RxSpectra, 1);
    }

    /// Batched band propagation: maps several lanes' die-current bands to
    /// received bands in one pass, computing the frequency transfer once
    /// per bin and sharing it across every lane.
    ///
    /// When all lanes share one bin grid (the batched measurement chain's
    /// case — equal record lengths and band), `transfer` is filled with
    /// `|H(f_k)|` once and each lane's bins are scaled by the identical
    /// values a serial [`EmChannel::received_band_into_with`] would
    /// compute, so each output is bit-identical to the serial call. Lanes
    /// on differing grids fall back to per-lane serial propagation. One
    /// received-spectrum counter tick is charged per lane either way.
    ///
    /// # Panics
    ///
    /// Panics if `outs` is shorter than `die_currents`.
    pub fn received_spectrum_batch_into(
        &self,
        die_currents: &[&BandSpectrum],
        outs: &mut [BandSpectrum],
        transfer: &mut Vec<f64>,
        telemetry: &emvolt_obs::Telemetry,
    ) {
        use emvolt_dsp::SpectralBins;
        assert!(outs.len() >= die_currents.len(), "one output band per lane");
        let Some(first) = die_currents.first() else {
            return;
        };
        let uniform = die_currents.iter().all(|b| {
            b.freq_step() == first.freq_step()
                && b.first_bin() == first.first_bin()
                && b.covered_bins() == first.covered_bins()
                && b.len() == first.len()
        });
        if !uniform {
            for (band, out) in die_currents.iter().zip(outs.iter_mut()) {
                self.received_band_into_with(band, out, telemetry);
            }
            return;
        }
        let k0 = first.first_bin();
        transfer.clear();
        transfer.extend((k0..k0 + first.covered_bins()).map(|k| self.transfer(first.freq_at(k))));
        // Per-lane scaling through the dispatched SIMD multiply: the same
        // `a * h` products a serial propagation computes per bin.
        for (band, out) in die_currents.iter().zip(outs.iter_mut()) {
            out.refill_from_product(
                band.freq_step(),
                k0,
                band.len(),
                band.amplitudes(),
                transfer,
            );
        }
        telemetry.count(emvolt_obs::CounterId::RxSpectra, die_currents.len() as u64);
    }

    /// Combines several simultaneously radiating sources (e.g. the two
    /// voltage domains of §6.1) incoherently: received power adds, so
    /// amplitudes combine root-sum-square per bin.
    ///
    /// Accepts any slice of owned spectra or references, so callers need
    /// not build an intermediate `Vec<&Spectrum>`.
    ///
    /// # Panics
    ///
    /// Panics if the spectra have different bin widths or lengths.
    pub fn received_multi<S: std::borrow::Borrow<Spectrum>>(&self, sources: &[S]) -> Spectrum {
        if sources.is_empty() {
            return Spectrum::from_bins(1.0, Vec::new());
        }
        let first = sources[0].borrow();
        let step = first.freq_step();
        let len = first.len();
        for s in sources {
            let s = s.borrow();
            assert!(
                (s.freq_step() - step).abs() < 1e-9 * step && s.len() == len,
                "source spectra must share the same grid"
            );
        }
        let amps: Vec<f64> = (0..len)
            .map(|k| {
                let f = first.freq_at(k);
                let h = self.transfer(f);
                let p: f64 = sources
                    .iter()
                    .map(|s| {
                        let a = s.borrow().amplitude_at(k) * h;
                        a * a
                    })
                    .sum();
                p.sqrt()
            })
            .collect();
        Spectrum::from_bins(step, amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_dsp::Window;

    fn tone_spectrum(f0: f64, amp: f64) -> Spectrum {
        let fs = 1e9;
        let n = 4096;
        let s: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        Spectrum::of_samples(&s, fs, Window::Hann)
    }

    #[test]
    fn quadratic_power_in_current_amplitude() {
        let ch = EmChannel::default();
        let a1 = ch
            .received_spectrum(&tone_spectrum(70e6, 1.0))
            .peak_in_band(10e6, 400e6)
            .unwrap()
            .1;
        let a2 = ch
            .received_spectrum(&tone_spectrum(70e6, 2.0))
            .peak_in_band(10e6, 400e6)
            .unwrap()
            .1;
        // Voltage doubles => received power quadruples.
        assert!((a2 / a1 - 2.0).abs() < 0.02, "ratio {}", a2 / a1);
    }

    #[test]
    fn closer_antenna_receives_more() {
        let mut ch = EmChannel::default();
        let far = ch
            .received_spectrum(&tone_spectrum(70e6, 1.0))
            .peak_in_band(10e6, 400e6)
            .unwrap()
            .1;
        ch.distance_m = 0.05;
        let near = ch
            .received_spectrum(&tone_spectrum(70e6, 1.0))
            .peak_in_band(10e6, 400e6)
            .unwrap()
            .1;
        assert!(near > 2.0 * far, "near {near}, far {far}");
    }

    #[test]
    fn peak_frequency_is_preserved() {
        let ch = EmChannel::default();
        let rx = ch.received_spectrum(&tone_spectrum(120e6, 0.5));
        let (f, _) = rx.peak_in_band(10e6, 400e6).unwrap();
        assert!((f - 120e6).abs() < 1e6);
    }

    #[test]
    fn multi_source_shows_both_signatures() {
        let ch = EmChannel::default();
        let a = tone_spectrum(67e6, 1.0);
        let b = tone_spectrum(150e6, 0.8);
        let rx = ch.received_multi(&[&a, &b]);
        let peaks = rx.peaks_in_band(20e6, 400e6, 2, 20e6);
        assert_eq!(peaks.len(), 2);
        let freqs: Vec<f64> = peaks.iter().map(|p| p.0).collect();
        assert!(freqs.iter().any(|&f| (f - 67e6).abs() < 2e6));
        assert!(freqs.iter().any(|&f| (f - 150e6).abs() < 2e6));
    }

    /// The band path applies the same per-bin transfer arithmetic, so
    /// covered bins must match the full received spectrum to rounding of
    /// the underlying Goertzel-vs-FFT input bins.
    #[test]
    fn band_transfer_matches_full_transfer_per_bin() {
        use emvolt_dsp::{of_samples_band_into, BandSpectrum, GoertzelScratch, SpectralBins};
        let ch = EmChannel::default();
        let fs = 1e9;
        let s: Vec<f64> = (0..4096)
            .map(|i| (2.0 * std::f64::consts::PI * 70e6 * i as f64 / fs).sin())
            .collect();
        let full_i = Spectrum::of_samples(&s, fs, Window::Hann);
        let mut rx_full = Spectrum::default();
        ch.received_spectrum_into(&full_i, &mut rx_full);

        let mut scratch = GoertzelScratch::new();
        let mut band_i = BandSpectrum::default();
        of_samples_band_into(&s, fs, Window::Hann, 50e6, 200e6, &mut scratch, &mut band_i);
        let mut rx_band = BandSpectrum::default();
        ch.received_band_into_with(&band_i, &mut rx_band, &emvolt_obs::Telemetry::noop());

        assert_eq!(rx_band.freq_step(), rx_full.freq_step());
        assert_eq!(SpectralBins::len(&rx_band), rx_full.len());
        let peak = rx_full.amplitudes().iter().fold(0.0f64, |m, &v| m.max(v));
        for k in rx_band.first_bin()..rx_band.first_bin() + rx_band.covered_bins() {
            let a = rx_full.amplitude_at(k);
            let b = SpectralBins::amplitude_at(&rx_band, k);
            assert!(
                (a - b).abs() <= 1e-9 * peak.max(1e-300),
                "bin {k}: full={a}, band={b}"
            );
        }
    }

    /// The batched band propagation must reproduce per-lane serial calls
    /// bit-for-bit, both on the shared-grid fast path and the mixed-grid
    /// fallback.
    #[test]
    fn batched_band_transfer_is_bit_identical_to_serial() {
        use emvolt_dsp::{of_samples_band_into, BandSpectrum, GoertzelScratch, SpectralBins};
        let ch = EmChannel::default();
        let tel = emvolt_obs::Telemetry::noop();
        let fs = 1e9;
        let make_band = |f0: f64, n: usize| {
            let s: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
                .collect();
            let mut band = BandSpectrum::default();
            let mut sc = GoertzelScratch::new();
            of_samples_band_into(&s, fs, Window::Hann, 50e6, 200e6, &mut sc, &mut band);
            band
        };

        for lens in [[4096usize, 4096, 4096], [4096, 2048, 4096]] {
            let bands: Vec<BandSpectrum> = [70e6, 110e6, 150e6]
                .iter()
                .zip(lens)
                .map(|(&f0, n)| make_band(f0, n))
                .collect();
            let refs: Vec<&BandSpectrum> = bands.iter().collect();
            let mut outs = vec![BandSpectrum::default(); bands.len()];
            let mut transfer = Vec::new();
            ch.received_spectrum_batch_into(&refs, &mut outs, &mut transfer, &tel);
            for (band, out) in bands.iter().zip(&outs) {
                let mut serial = BandSpectrum::default();
                ch.received_band_into_with(band, &mut serial, &tel);
                assert_eq!(serial.first_bin(), out.first_bin());
                assert_eq!(serial.covered_bins(), out.covered_bins());
                assert_eq!(serial.freq_step().to_bits(), out.freq_step().to_bits());
                for (a, b) in serial.amplitudes().iter().zip(out.amplitudes()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn multi_source_power_addition() {
        let ch = EmChannel::default();
        let a = tone_spectrum(70e6, 1.0);
        let single = ch
            .received_multi(&[&a])
            .peak_in_band(10e6, 400e6)
            .unwrap()
            .1;
        let double = ch
            .received_multi(&[&a, &a])
            .peak_in_band(10e6, 400e6)
            .unwrap()
            .1;
        assert!(
            (double / single - std::f64::consts::SQRT_2).abs() < 0.02,
            "incoherent sum must grow by sqrt(2), got {}",
            double / single
        );
    }
}
