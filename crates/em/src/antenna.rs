//! Receive-antenna model: the square loop antenna of §4 / Fig. 6.

/// A small square loop antenna used as the EM receiver.
///
/// The paper measures a flat response from DC to ~1.2 GHz with a
/// self-resonance at 2.95 GHz (Fig. 6); the model reproduces that shape:
/// unity receive gain well below self-resonance, a resonant peak at
/// `self_resonance_hz`, and roll-off above.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopAntenna {
    /// Loop side length in metres (3 cm in the paper).
    pub side_m: f64,
    /// Self-resonance frequency in Hz.
    pub self_resonance_hz: f64,
    /// Quality factor of the self-resonance.
    pub q: f64,
}

impl Default for LoopAntenna {
    fn default() -> Self {
        LoopAntenna {
            side_m: 0.03,
            self_resonance_hz: 2.95e9,
            q: 8.0,
        }
    }
}

impl LoopAntenna {
    /// Relative receive gain at `freq` (unity in the flat region).
    ///
    /// Second-order resonant response: `|H| = 1 / |1 - u^2 + j u / Q|`
    /// with `u = f / f_res`, which is ~1 for `f << f_res`, peaks ~Q at
    /// resonance and falls as `1/u^2` beyond.
    pub fn gain(&self, freq: f64) -> f64 {
        if freq <= 0.0 {
            return 1.0;
        }
        let u = freq / self.self_resonance_hz;
        let re = 1.0 - u * u;
        let im = u / self.q;
        1.0 / (re * re + im * im).sqrt()
    }

    /// Magnitude of the single-port reflection coefficient in dB
    /// (Fig. 6): near 0 dB when mismatched (small loop far from
    /// resonance), dipping at self-resonance where the antenna absorbs.
    pub fn s11_db(&self, freq: f64) -> f64 {
        if freq <= 0.0 {
            return 0.0;
        }
        let u = freq / self.self_resonance_hz;
        // Lorentzian absorption dip; depth ~ -25 dB at resonance.
        let detune = (1.0 - u * u) * self.q;
        let dip = 1.0 / (1.0 + detune * detune);
        let reflected = (1.0 - 0.995 * dip).max(1e-6);
        20.0 * reflected.sqrt().log10()
    }

    /// `true` when `freq` lies in the flat region the paper relies on for
    /// unbiased measurements (gain within ~2 dB of unity, the "relatively
    /// flat" region of Fig. 6).
    pub fn is_flat_at(&self, freq: f64) -> bool {
        (self.gain(freq) - 1.0).abs() < 0.26
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_below_1_2_ghz() {
        let a = LoopAntenna::default();
        for f in [1e6, 50e6, 200e6, 600e6, 1.2e9] {
            assert!(a.is_flat_at(f), "gain at {f:.2e} = {}", a.gain(f));
        }
    }

    #[test]
    fn gain_peaks_at_self_resonance() {
        let a = LoopAntenna::default();
        let g_res = a.gain(2.95e9);
        assert!(g_res > 5.0, "resonant gain {g_res}");
        assert!(g_res > a.gain(2.0e9));
        assert!(g_res > a.gain(4.0e9));
    }

    #[test]
    fn s11_dips_at_resonance_only() {
        let a = LoopAntenna::default();
        let dip = a.s11_db(2.95e9);
        assert!(dip < -20.0, "dip {dip} dB");
        // Far from resonance: poorly matched, |S11| near 0 dB.
        assert!(a.s11_db(100e6) > -1.0);
        assert!(a.s11_db(1e9) > -3.0);
    }

    #[test]
    fn degenerate_frequency_is_safe() {
        let a = LoopAntenna::default();
        assert_eq!(a.gain(0.0), 1.0);
        assert_eq!(a.s11_db(-5.0), 0.0);
    }
}
