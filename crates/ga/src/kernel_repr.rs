//! Binds the GA engine to instruction-sequence genomes.

use crate::{one_point_crossover, Representation};
use emvolt_isa::{InstructionPool, Kernel};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Instruction-sequence representation: genomes are [`Kernel`]s of fixed
/// length sampled from an [`InstructionPool`] (the paper's individuals —
/// 50-instruction loop bodies).
#[derive(Debug, Clone)]
pub struct KernelRepresentation {
    pool: InstructionPool,
    kernel_len: usize,
}

impl KernelRepresentation {
    /// Creates a representation producing kernels of `kernel_len`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_len` is zero.
    pub fn new(pool: InstructionPool, kernel_len: usize) -> Self {
        assert!(kernel_len > 0, "kernel length must be positive");
        KernelRepresentation { pool, kernel_len }
    }

    /// The underlying instruction pool.
    pub fn pool(&self) -> &InstructionPool {
        &self.pool
    }

    /// Configured kernel length.
    pub fn kernel_len(&self) -> usize {
        self.kernel_len
    }
}

impl Representation for KernelRepresentation {
    type Genome = Kernel;

    fn random(&self, rng: &mut StdRng) -> Kernel {
        self.pool.random_kernel(self.kernel_len, rng)
    }

    fn crossover(&self, a: &Kernel, b: &Kernel, rng: &mut StdRng) -> (Kernel, Kernel) {
        let (b1, b2) = one_point_crossover(a.body(), b.body(), rng);
        (
            Kernel::new(Arc::clone(a.arch()), b1),
            Kernel::new(Arc::clone(b.arch()), b2),
        )
    }

    fn mutate(&self, genome: &mut Kernel, rate: f64, rng: &mut StdRng) {
        let len = genome.len();
        for i in 0..len {
            if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                self.pool.mutate_instr(&mut genome.body_mut()[i], rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_isa::Isa;
    use rand::SeedableRng;

    fn repr() -> KernelRepresentation {
        KernelRepresentation::new(InstructionPool::default_for(Isa::ArmV8), 50)
    }

    #[test]
    fn random_kernels_have_configured_length() {
        let r = repr();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(r.random(&mut rng).len(), 50);
    }

    #[test]
    fn crossover_preserves_length() {
        let r = repr();
        let mut rng = StdRng::seed_from_u64(2);
        let a = r.random(&mut rng);
        let b = r.random(&mut rng);
        let (c1, c2) = r.crossover(&a, &b, &mut rng);
        assert_eq!(c1.len(), 50);
        assert_eq!(c2.len(), 50);
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let r = repr();
        let mut rng = StdRng::seed_from_u64(3);
        let mut k = r.random(&mut rng);
        let before = k.body().to_vec();
        r.mutate(&mut k, 0.0, &mut rng);
        assert_eq!(k.body(), before.as_slice());
    }

    #[test]
    fn full_rate_mutation_changes_most_genes() {
        let r = repr();
        let mut rng = StdRng::seed_from_u64(4);
        let mut k = r.random(&mut rng);
        let before = k.body().to_vec();
        r.mutate(&mut k, 1.0, &mut rng);
        let changed = k.body().iter().zip(&before).filter(|(a, b)| a != b).count();
        assert!(changed > 25, "only {changed} genes changed at rate 1.0");
    }

    #[test]
    #[should_panic(expected = "kernel length")]
    fn rejects_zero_length() {
        let _ = KernelRepresentation::new(InstructionPool::default_for(Isa::ArmV8), 0);
    }
}
